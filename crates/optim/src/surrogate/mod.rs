//! Surrogate regression models with predictive uncertainty.
//!
//! Phase II of the methodology lists the surrogate candidates: Gaussian
//! process (Kriging), decision trees, random forest, gradient-boosted
//! trees, SVM, and polynomial regression; the paper's experiments use
//! **Extra Trees** (`base_estimator='ET'` in Listing 1). All are
//! implemented here behind one [`Surrogate`] trait.
//!
//! Models are trained on inputs normalized to the unit hypercube (the
//! Bayesian optimizer handles the mapping), which keeps kernel
//! length-scales and tree thresholds comparable across dimensions.

mod forest;
mod gbrt;
mod gp;
mod kernel_ridge;
mod poly;
mod tree;

pub use forest::{Forest, ForestParams};
pub use gbrt::Gbrt;
pub use gp::{GaussianProcess, Kernel};
pub use kernel_ridge::KernelRidge;
pub use poly::Polynomial;
pub use tree::{RegressionTree, TreeParams};

/// A regression model exposing a predictive mean and standard deviation.
pub trait Surrogate: Send {
    /// Fit on rows `x` (all the same length) with targets `y`.
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]);

    /// Predict `(mean, std)` at a point. `std` is the model's epistemic
    /// uncertainty estimate (ensemble spread, GP posterior, or residual
    /// scale depending on the model).
    fn predict(&self, x: &[f64]) -> (f64, f64);

    /// Predict `(mean, std)` for every row of `xs`. The default simply
    /// forwards to [`Surrogate::predict`]; models override it to amortize
    /// per-call overhead (e.g. the forest reuses one per-tree buffer
    /// across the whole batch). Overrides must return bit-identical
    /// values to the per-point path — the Bayesian optimizer's replay
    /// determinism depends on it.
    fn predict_many(&self, xs: &[Vec<f64>]) -> Vec<(f64, f64)> {
        xs.iter().map(|x| self.predict(x)).collect()
    }

    /// Whether `fit` has been called with at least one sample.
    fn is_fitted(&self) -> bool;
}

/// The surrogate families available by name (configuration files use these
/// identifiers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SurrogateKind {
    /// Extra Trees ensemble — the paper's `base_estimator='ET'`.
    ExtraTrees,
    /// Random forest (bootstrap + best-split trees).
    RandomForest,
    /// A single CART regression tree.
    Cart,
    /// Gradient-boosted regression trees.
    Gbrt,
    /// Gaussian process with an RBF kernel (Kriging).
    GpRbf,
    /// Gaussian process with a Matérn 5/2 kernel.
    GpMatern,
    /// Kernel ridge regression — the SVR stand-in (see DESIGN.md).
    KernelRidge,
    /// Degree-2 polynomial least squares.
    Polynomial,
}

impl SurrogateKind {
    /// Parse a configuration name (`extra_trees`, `ET`, `random_forest`,
    /// `RF`, `gbrt`, `gp`, `gp_matern`, `kernel_ridge`/`svr`, `poly`).
    pub fn from_name(name: &str) -> Option<SurrogateKind> {
        Some(match name {
            "extra_trees" | "ET" | "et" => SurrogateKind::ExtraTrees,
            "random_forest" | "RF" | "rf" => SurrogateKind::RandomForest,
            "cart" | "tree" | "DT" => SurrogateKind::Cart,
            "gbrt" | "GBRT" => SurrogateKind::Gbrt,
            "gp" | "GP" | "kriging" => SurrogateKind::GpRbf,
            "gp_matern" => SurrogateKind::GpMatern,
            "kernel_ridge" | "svr" | "SVR" => SurrogateKind::KernelRidge,
            "poly" | "polynomial" => SurrogateKind::Polynomial,
            _ => return None,
        })
    }

    /// Instantiate the model with sensible defaults and a seed for any
    /// internal randomness.
    pub fn build(&self, seed: u64) -> Box<dyn Surrogate> {
        match self {
            SurrogateKind::ExtraTrees => Box::new(Forest::extra_trees(50, seed)),
            SurrogateKind::RandomForest => Box::new(Forest::random_forest(50, seed)),
            SurrogateKind::Cart => Box::new(RegressionTree::new(TreeParams::cart(), seed)),
            SurrogateKind::Gbrt => Box::new(Gbrt::new(100, 0.1, seed)),
            SurrogateKind::GpRbf => Box::new(GaussianProcess::new(Kernel::Rbf, 1e-6)),
            SurrogateKind::GpMatern => Box::new(GaussianProcess::new(Kernel::Matern52, 1e-6)),
            SurrogateKind::KernelRidge => Box::new(KernelRidge::new(1e-3)),
            SurrogateKind::Polynomial => Box::new(Polynomial::quadratic()),
        }
    }

    /// Every kind, for ablation sweeps.
    pub fn all() -> [SurrogateKind; 8] {
        [
            SurrogateKind::ExtraTrees,
            SurrogateKind::RandomForest,
            SurrogateKind::Cart,
            SurrogateKind::Gbrt,
            SurrogateKind::GpRbf,
            SurrogateKind::GpMatern,
            SurrogateKind::KernelRidge,
            SurrogateKind::Polynomial,
        ]
    }

    /// Stable identifier (inverse of [`SurrogateKind::from_name`]).
    pub fn name(&self) -> &'static str {
        match self {
            SurrogateKind::ExtraTrees => "extra_trees",
            SurrogateKind::RandomForest => "random_forest",
            SurrogateKind::Cart => "cart",
            SurrogateKind::Gbrt => "gbrt",
            SurrogateKind::GpRbf => "gp",
            SurrogateKind::GpMatern => "gp_matern",
            SurrogateKind::KernelRidge => "kernel_ridge",
            SurrogateKind::Polynomial => "poly",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Quadratic bowl with minimum at (0.3, 0.7).
    fn bowl(x: &[f64]) -> f64 {
        (x[0] - 0.3).powi(2) + (x[1] - 0.7).powi(2)
    }

    fn training_data(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x: Vec<Vec<f64>> = (0..n)
            .map(|_| vec![rng.gen::<f64>(), rng.gen::<f64>()])
            .collect();
        let y: Vec<f64> = x.iter().map(|p| bowl(p)).collect();
        (x, y)
    }

    #[test]
    fn every_kind_fits_and_predicts_the_bowl() {
        let (x, y) = training_data(120, 42);
        for kind in SurrogateKind::all() {
            let mut model = kind.build(7);
            assert!(!model.is_fitted(), "{kind:?} claims fitted before fit");
            model.fit(&x, &y);
            assert!(model.is_fitted());
            // At the known minimum the prediction must be small; far away
            // it must be larger.
            let (near, std_near) = model.predict(&[0.3, 0.7]);
            let (far, _) = model.predict(&[1.0, 0.0]);
            assert!(near < far, "{kind:?}: near={near:.4} !< far={far:.4}");
            assert!(std_near >= 0.0, "{kind:?}: negative std");
            assert!(near.is_finite() && far.is_finite(), "{kind:?}");
        }
    }

    #[test]
    fn names_roundtrip() {
        for kind in SurrogateKind::all() {
            assert_eq!(SurrogateKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(
            SurrogateKind::from_name("ET"),
            Some(SurrogateKind::ExtraTrees)
        );
        assert_eq!(SurrogateKind::from_name("unknown"), None);
    }

    #[test]
    fn gp_reports_more_uncertainty_off_data() {
        // Train on the left half of the cube only; the GP posterior std at
        // an unseen point must exceed the on-data std. (Tree ensembles
        // extrapolate constants, so this property is GP-specific.)
        let mut rng = StdRng::seed_from_u64(9);
        let x: Vec<Vec<f64>> = (0..100)
            .map(|_| vec![rng.gen::<f64>() * 0.5, rng.gen::<f64>()])
            .collect();
        let y: Vec<f64> = x.iter().map(|p| bowl(p)).collect();
        for kind in [SurrogateKind::GpRbf, SurrogateKind::GpMatern] {
            let mut model = kind.build(1);
            model.fit(&x, &y);
            let (_, std_on) = model.predict(&[0.25, 0.5]);
            let (_, std_off) = model.predict(&[0.95, 0.5]);
            assert!(
                std_off > std_on,
                "{kind:?}: off-data std {std_off:.4} not above on-data {std_on:.4}"
            );
        }
    }
}
