//! Kernel ridge regression — the SVR stand-in.
//!
//! The paper lists support vector machines among the surrogate candidates.
//! True ε-SVR needs a QP solver; kernel ridge regression is the standard
//! closed-form relative (same RBF feature space, squared loss instead of
//! ε-insensitive loss) and behaves near-identically as a BO surrogate.
//! This substitution is recorded in DESIGN.md.

use super::Surrogate;
use crate::linalg::{cho_solve, cholesky, Matrix};

/// RBF kernel ridge regressor.
pub struct KernelRidge {
    /// Ridge regularization λ.
    lambda: f64,
    lengthscale: f64,
    x_train: Vec<Vec<f64>>,
    alpha: Vec<f64>,
    y_mean: f64,
    residual_std: f64,
    fitted: bool,
}

impl KernelRidge {
    /// Regressor with regularization `lambda` (length-scale chosen by the
    /// median heuristic at fit time).
    pub fn new(lambda: f64) -> Self {
        assert!(lambda > 0.0, "lambda must be positive");
        KernelRidge {
            lambda,
            lengthscale: 1.0,
            x_train: Vec::new(),
            alpha: Vec::new(),
            y_mean: 0.0,
            residual_std: 0.0,
            fitted: false,
        }
    }

    fn kernel(&self, a: &[f64], b: &[f64]) -> f64 {
        let r2: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
        (-0.5 * r2 / (self.lengthscale * self.lengthscale)).exp()
    }

    fn raw_predict(&self, x: &[f64]) -> f64 {
        let k: f64 = self
            .x_train
            .iter()
            .zip(&self.alpha)
            .map(|(xi, &a)| self.kernel(xi, x) * a)
            .sum();
        k + self.y_mean
    }
}

impl Surrogate for KernelRidge {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) {
        assert_eq!(x.len(), y.len(), "x/y length mismatch");
        assert!(!x.is_empty(), "cannot fit on empty data");
        let n = x.len();
        self.x_train = x.to_vec();
        // Median-heuristic lengthscale (same as the GP).
        let mut dists = Vec::new();
        for i in 0..n {
            for j in i + 1..n {
                let d: f64 = x[i]
                    .iter()
                    .zip(&x[j])
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
                    .sqrt();
                if d > 0.0 {
                    dists.push(d);
                }
            }
        }
        self.lengthscale = if dists.is_empty() {
            1.0
        } else {
            dists.sort_by(|a, b| a.partial_cmp(b).expect("NaN distance"));
            dists[dists.len() / 2]
        };
        self.y_mean = y.iter().sum::<f64>() / n as f64;
        let y_c: Vec<f64> = y.iter().map(|v| v - self.y_mean).collect();

        let mut k = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let v = self.kernel(&x[i], &x[j]);
                k[(i, j)] = v;
                k[(j, i)] = v;
            }
            k[(i, i)] += self.lambda;
        }
        let l = cholesky(&k).expect("K + λI is positive definite for λ > 0");
        self.alpha = cho_solve(&l, &y_c);
        self.fitted = true;

        let sse: f64 = x
            .iter()
            .zip(y)
            .map(|(xi, &yi)| (self.raw_predict(xi) - yi).powi(2))
            .sum();
        self.residual_std = (sse / n as f64).sqrt();
    }

    fn predict(&self, x: &[f64]) -> (f64, f64) {
        assert!(self.fitted, "predict before fit");
        (self.raw_predict(x), self.residual_std)
    }

    fn is_fitted(&self) -> bool {
        self.fitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_smooth_function() {
        let x: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64 / 29.0]).collect();
        let y: Vec<f64> = x.iter().map(|p| (p[0] * 4.0).cos()).collect();
        let mut m = KernelRidge::new(1e-4);
        m.fit(&x, &y);
        for probe in [0.15, 0.55, 0.85] {
            let (pred, _) = m.predict(&[probe]);
            let truth = (probe * 4.0f64).cos();
            assert!((pred - truth).abs() < 0.05, "{probe}: {pred} vs {truth}");
        }
    }

    #[test]
    fn heavier_regularization_smooths_more() {
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 / 19.0]).collect();
        // Zig-zag target.
        let y: Vec<f64> = (0..20)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let mut tight = KernelRidge::new(1e-6);
        let mut loose = KernelRidge::new(10.0);
        tight.fit(&x, &y);
        loose.fit(&x, &y);
        // The heavily regularized model shrinks towards the mean (0).
        assert!(loose.predict(&[0.0]).0.abs() < tight.predict(&[0.0]).0.abs());
        assert!(loose.predict(&[0.0]).1 > tight.predict(&[0.0]).1);
    }

    #[test]
    #[should_panic(expected = "lambda must be positive")]
    fn zero_lambda_rejected() {
        KernelRidge::new(0.0);
    }
}
