//! Tree ensembles: Random Forest and Extra Trees.
//!
//! The ensemble's predictive mean is the average of tree predictions, and
//! its uncertainty is the spread across trees — points far from the
//! training data land in different leaves per tree, widening the spread.
//! This is exactly how scikit-optimize derives `std` from its `ET`/`RF`
//! base estimators.

use super::tree::{RegressionTree, TreeParams};
use super::Surrogate;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Ensemble configuration.
#[derive(Debug, Clone, Copy)]
pub struct ForestParams {
    /// Number of trees.
    pub n_trees: usize,
    /// Bootstrap-resample the training set per tree (random forest) or
    /// train each tree on the full data (extra trees).
    pub bootstrap: bool,
    /// Per-tree construction parameters.
    pub tree: TreeParams,
}

/// A bagged ensemble of regression trees.
pub struct Forest {
    params: ForestParams,
    seed: u64,
    trees: Vec<RegressionTree>,
}

impl Forest {
    /// Generic constructor.
    pub fn new(params: ForestParams, seed: u64) -> Self {
        assert!(params.n_trees > 0, "need at least one tree");
        Forest {
            params,
            seed,
            trees: Vec::new(),
        }
    }

    /// The paper's `base_estimator='ET'`: randomized thresholds, full
    /// training set per tree.
    pub fn extra_trees(n_trees: usize, seed: u64) -> Self {
        Forest::new(
            ForestParams {
                n_trees,
                bootstrap: false,
                tree: TreeParams::extra(),
            },
            seed,
        )
    }

    /// Classic random forest: best splits on bootstrap resamples.
    pub fn random_forest(n_trees: usize, seed: u64) -> Self {
        Forest::new(
            ForestParams {
                n_trees,
                bootstrap: true,
                tree: TreeParams::cart(),
            },
            seed,
        )
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.params.n_trees
    }

    /// Ensemble mean and spread over per-tree predictions.
    fn moments(preds: &[f64]) -> (f64, f64) {
        let n = preds.len() as f64;
        let mean = preds.iter().sum::<f64>() / n;
        let var = preds.iter().map(|p| (p - mean).powi(2)).sum::<f64>() / n;
        (mean, var.sqrt())
    }
}

impl Surrogate for Forest {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) {
        assert_eq!(x.len(), y.len(), "x/y length mismatch");
        assert!(!x.is_empty(), "cannot fit on empty data");
        self.trees.clear();
        let mut rng = StdRng::seed_from_u64(self.seed);
        for t in 0..self.params.n_trees {
            let tree_seed = self.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ t as u64;
            let mut tree = RegressionTree::new(self.params.tree, tree_seed);
            if self.params.bootstrap {
                let n = x.len();
                let mut bx = Vec::with_capacity(n);
                let mut by = Vec::with_capacity(n);
                for _ in 0..n {
                    let i = rng.gen_range(0..n);
                    bx.push(x[i].clone());
                    by.push(y[i]);
                }
                tree.fit(&bx, &by);
            } else {
                tree.fit(x, y);
            }
            self.trees.push(tree);
        }
    }

    fn predict(&self, x: &[f64]) -> (f64, f64) {
        assert!(!self.trees.is_empty(), "predict before fit");
        let preds: Vec<f64> = self.trees.iter().map(|t| t.predict(x).0).collect();
        Self::moments(&preds)
    }

    fn predict_many(&self, xs: &[Vec<f64>]) -> Vec<(f64, f64)> {
        assert!(!self.trees.is_empty(), "predict before fit");
        // One per-tree buffer for the whole batch instead of a fresh Vec
        // per point. The accumulation order matches `predict` exactly, so
        // both paths return bit-identical values.
        let mut preds = vec![0.0f64; self.trees.len()];
        xs.iter()
            .map(|x| {
                for (slot, tree) in preds.iter_mut().zip(&self.trees) {
                    *slot = tree.predict(x).0;
                }
                Self::moments(&preds)
            })
            .collect()
    }

    fn is_fitted(&self) -> bool {
        !self.trees.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn noisy_sine(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x: Vec<Vec<f64>> = (0..n).map(|_| vec![rng.gen::<f64>()]).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|p| (p[0] * 6.0).sin() + 0.05 * rng.gen::<f64>())
            .collect();
        (x, y)
    }

    #[test]
    fn extra_trees_fits_sine() {
        let (x, y) = noisy_sine(300, 1);
        let mut f = Forest::extra_trees(30, 5);
        f.fit(&x, &y);
        for probe in [0.1, 0.4, 0.8] {
            let (m, _) = f.predict(&[probe]);
            let truth = (probe * 6.0f64).sin();
            assert!((m - truth).abs() < 0.25, "at {probe}: {m} vs {truth}");
        }
    }

    #[test]
    fn random_forest_fits_sine() {
        let (x, y) = noisy_sine(300, 2);
        let mut f = Forest::random_forest(30, 5);
        f.fit(&x, &y);
        let (m, _) = f.predict(&[0.5]);
        let truth = (0.5f64 * 6.0).sin();
        assert!((m - truth).abs() < 0.25, "{m} vs {truth}");
    }

    #[test]
    fn ensemble_spread_peaks_at_ambiguity() {
        // Trees disagree most where the target is steepest: for a step at
        // 0.5, the per-tree split thresholds scatter around the boundary,
        // so the ensemble spread at 0.5 must exceed the spread deep inside
        // a flat region. (Note tree ensembles extrapolate *constants*
        // off-data — "more uncertainty far away" is a GP property, not a
        // forest property.)
        let mut rng = StdRng::seed_from_u64(3);
        let x: Vec<Vec<f64>> = (0..150).map(|_| vec![rng.gen::<f64>()]).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|p| if p[0] > 0.5 { 1.0 } else { 0.0 })
            .collect();
        let mut f = Forest::extra_trees(40, 9);
        f.fit(&x, &y);
        let (_, s_boundary) = f.predict(&[0.5]);
        let (_, s_flat) = f.predict(&[0.1]);
        assert!(
            s_boundary > s_flat,
            "boundary {s_boundary} <= flat {s_flat}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = noisy_sine(100, 4);
        let mut a = Forest::extra_trees(10, 77);
        let mut b = Forest::extra_trees(10, 77);
        a.fit(&x, &y);
        b.fit(&x, &y);
        assert_eq!(a.predict(&[0.3]), b.predict(&[0.3]));
    }

    #[test]
    fn different_seeds_differ() {
        let (x, y) = noisy_sine(100, 4);
        let mut a = Forest::extra_trees(10, 1);
        let mut b = Forest::extra_trees(10, 2);
        a.fit(&x, &y);
        b.fit(&x, &y);
        assert_ne!(a.predict(&[0.3]), b.predict(&[0.3]));
    }

    #[test]
    #[should_panic(expected = "at least one tree")]
    fn zero_trees_rejected() {
        Forest::new(
            ForestParams {
                n_trees: 0,
                bootstrap: false,
                tree: TreeParams::extra(),
            },
            0,
        );
    }
}
