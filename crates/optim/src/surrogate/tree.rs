//! CART-style regression trees, with the randomized-split variant used by
//! Extra Trees.

use super::Surrogate;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Tree construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct TreeParams {
    /// Maximum depth (root = 0).
    pub max_depth: usize,
    /// Do not split nodes smaller than this.
    pub min_samples_split: usize,
    /// Leaves keep at least this many samples.
    pub min_samples_leaf: usize,
    /// Fraction of features considered at each split (1.0 = all).
    pub max_features: f64,
    /// Extra-Trees mode: draw one uniform random threshold per candidate
    /// feature instead of scanning for the best cut point.
    pub random_threshold: bool,
}

impl TreeParams {
    /// Classic CART: exhaustive best-split search over all features.
    pub fn cart() -> Self {
        TreeParams {
            max_depth: 16,
            min_samples_split: 2,
            min_samples_leaf: 1,
            max_features: 1.0,
            random_threshold: false,
        }
    }

    /// An Extra-Trees member: random thresholds, all features considered.
    pub fn extra() -> Self {
        TreeParams {
            random_threshold: true,
            ..TreeParams::cart()
        }
    }
}

enum Node {
    Leaf {
        mean: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A single regression tree.
pub struct RegressionTree {
    params: TreeParams,
    rng: StdRng,
    nodes: Vec<Node>,
    fitted: bool,
    /// Training-residual std, reported as the (weak) uncertainty of a
    /// single tree.
    residual_std: f64,
}

impl RegressionTree {
    /// New unfitted tree.
    pub fn new(params: TreeParams, seed: u64) -> Self {
        RegressionTree {
            params,
            rng: StdRng::seed_from_u64(seed),
            nodes: Vec::new(),
            fitted: false,
            residual_std: 0.0,
        }
    }

    fn build(&mut self, x: &[Vec<f64>], y: &[f64], idx: Vec<usize>, depth: usize) -> usize {
        let mean = idx.iter().map(|&i| y[i]).sum::<f64>() / idx.len() as f64;
        let sse: f64 = idx.iter().map(|&i| (y[i] - mean).powi(2)).sum();
        let stop = depth >= self.params.max_depth
            || idx.len() < self.params.min_samples_split
            || sse <= 1e-12;
        if stop {
            self.nodes.push(Node::Leaf { mean });
            return self.nodes.len() - 1;
        }
        match self.best_split(x, y, &idx) {
            None => {
                self.nodes.push(Node::Leaf { mean });
                self.nodes.len() - 1
            }
            Some((feature, threshold)) => {
                let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
                    idx.into_iter().partition(|&i| x[i][feature] <= threshold);
                // Guard: degenerate partitions fall back to a leaf.
                if left_idx.len() < self.params.min_samples_leaf
                    || right_idx.len() < self.params.min_samples_leaf
                {
                    self.nodes.push(Node::Leaf { mean });
                    return self.nodes.len() - 1;
                }
                // Reserve our slot before recursing so children get stable
                // indices.
                let slot = self.nodes.len();
                self.nodes.push(Node::Leaf { mean }); // placeholder
                let left = self.build(x, y, left_idx, depth + 1);
                let right = self.build(x, y, right_idx, depth + 1);
                self.nodes[slot] = Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                };
                slot
            }
        }
    }

    /// Pick the split `(feature, threshold)` minimizing the children's
    /// summed squared error, or `None` if nothing separates the samples.
    fn best_split(&mut self, x: &[Vec<f64>], y: &[f64], idx: &[usize]) -> Option<(usize, f64)> {
        let n_features = x[0].len();
        let k =
            ((n_features as f64 * self.params.max_features).ceil() as usize).clamp(1, n_features);
        // Sample k distinct features.
        let mut features: Vec<usize> = (0..n_features).collect();
        for i in 0..k {
            let j = self.rng.gen_range(i..n_features);
            features.swap(i, j);
        }
        let mut best: Option<(f64, usize, f64)> = None; // (score, feature, threshold)
        for &f in &features[..k] {
            let lo = idx.iter().map(|&i| x[i][f]).fold(f64::INFINITY, f64::min);
            let hi = idx
                .iter()
                .map(|&i| x[i][f])
                .fold(f64::NEG_INFINITY, f64::max);
            if hi <= lo {
                continue;
            }
            let thresholds: Vec<f64> = if self.params.random_threshold {
                vec![lo + self.rng.gen::<f64>() * (hi - lo)]
            } else {
                // Scan midpoints between consecutive distinct values.
                let mut vals: Vec<f64> = idx.iter().map(|&i| x[i][f]).collect();
                vals.sort_by(|a, b| a.partial_cmp(b).expect("NaN feature"));
                vals.dedup();
                vals.windows(2).map(|w| (w[0] + w[1]) / 2.0).collect()
            };
            for t in thresholds {
                let (mut nl, mut sl, mut ssl) = (0usize, 0.0, 0.0);
                let (mut nr, mut sr, mut ssr) = (0usize, 0.0, 0.0);
                for &i in idx {
                    let v = y[i];
                    if x[i][f] <= t {
                        nl += 1;
                        sl += v;
                        ssl += v * v;
                    } else {
                        nr += 1;
                        sr += v;
                        ssr += v * v;
                    }
                }
                if nl < self.params.min_samples_leaf || nr < self.params.min_samples_leaf {
                    continue;
                }
                // SSE = Σy² - (Σy)²/n for each side.
                let score = (ssl - sl * sl / nl as f64) + (ssr - sr * sr / nr as f64);
                if best.is_none_or(|(b, _, _)| score < b) {
                    best = Some((score, f, t));
                }
            }
        }
        best.map(|(_, f, t)| (f, t))
    }

    fn predict_one(&self, x: &[f64]) -> f64 {
        let mut node = 0;
        loop {
            match &self.nodes[node] {
                Node::Leaf { mean } => return *mean,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if x[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Number of nodes (for tests/diagnostics).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

impl Surrogate for RegressionTree {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) {
        assert_eq!(x.len(), y.len(), "x/y length mismatch");
        assert!(!x.is_empty(), "cannot fit on empty data");
        self.nodes.clear();
        let idx: Vec<usize> = (0..x.len()).collect();
        self.build(x, y, idx, 0);
        self.fitted = true;
        let sse: f64 = x
            .iter()
            .zip(y)
            .map(|(xi, &yi)| (self.predict_one(xi) - yi).powi(2))
            .sum();
        self.residual_std = (sse / x.len() as f64).sqrt();
    }

    fn predict(&self, x: &[f64]) -> (f64, f64) {
        assert!(self.fitted, "predict before fit");
        (self.predict_one(x), self.residual_std)
    }

    fn is_fitted(&self) -> bool {
        self.fitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_data() -> (Vec<Vec<f64>>, Vec<f64>) {
        // y = 1 if x0 > 0.5 else 0 — one split suffices.
        let x: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 / 40.0]).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|p| if p[0] > 0.5 { 1.0 } else { 0.0 })
            .collect();
        (x, y)
    }

    #[test]
    fn cart_learns_a_step() {
        let (x, y) = step_data();
        let mut tree = RegressionTree::new(TreeParams::cart(), 0);
        tree.fit(&x, &y);
        assert_eq!(tree.predict(&[0.2]).0, 0.0);
        assert_eq!(tree.predict(&[0.9]).0, 1.0);
        // Training fit of a pure step is exact.
        assert!(tree.predict(&[0.2]).1 < 1e-9);
    }

    #[test]
    fn extra_tree_learns_a_step_too() {
        let (x, y) = step_data();
        let mut tree = RegressionTree::new(TreeParams::extra(), 3);
        tree.fit(&x, &y);
        assert!(tree.predict(&[0.1]).0 < 0.3);
        assert!(tree.predict(&[0.95]).0 > 0.7);
    }

    #[test]
    fn constant_target_yields_single_leaf() {
        let x: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let y = vec![5.0; 10];
        let mut tree = RegressionTree::new(TreeParams::cart(), 0);
        tree.fit(&x, &y);
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.predict(&[3.0]).0, 5.0);
    }

    #[test]
    fn depth_limit_respected() {
        let x: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let params = TreeParams {
            max_depth: 2,
            ..TreeParams::cart()
        };
        let mut tree = RegressionTree::new(params, 0);
        tree.fit(&x, &y);
        // Depth-2 tree has at most 4 leaves + 3 splits = 7 nodes.
        assert!(tree.node_count() <= 7, "{}", tree.node_count());
    }

    #[test]
    fn two_feature_interaction() {
        // y depends on x1 only; splits must pick feature 1.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..20 {
            for j in 0..20 {
                x.push(vec![i as f64 / 20.0, j as f64 / 20.0]);
                y.push(if j >= 10 { 2.0 } else { -2.0 });
            }
        }
        let mut tree = RegressionTree::new(TreeParams::cart(), 0);
        tree.fit(&x, &y);
        assert_eq!(tree.predict(&[0.5, 0.9]).0, 2.0);
        assert_eq!(tree.predict(&[0.5, 0.1]).0, -2.0);
    }

    #[test]
    #[should_panic(expected = "predict before fit")]
    fn predict_unfitted_panics() {
        let tree = RegressionTree::new(TreeParams::cart(), 0);
        tree.predict(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn fit_empty_panics() {
        let mut tree = RegressionTree::new(TreeParams::cart(), 0);
        tree.fit(&[], &[]);
    }
}
