//! The optimization-problem formalization of Eq. 1.
//!
//! The paper states the general form: minimize/maximize `f_m(x)` subject to
//! inequality constraints `g_j(x) ≤ 0`, equality constraints `h_k(x) = 0`
//! and variable bounds. [`OptimizationProblem`] captures that structure and
//! offers a penalized scalar evaluation so any minimizer in this crate can
//! honor constraints.

use crate::space::Space;

/// A scalar function over external-unit decision vectors, as used for
/// objectives and constraints.
pub type ScalarFn = Box<dyn Fn(&[f64]) -> f64 + Send + Sync>;

/// Whether an objective is minimized or maximized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// Smaller is better.
    Minimize,
    /// Larger is better.
    Maximize,
}

/// A constraint on the decision vector.
pub enum Constraint {
    /// `g(x) ≤ 0`.
    Inequality(ScalarFn),
    /// `h(x) = 0` within `tol`.
    Equality {
        /// The constraint function.
        h: ScalarFn,
        /// Feasibility tolerance.
        tol: f64,
    },
}

impl Constraint {
    /// Violation magnitude (0 when satisfied).
    pub fn violation(&self, x: &[f64]) -> f64 {
        match self {
            Constraint::Inequality(g) => g(x).max(0.0),
            Constraint::Equality { h, tol } => {
                let v = h(x).abs();
                if v <= *tol {
                    0.0
                } else {
                    v
                }
            }
        }
    }
}

/// One objective of a (possibly multi-objective) problem.
pub struct Objective {
    /// Display name (e.g. `user_resp_time`).
    pub name: String,
    /// Optimization direction.
    pub sense: Sense,
    /// The objective function over external-unit points.
    pub f: ScalarFn,
}

/// The full Eq. 1 structure: objectives + constraints + bounded variables.
pub struct OptimizationProblem {
    /// Bounded decision variables.
    pub space: Space,
    /// One or more objectives.
    pub objectives: Vec<Objective>,
    /// Inequality and equality constraints.
    pub constraints: Vec<Constraint>,
    /// Penalty coefficient for constraint violations in
    /// [`OptimizationProblem::penalized`].
    pub penalty: f64,
}

impl OptimizationProblem {
    /// Single-objective problem without constraints.
    pub fn single(
        space: Space,
        name: &str,
        sense: Sense,
        f: impl Fn(&[f64]) -> f64 + Send + Sync + 'static,
    ) -> Self {
        OptimizationProblem {
            space,
            objectives: vec![Objective {
                name: name.to_string(),
                sense,
                f: Box::new(f),
            }],
            constraints: Vec::new(),
            penalty: 1e3,
        }
    }

    /// Add an inequality constraint `g(x) ≤ 0`.
    pub fn subject_to(mut self, g: impl Fn(&[f64]) -> f64 + Send + Sync + 'static) -> Self {
        self.constraints.push(Constraint::Inequality(Box::new(g)));
        self
    }

    /// Add an equality constraint `h(x) = 0` within `tol`.
    pub fn subject_to_eq(
        mut self,
        h: impl Fn(&[f64]) -> f64 + Send + Sync + 'static,
        tol: f64,
    ) -> Self {
        self.constraints.push(Constraint::Equality {
            h: Box::new(h),
            tol,
        });
        self
    }

    /// Add another objective (making the problem multi-objective).
    pub fn and_objective(
        mut self,
        name: &str,
        sense: Sense,
        f: impl Fn(&[f64]) -> f64 + Send + Sync + 'static,
    ) -> Self {
        self.objectives.push(Objective {
            name: name.to_string(),
            sense,
            f: Box::new(f),
        });
        self
    }

    /// Whether all constraints hold at `x`.
    pub fn feasible(&self, x: &[f64]) -> bool {
        self.constraints.iter().all(|c| c.violation(x) == 0.0)
    }

    /// Total constraint violation at `x`.
    pub fn total_violation(&self, x: &[f64]) -> f64 {
        self.constraints.iter().map(|c| c.violation(x)).sum()
    }

    /// Raw objective values at `x`, in declaration order.
    pub fn evaluate(&self, x: &[f64]) -> Vec<f64> {
        self.objectives.iter().map(|o| (o.f)(x)).collect()
    }

    /// Scalarized, penalized, minimization-oriented value: objectives are
    /// sign-normalized to minimization, combined by `weights` (uniform when
    /// `None`), plus `penalty × total_violation`. This is what the
    /// metaheuristics and the Bayesian optimizer consume.
    pub fn penalized(&self, x: &[f64], weights: Option<&[f64]>) -> f64 {
        let default = vec![1.0; self.objectives.len()];
        let w = weights.unwrap_or(&default);
        assert_eq!(w.len(), self.objectives.len(), "one weight per objective");
        let mut total = 0.0;
        for (obj, &wi) in self.objectives.iter().zip(w) {
            let v = (obj.f)(x);
            total += wi
                * match obj.sense {
                    Sense::Minimize => v,
                    Sense::Maximize => -v,
                };
        }
        total + self.penalty * self.total_violation(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metaheuristics::{DifferentialEvolution, Metaheuristic};

    #[test]
    fn single_objective_definition() {
        let p = OptimizationProblem::single(
            Space::new().real("x", -2.0, 2.0),
            "sphere",
            Sense::Minimize,
            |x| x[0] * x[0],
        );
        assert_eq!(p.evaluate(&[1.5]), vec![2.25]);
        assert!(p.feasible(&[1.5]));
        assert_eq!(p.penalized(&[1.5], None), 2.25);
    }

    #[test]
    fn maximization_negates() {
        let p = OptimizationProblem::single(
            Space::new().real("x", 0.0, 1.0),
            "throughput",
            Sense::Maximize,
            |x| x[0],
        );
        assert!(p.penalized(&[0.9], None) < p.penalized(&[0.1], None));
    }

    #[test]
    fn inequality_constraints_penalize() {
        // The paper's example: response time must stay below 3 seconds.
        let p = OptimizationProblem::single(
            Space::new().real("x", 0.0, 10.0),
            "cost",
            Sense::Minimize,
            |x| 10.0 - x[0], // cheaper with bigger x
        )
        .subject_to(|x| x[0] - 3.0); // x <= 3
        assert!(p.feasible(&[2.0]));
        assert!(!p.feasible(&[5.0]));
        assert!((p.total_violation(&[5.0]) - 2.0).abs() < 1e-12);
        // The penalty must overwhelm the objective gain.
        assert!(p.penalized(&[5.0], None) > p.penalized(&[3.0], None));
    }

    #[test]
    fn equality_constraints_use_tolerance() {
        let p = OptimizationProblem::single(
            Space::new().real("x", 0.0, 1.0),
            "f",
            Sense::Minimize,
            |x| x[0],
        )
        .subject_to_eq(|x| x[0] - 0.5, 0.01);
        assert!(p.feasible(&[0.505]));
        assert!(!p.feasible(&[0.6]));
    }

    #[test]
    fn multi_objective_weighted_scalarization() {
        // Fig. 4 (right): minimize communication cost AND end-to-end
        // latency. Encode both and check weights steer the trade-off.
        let p = OptimizationProblem::single(
            Space::new().real("placement", 0.0, 1.0),
            "comm_cost",
            Sense::Minimize,
            |x| x[0], // cost grows toward the cloud
        )
        .and_objective("latency", Sense::Minimize, |x| 1.0 - x[0]); // latency shrinks
        let cost_heavy = p.penalized(&[0.2], Some(&[10.0, 1.0]));
        let cost_heavy_worse = p.penalized(&[0.8], Some(&[10.0, 1.0]));
        assert!(cost_heavy < cost_heavy_worse);
        let lat_heavy = p.penalized(&[0.8], Some(&[1.0, 10.0]));
        let lat_heavy_worse = p.penalized(&[0.2], Some(&[1.0, 10.0]));
        assert!(lat_heavy < lat_heavy_worse);
    }

    #[test]
    fn metaheuristic_respects_constraints_via_penalty() {
        let p = OptimizationProblem::single(
            Space::new().real("x", 0.0, 10.0),
            "f",
            Sense::Minimize,
            |x| (x[0] - 8.0).powi(2), // unconstrained optimum at 8
        )
        .subject_to(|x| x[0] - 5.0); // but x must be <= 5
        let space = p.space.clone();
        let mut de = DifferentialEvolution::new(3);
        let mut obj = |x: &[f64]| p.penalized(x, None);
        let r = de.minimize(&space, &mut obj, 2000);
        assert!(
            (r.best_x[0] - 5.0).abs() < 0.1,
            "constrained optimum at 5, got {:?}",
            r.best_x
        );
    }
}
