//! Property-based tests over the optimization toolkit's invariants.

use e2c_optim::acquisition::{expected_improvement, norm_cdf, probability_of_improvement};
use e2c_optim::bayes::BayesOpt;
use e2c_optim::metaheuristics::{
    DifferentialEvolution, GeneticAlgorithm, Metaheuristic, ParticleSwarm, SimulatedAnnealing,
};
use e2c_optim::sampling::InitialDesign;
use e2c_optim::space::Space;
use e2c_optim::surrogate::SurrogateKind;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_space() -> impl Strategy<Value = Space> {
    ((-20i64..0, 1i64..50), (-5.0f64..0.0, 0.1f64..10.0)).prop_map(
        |((ilo, ispan), (rlo, rspan))| {
            Space::new()
                .int("i", ilo, ilo + ispan)
                .real("r", rlo, rlo + rspan)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Unit-cube mapping always produces points inside the space, for all
    /// designs and space shapes.
    #[test]
    fn designs_stay_in_space(space in arb_space(), n in 1usize..40, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        for design in [
            InitialDesign::Random,
            InitialDesign::Lhs,
            InitialDesign::Halton,
            InitialDesign::Sobol,
            InitialDesign::Grid,
        ] {
            let pts = design.generate(&space, n, &mut rng);
            prop_assert_eq!(pts.len(), n);
            for p in &pts {
                prop_assert!(space.contains(p), "{design:?} escaped: {p:?}");
            }
        }
    }

    /// sanitize() is idempotent and always lands inside the space.
    #[test]
    fn sanitize_idempotent(space in arb_space(), raw in prop::collection::vec(-100.0f64..100.0, 2)) {
        let once = space.sanitize(&raw);
        prop_assert!(space.contains(&once), "{once:?}");
        let twice = space.sanitize(&once);
        prop_assert_eq!(once, twice);
    }

    /// to_unit/from_unit round-trips integer dimension values exactly.
    #[test]
    fn unit_roundtrip_integers(lo in -50i64..50, span in 1i64..100, seed in 0u64..500) {
        let space = Space::new().int("x", lo, lo + span);
        let mut rng = StdRng::seed_from_u64(seed);
        let p = space.sample(&mut rng);
        let u = space.to_unit(&p);
        prop_assert!(u.iter().all(|&x| (0.0..=1.0).contains(&x)));
        let back = space.from_unit(&u);
        prop_assert_eq!(p, back);
    }

    /// The normal CDF is monotone and bounded.
    #[test]
    fn cdf_monotone(a in -6.0f64..6.0, b in -6.0f64..6.0) {
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        prop_assert!(norm_cdf(lo) <= norm_cdf(hi) + 1e-12);
        prop_assert!((0.0..=1.0).contains(&norm_cdf(a)));
    }

    /// EI is non-negative and PI is a probability, for any inputs.
    #[test]
    fn acquisition_bounds(mean in -10.0f64..10.0, std in 0.0f64..5.0, best in -10.0f64..10.0) {
        prop_assert!(expected_improvement(mean, std, best) >= 0.0);
        let pi = probability_of_improvement(mean, std, best);
        prop_assert!((0.0..=1.0).contains(&pi));
    }

    /// Every surrogate's prediction is finite with non-negative std on
    /// arbitrary (finite) training data.
    #[test]
    fn surrogates_finite(
        data in prop::collection::vec(((0.0f64..1.0), (0.0f64..1.0), (-100.0f64..100.0)), 3..25),
        probe_x in 0.0f64..1.0,
        probe_y in 0.0f64..1.0,
    ) {
        let x: Vec<Vec<f64>> = data.iter().map(|(a, b, _)| vec![*a, *b]).collect();
        let y: Vec<f64> = data.iter().map(|(_, _, v)| *v).collect();
        for kind in SurrogateKind::all() {
            let mut m = kind.build(1);
            m.fit(&x, &y);
            let (mean, std) = m.predict(&[probe_x, probe_y]);
            prop_assert!(mean.is_finite(), "{kind:?} mean not finite");
            prop_assert!(std.is_finite() && std >= 0.0, "{kind:?} std bad: {std}");
        }
    }

    /// BayesOpt never proposes a point outside its space, whatever the
    /// seed and objective.
    #[test]
    fn bayes_asks_stay_in_space(seed in 0u64..200, shift in -5.0f64..5.0) {
        let space = Space::new().int("a", 0, 15).real("b", -1.0, 1.0);
        let mut opt = BayesOpt::new(space, seed).n_initial_points(4);
        for _ in 0..12 {
            let p = opt.ask();
            prop_assert!(opt.space().contains(&p), "{p:?}");
            let y = (p[0] - shift).powi(2) + p[1].abs();
            opt.tell(p, y);
        }
    }

    /// best() equals the minimum of everything told.
    #[test]
    fn bayes_best_is_min(values in prop::collection::vec(-100.0f64..100.0, 1..20)) {
        let space = Space::new().int("a", 0, 1000);
        let mut opt = BayesOpt::new(space, 1);
        for (i, &v) in values.iter().enumerate() {
            opt.tell(vec![i as f64], v);
        }
        let (_, best) = opt.best().unwrap();
        let expect = values.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assert_eq!(best, expect);
    }
}

proptest! {
    // Metaheuristics are slower; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// All metaheuristics return a point inside the space whose value
    /// equals the reported best, and never beat the true optimum.
    #[test]
    fn metaheuristics_sound(seed in 0u64..100, cx in -3.0f64..3.0, cy in -3.0f64..3.0) {
        let space = Space::new().real("x", -4.0, 4.0).real("y", -4.0, 4.0);
        let algos: Vec<Box<dyn Metaheuristic>> = vec![
            Box::new(GeneticAlgorithm::new(seed)),
            Box::new(DifferentialEvolution::new(seed)),
            Box::new(SimulatedAnnealing::new(seed)),
            Box::new(ParticleSwarm::new(seed)),
        ];
        for mut algo in algos {
            let mut f = |p: &[f64]| (p[0] - cx).powi(2) + (p[1] - cy).powi(2);
            let r = algo.minimize(&space, &mut f, 600);
            prop_assert!(space.contains(&space.sanitize(&r.best_x)));
            let check = (r.best_x[0] - cx).powi(2) + (r.best_x[1] - cy).powi(2);
            prop_assert!((check - r.best_f).abs() < 1e-9, "{} misreports", algo.name());
            prop_assert!(r.best_f >= 0.0);
        }
    }
}
