//! Hardware descriptions for testbed nodes.

/// CPU configuration of a node.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuSpec {
    /// Marketing name, e.g. "Intel Xeon Gold 6126".
    pub model: String,
    /// Number of sockets.
    pub sockets: u32,
    /// Physical cores per socket.
    pub cores_per_socket: u32,
    /// Base clock in GHz.
    pub ghz: f64,
}

impl CpuSpec {
    /// Total physical cores across sockets.
    pub fn total_cores(&self) -> u32 {
        self.sockets * self.cores_per_socket
    }

    /// Hardware threads assuming 2-way SMT (how schedulers see the node).
    pub fn hw_threads(&self) -> u32 {
        self.total_cores() * 2
    }
}

/// GPU configuration of a node.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuSpec {
    /// Marketing name, e.g. "Nvidia Tesla V100-PCIE-32GB".
    pub model: String,
    /// Device memory per GPU, in GB.
    pub memory_gb: f64,
    /// Number of GPUs of this kind on the node.
    pub count: u32,
}

/// Full node description, as published in the Grid'5000 reference API.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSpec {
    /// Cluster this node model belongs to.
    pub cluster: String,
    /// Site hosting the cluster (e.g. "lille").
    pub site: String,
    /// CPU configuration.
    pub cpu: CpuSpec,
    /// GPU configuration, if the node has accelerators.
    pub gpu: Option<GpuSpec>,
    /// Main memory in GB.
    pub memory_gb: f64,
    /// Primary NIC speed in Gbps.
    pub nic_gbps: f64,
}

impl NodeSpec {
    /// Whether the node carries at least one GPU.
    pub fn has_gpu(&self) -> bool {
        self.gpu.as_ref().is_some_and(|g| g.count > 0)
    }

    /// Total GPU memory across devices (0 without GPUs).
    pub fn total_gpu_memory_gb(&self) -> f64 {
        self.gpu
            .as_ref()
            .map(|g| g.memory_gb * g.count as f64)
            .unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v100_node() -> NodeSpec {
        NodeSpec {
            cluster: "chifflot".into(),
            site: "lille".into(),
            cpu: CpuSpec {
                model: "Intel Xeon Gold 6126".into(),
                sockets: 2,
                cores_per_socket: 12,
                ghz: 2.6,
            },
            gpu: Some(GpuSpec {
                model: "Nvidia Tesla V100-PCIE-32GB".into(),
                memory_gb: 32.0,
                count: 2,
            }),
            memory_gb: 192.0,
            nic_gbps: 25.0,
        }
    }

    #[test]
    fn core_counts() {
        let n = v100_node();
        assert_eq!(n.cpu.total_cores(), 24);
        assert_eq!(n.cpu.hw_threads(), 48);
    }

    #[test]
    fn gpu_memory_totals() {
        let n = v100_node();
        assert!(n.has_gpu());
        assert_eq!(n.total_gpu_memory_gb(), 64.0);
        let mut cpu_only = n.clone();
        cpu_only.gpu = None;
        assert!(!cpu_only.has_gpu());
        assert_eq!(cpu_only.total_gpu_memory_gb(), 0.0);
    }
}
