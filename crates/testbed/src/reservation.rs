//! Node inventory and reservations.

use crate::hardware::NodeSpec;
use std::collections::BTreeMap;
use std::fmt;

/// Identifies a node within a [`Testbed`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// A physical node: its spec plus allocation state.
#[derive(Debug, Clone)]
pub struct Node {
    /// Node identity.
    pub id: NodeId,
    /// Hostname in Grid'5000 style, e.g. `chifflot-3.lille`.
    pub hostname: String,
    /// Hardware description.
    pub spec: NodeSpec,
    reserved_by: Option<u64>,
}

impl Node {
    /// Whether the node is currently part of a reservation.
    pub fn is_reserved(&self) -> bool {
        self.reserved_by.is_some()
    }
}

/// Why a reservation could not be satisfied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReserveError {
    /// The named cluster does not exist in this testbed.
    UnknownCluster(String),
    /// Not enough free nodes: `(cluster, requested, available)`.
    Insufficient(String, usize, usize),
}

impl fmt::Display for ReserveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReserveError::UnknownCluster(c) => write!(f, "unknown cluster: {c}"),
            ReserveError::Insufficient(c, want, have) => {
                write!(f, "cluster {c}: requested {want} nodes, {have} free")
            }
        }
    }
}

impl std::error::Error for ReserveError {}

/// A granted reservation: a job id plus the node ids it holds.
#[derive(Debug, Clone)]
pub struct Reservation {
    /// OAR-style job identifier.
    pub job_id: u64,
    /// Nodes granted to this job.
    pub nodes: Vec<NodeId>,
}

/// The node inventory with reserve/release semantics (an OAR look-alike).
#[derive(Debug, Clone, Default)]
pub struct Testbed {
    nodes: Vec<Node>,
    clusters: BTreeMap<String, Vec<NodeId>>,
    next_job: u64,
}

impl Testbed {
    /// An empty testbed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `count` identical nodes of the given model.
    pub fn add_cluster(&mut self, spec: NodeSpec, count: usize) {
        let cluster = spec.cluster.clone();
        let ids = self.clusters.entry(cluster.clone()).or_default();
        let base = ids.len();
        for i in 0..count {
            let id = NodeId(self.nodes.len() as u32);
            self.nodes.push(Node {
                id,
                hostname: format!("{}-{}.{}", cluster, base + i + 1, spec.site),
                spec: spec.clone(),
                reserved_by: None,
            });
            ids.push(id);
        }
    }

    /// Total nodes in the inventory.
    pub fn total_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Cluster names, sorted.
    pub fn clusters(&self) -> Vec<&str> {
        self.clusters.keys().map(|s| s.as_str()).collect()
    }

    /// Free node count in a cluster (0 for unknown clusters).
    pub fn free_in(&self, cluster: &str) -> usize {
        self.clusters
            .get(cluster)
            .map(|ids| {
                ids.iter()
                    .filter(|id| !self.nodes[id.0 as usize].is_reserved())
                    .count()
            })
            .unwrap_or(0)
    }

    /// Look up a node.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    /// Reserve `count` free nodes on `cluster`. Nodes are granted in
    /// deterministic (id) order, mirroring how a batch scheduler fills a
    /// cluster.
    pub fn reserve(&mut self, cluster: &str, count: usize) -> Result<Reservation, ReserveError> {
        let ids = self
            .clusters
            .get(cluster)
            .ok_or_else(|| ReserveError::UnknownCluster(cluster.to_string()))?;
        let free: Vec<NodeId> = ids
            .iter()
            .copied()
            .filter(|id| !self.nodes[id.0 as usize].is_reserved())
            .collect();
        if free.len() < count {
            return Err(ReserveError::Insufficient(
                cluster.to_string(),
                count,
                free.len(),
            ));
        }
        self.next_job += 1;
        let job_id = self.next_job;
        let granted: Vec<NodeId> = free.into_iter().take(count).collect();
        for id in &granted {
            self.nodes[id.0 as usize].reserved_by = Some(job_id);
        }
        Ok(Reservation {
            job_id,
            nodes: granted,
        })
    }

    /// Release every node held by a reservation.
    pub fn release(&mut self, reservation: &Reservation) {
        for id in &reservation.nodes {
            let node = &mut self.nodes[id.0 as usize];
            if node.reserved_by == Some(reservation.job_id) {
                node.reserved_by = None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid5000;

    #[test]
    fn reserve_and_release_roundtrip() {
        let mut tb = grid5000::paper_testbed();
        assert_eq!(tb.free_in("chifflot"), 2);
        let res = tb.reserve("chifflot", 2).unwrap();
        assert_eq!(res.nodes.len(), 2);
        assert_eq!(tb.free_in("chifflot"), 0);
        assert!(tb.node(res.nodes[0]).is_reserved());
        tb.release(&res);
        assert_eq!(tb.free_in("chifflot"), 2);
    }

    #[test]
    fn insufficient_nodes_error() {
        let mut tb = grid5000::paper_testbed();
        let err = tb.reserve("chifflot", 3).unwrap_err();
        assert_eq!(err, ReserveError::Insufficient("chifflot".into(), 3, 2));
        assert!(err.to_string().contains("3 nodes"));
    }

    #[test]
    fn unknown_cluster_error() {
        let mut tb = Testbed::new();
        assert_eq!(
            tb.reserve("nope", 1).unwrap_err(),
            ReserveError::UnknownCluster("nope".into())
        );
    }

    #[test]
    fn hostnames_follow_grid5000_convention() {
        let tb = grid5000::paper_testbed();
        assert_eq!(tb.node(NodeId(0)).hostname, "chifflot-1.lille");
        assert_eq!(tb.node(NodeId(1)).hostname, "chifflot-2.lille");
    }

    #[test]
    fn deterministic_grant_order() {
        let mut a = grid5000::paper_testbed();
        let mut b = grid5000::paper_testbed();
        let ra = a.reserve("gros", 4).unwrap();
        let rb = b.reserve("gros", 4).unwrap();
        assert_eq!(ra.nodes, rb.nodes);
    }

    #[test]
    fn jobs_do_not_release_each_other() {
        let mut tb = grid5000::paper_testbed();
        let r1 = tb.reserve("gros", 2).unwrap();
        let r2 = tb.reserve("gros", 2).unwrap();
        // Release r1 must not free r2's nodes.
        tb.release(&r1);
        assert_eq!(tb.free_in("gros"), 8);
        assert!(tb.node(r2.nodes[0]).is_reserved());
    }
}
