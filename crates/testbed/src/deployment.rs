//! Mapping experiment roles to reserved nodes.
//!
//! E2Clab's workflow configuration distributes *services* to *layers*
//! backed by physical machines. A [`Deployment`] is the resolved mapping:
//! each named role (e.g. `"engine"`, `"clients"`) owns a set of nodes.

use crate::reservation::{NodeId, Testbed};
use std::collections::BTreeMap;

/// Resolved role → nodes assignment for one experiment.
#[derive(Debug, Clone, Default)]
pub struct Deployment {
    roles: BTreeMap<String, Vec<NodeId>>,
}

impl Deployment {
    /// Empty deployment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Assign nodes to a role (appends to any existing assignment).
    pub fn assign(&mut self, role: &str, nodes: &[NodeId]) {
        self.roles
            .entry(role.to_string())
            .or_default()
            .extend_from_slice(nodes);
    }

    /// Nodes backing a role (empty for unknown roles).
    pub fn nodes_of(&self, role: &str) -> &[NodeId] {
        self.roles.get(role).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// All role names, sorted.
    pub fn roles(&self) -> Vec<&str> {
        self.roles.keys().map(|s| s.as_str()).collect()
    }

    /// Total nodes across roles (nodes shared by roles count once per role).
    pub fn total_assigned(&self) -> usize {
        self.roles.values().map(|v| v.len()).sum()
    }

    /// Render a human-readable deployment plan against a testbed, in role
    /// order — this is part of the reproducibility archive.
    pub fn describe(&self, testbed: &Testbed) -> String {
        let mut out = String::new();
        for (role, ids) in &self.roles {
            out.push_str(role);
            out.push_str(":\n");
            for id in ids {
                let node = testbed.node(*id);
                out.push_str(&format!(
                    "  {} ({} cores, {:.0} GB RAM{})\n",
                    node.hostname,
                    node.spec.cpu.total_cores(),
                    node.spec.memory_gb,
                    if node.spec.has_gpu() {
                        format!(", {:.0} GB GPU", node.spec.total_gpu_memory_gb())
                    } else {
                        String::new()
                    }
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid5000;

    #[test]
    fn assign_and_query() {
        let mut tb = grid5000::paper_testbed();
        let engine = tb.reserve("chifflot", 1).unwrap();
        let clients = tb.reserve("gros", 3).unwrap();
        let mut dep = Deployment::new();
        dep.assign("engine", &engine.nodes);
        dep.assign("clients", &clients.nodes);
        assert_eq!(dep.nodes_of("engine").len(), 1);
        assert_eq!(dep.nodes_of("clients").len(), 3);
        assert_eq!(dep.nodes_of("absent").len(), 0);
        assert_eq!(dep.roles(), vec!["clients", "engine"]);
        assert_eq!(dep.total_assigned(), 4);
    }

    #[test]
    fn describe_lists_hardware() {
        let mut tb = grid5000::paper_testbed();
        let engine = tb.reserve("chifflot", 1).unwrap();
        let mut dep = Deployment::new();
        dep.assign("engine", &engine.nodes);
        let text = dep.describe(&tb);
        assert!(text.contains("engine:"));
        assert!(text.contains("chifflot-1.lille"));
        assert!(text.contains("24 cores"));
        assert!(text.contains("64 GB GPU"));
    }

    #[test]
    fn assign_appends() {
        let mut dep = Deployment::new();
        dep.assign("r", &[NodeId(1)]);
        dep.assign("r", &[NodeId(2)]);
        assert_eq!(dep.nodes_of("r"), &[NodeId(1), NodeId(2)]);
    }
}
