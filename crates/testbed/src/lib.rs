//! # e2c-testbed — a Grid'5000-style testbed simulator
//!
//! The paper's experiments run on 42 nodes spread over five Grid'5000
//! clusters. We cannot reserve physical machines here, so this crate
//! provides the closest synthetic equivalent: a catalog of the real
//! clusters' published hardware (cores, memory, GPUs, NICs), a reservation
//! API handing out nodes, and a deployment map from experiment roles to
//! reserved nodes. The application models read node *capacities* (CPU
//! cores, GPU memory) from here, so "deploy the engine on a chifflot node"
//! means simulating against a 2×12-core Xeon with a 32 GB V100 — the same
//! capacities that shaped the paper's results.

pub mod deployment;
pub mod grid5000;
pub mod hardware;
pub mod reservation;

pub use deployment::Deployment;
pub use hardware::{CpuSpec, GpuSpec, NodeSpec};
pub use reservation::{Node, NodeId, Reservation, ReserveError, Testbed};
