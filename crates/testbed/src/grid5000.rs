//! Catalog of the Grid'5000 clusters used by the paper's evaluation.
//!
//! Specs follow the Grid'5000 reference API for the five clusters named in
//! §IV ("Scenario Configuration"): the GPU-equipped `chifflot` nodes host
//! the Pl@ntNet Identification Engine; `chiclet`, `chetemi`, `chifflet` and
//! `gros` host the request clients.

use crate::hardware::{CpuSpec, GpuSpec, NodeSpec};
use crate::reservation::Testbed;

/// Node model of the Lille `chifflot` cluster (Dell PowerEdge R740):
/// 2× Xeon Gold 6126 (12 cores each), 192 GB RAM, 2× Tesla V100 32 GB,
/// 25 Gbps Ethernet.
pub fn chifflot() -> NodeSpec {
    NodeSpec {
        cluster: "chifflot".into(),
        site: "lille".into(),
        cpu: CpuSpec {
            model: "Intel Xeon Gold 6126".into(),
            sockets: 2,
            cores_per_socket: 12,
            ghz: 2.6,
        },
        gpu: Some(GpuSpec {
            model: "Nvidia Tesla V100-PCIE-32GB".into(),
            memory_gb: 32.0,
            count: 2,
        }),
        memory_gb: 192.0,
        nic_gbps: 25.0,
    }
}

/// Node model of the Lille `chiclet` cluster: 2× AMD EPYC 7301 (16 cores
/// each), 128 GB RAM, 25 Gbps.
pub fn chiclet() -> NodeSpec {
    NodeSpec {
        cluster: "chiclet".into(),
        site: "lille".into(),
        cpu: CpuSpec {
            model: "AMD EPYC 7301".into(),
            sockets: 2,
            cores_per_socket: 16,
            ghz: 2.2,
        },
        gpu: None,
        memory_gb: 128.0,
        nic_gbps: 25.0,
    }
}

/// Node model of the Lille `chetemi` cluster: 2× Xeon E5-2630 v4 (10 cores
/// each), 256 GB RAM, 10 Gbps.
pub fn chetemi() -> NodeSpec {
    NodeSpec {
        cluster: "chetemi".into(),
        site: "lille".into(),
        cpu: CpuSpec {
            model: "Intel Xeon E5-2630 v4".into(),
            sockets: 2,
            cores_per_socket: 10,
            ghz: 2.2,
        },
        gpu: None,
        memory_gb: 256.0,
        nic_gbps: 10.0,
    }
}

/// Node model of the Lille `chifflet` cluster: 2× Xeon E5-2680 v4 (14 cores
/// each), 768 GB RAM, 2× GTX 1080 Ti, 10 Gbps.
pub fn chifflet() -> NodeSpec {
    NodeSpec {
        cluster: "chifflet".into(),
        site: "lille".into(),
        cpu: CpuSpec {
            model: "Intel Xeon E5-2680 v4".into(),
            sockets: 2,
            cores_per_socket: 14,
            ghz: 2.4,
        },
        gpu: Some(GpuSpec {
            model: "Nvidia GTX 1080 Ti".into(),
            memory_gb: 11.0,
            count: 2,
        }),
        memory_gb: 768.0,
        nic_gbps: 10.0,
    }
}

/// Node model of the Nancy `gros` cluster: 1× Xeon Gold 5220 (18 cores),
/// 96 GB RAM, 25 Gbps.
pub fn gros() -> NodeSpec {
    NodeSpec {
        cluster: "gros".into(),
        site: "nancy".into(),
        cpu: CpuSpec {
            model: "Intel Xeon Gold 5220".into(),
            sockets: 1,
            cores_per_socket: 18,
            ghz: 2.2,
        },
        gpu: None,
        memory_gb: 96.0,
        nic_gbps: 25.0,
    }
}

/// Build the testbed slice used in the paper: 42 nodes across the five
/// clusters. The paper does not give the exact split beyond "42 nodes"; we
/// allocate 2 GPU nodes for the engine and spread the 40 client nodes
/// evenly across the four client clusters.
pub fn paper_testbed() -> Testbed {
    let mut tb = Testbed::new();
    tb.add_cluster(chifflot(), 2);
    tb.add_cluster(chiclet(), 10);
    tb.add_cluster(chetemi(), 10);
    tb.add_cluster(chifflet(), 10);
    tb.add_cluster(gros(), 10);
    tb
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_has_42_nodes() {
        let tb = paper_testbed();
        assert_eq!(tb.total_nodes(), 42);
        assert_eq!(tb.clusters().len(), 5);
    }

    #[test]
    fn chifflot_matches_paper_specs() {
        let n = chifflot();
        // "Intel Xeon Gold 6126 (Skylake, 2.60GHz, 2 CPUs/node, 12
        // cores/CPU), 192GB of memory ... 25Gbps Ethernet" + V100 32GB.
        assert_eq!(n.cpu.total_cores(), 24);
        assert_eq!(n.memory_gb, 192.0);
        assert_eq!(n.nic_gbps, 25.0);
        assert!(n.has_gpu());
        assert_eq!(n.gpu.as_ref().unwrap().memory_gb, 32.0);
    }

    #[test]
    fn only_gpu_clusters_have_gpus() {
        assert!(chifflot().has_gpu());
        assert!(chifflet().has_gpu());
        assert!(!chiclet().has_gpu());
        assert!(!chetemi().has_gpu());
        assert!(!gros().has_gpu());
    }

    #[test]
    fn sites_are_recorded() {
        assert_eq!(gros().site, "nancy");
        assert_eq!(chiclet().site, "lille");
    }
}
