//! The five codec targets. Each pairs a deterministic input generator
//! (seed corpus + byte mutation) with the property checks its codec
//! promises; see the crate docs for the three property classes.

use crate::engine::{mutate, SplitMix64};
use crate::FuzzTarget;
use e2c_trace::{EventKind, TraceEvent, Value as TraceValue};
use e2c_tune::{RunEvent, WireMsg};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Generate `0..=max` bytes biased toward printable ASCII with the
/// occasional interesting byte — raw soup for the text codecs.
fn random_text_soup(rng: &mut SplitMix64, max: usize) -> Vec<u8> {
    let len = rng.index(max + 1);
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        if rng.chance(1, 6) {
            out.push(rng.next_u64() as u8);
        } else {
            out.push(rng.ascii());
        }
    }
    out
}

/// A short random ASCII identifier (for names, statuses, fingerprints),
/// with occasional escape-relevant characters mixed in.
fn random_name(rng: &mut SplitMix64) -> String {
    let len = rng.index(9);
    let mut s = String::new();
    for _ in 0..len {
        s.push(match rng.below(12) {
            0 => '\\',
            1 => '\t',
            2 => '\n',
            3 => '"',
            _ => rng.ascii() as char,
        });
    }
    s
}

// ---------------------------------------------------------------------
// conf_yaml — the YAML-subset configuration parser.
// ---------------------------------------------------------------------

/// Fixture corpus shared with `crates/conf/tests/corpus.rs`: each `.yaml`
/// document is committed next to the expected `Value::to_tree` rendering,
/// and [`ConfYamlTarget::preflight`] byte-compares the parse against it.
const CONF_CORPUS: &[(&str, &str, &str)] = &[
    (
        "basic",
        include_str!("../../conf/tests/corpus/basic.yaml"),
        include_str!("../../conf/tests/corpus/basic.tree"),
    ),
    (
        "nested",
        include_str!("../../conf/tests/corpus/nested.yaml"),
        include_str!("../../conf/tests/corpus/nested.tree"),
    ),
    (
        "flow",
        include_str!("../../conf/tests/corpus/flow.yaml"),
        include_str!("../../conf/tests/corpus/flow.tree"),
    ),
    (
        "scalars",
        include_str!("../../conf/tests/corpus/scalars.yaml"),
        include_str!("../../conf/tests/corpus/scalars.tree"),
    ),
    (
        "quoted",
        include_str!("../../conf/tests/corpus/quoted.yaml"),
        include_str!("../../conf/tests/corpus/quoted.tree"),
    ),
    (
        "tricky",
        include_str!("../../conf/tests/corpus/tricky.yaml"),
        include_str!("../../conf/tests/corpus/tricky.tree"),
    ),
];

/// Fuzzes `e2c_conf::parse`: no panics on arbitrary text, and any
/// accepted document re-serializes stably (`to_yaml` → `parse` →
/// `to_yaml` is byte-identical). The differential preflight replays the
/// committed fixture corpus against its `.tree` renderings.
pub struct ConfYamlTarget;

impl ConfYamlTarget {
    pub fn new() -> Self {
        ConfYamlTarget
    }
}

impl Default for ConfYamlTarget {
    fn default() -> Self {
        Self::new()
    }
}

impl FuzzTarget for ConfYamlTarget {
    fn name(&self) -> &'static str {
        "conf_yaml"
    }

    fn tags(&self) -> &'static [&'static str] {
        &["text", "smoke"]
    }

    fn preflight(&self) -> Result<(), String> {
        for (name, yaml, tree) in CONF_CORPUS {
            let v = e2c_conf::parse(yaml)
                .map_err(|e| format!("corpus fixture `{name}` no longer parses: {e}"))?;
            if v.to_tree() != *tree {
                return Err(format!(
                    "corpus fixture `{name}` parses to a different tree than committed:\n--- expected\n{tree}--- got\n{}",
                    v.to_tree()
                ));
            }
        }
        Ok(())
    }

    fn generate(&mut self, rng: &mut SplitMix64) -> Vec<u8> {
        if rng.chance(4, 5) {
            let (_, yaml, _) = CONF_CORPUS[rng.index(CONF_CORPUS.len())];
            let mut data = yaml.as_bytes().to_vec();
            mutate(rng, &mut data);
            data
        } else {
            random_text_soup(rng, 96)
        }
    }

    fn check(&self, input: &[u8]) -> Result<(), String> {
        let text = String::from_utf8_lossy(input);
        let Ok(v) = e2c_conf::parse(&text) else {
            return Ok(()); // rejection is fine; panicking is not
        };
        let _ = v.to_tree(); // must be total
        let yaml1 = v.to_yaml();
        let v2 = e2c_conf::parse(&yaml1).map_err(|e| {
            format!("accepted document re-serializes unparseably: {e}\nserialized:\n{yaml1}")
        })?;
        let yaml2 = v2.to_yaml();
        if yaml1 != yaml2 {
            return Err(format!(
                "serialization is not a fixpoint:\nfirst:\n{yaml1}\nsecond:\n{yaml2}"
            ));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// journal_wire — the tab-separated tuner journal records.
// ---------------------------------------------------------------------

/// A random syntactically valid [`RunEvent`] — exercises the accept path
/// of every record family, including non-finite floats and escaped
/// payloads.
fn random_run_event(rng: &mut SplitMix64) -> RunEvent {
    // Arbitrary bit patterns: Display always writes the canonical
    // shortest-roundtrip form, so generated lines are accepted by the
    // strict parser.
    let f = |rng: &mut SplitMix64| f64::from_bits(rng.next_u64());
    match rng.below(7) {
        0 => RunEvent::meta(random_name(rng)),
        1 => RunEvent::Ask {
            trial: rng.below(1000),
            config: (0..rng.index(4)).map(|_| f(rng)).collect(),
        },
        2 => RunEvent::Restart {
            trial: rng.below(1000),
        },
        3 => RunEvent::Report {
            trial: rng.below(1000),
            iteration: rng.below(100),
            normalized: f(rng),
            stop: rng.chance(1, 2),
        },
        4 => RunEvent::Attempt {
            trial: rng.below(1000),
            index: rng.below(4) as u32,
            secs: f(rng),
            raw: rng.chance(1, 2).then(|| f(rng)),
            error: rng
                .chance(1, 2)
                .then(|| e2c_tune::TrialError::Panicked(random_name(rng))),
        },
        5 => RunEvent::Tell {
            trial: rng.below(1000),
            feedback: f(rng),
            status: "terminated".to_string(),
            value: rng.chance(1, 2).then(|| f(rng)),
            trace_mark: rng.chance(1, 2).then(|| (rng.below(100), rng.below(100))),
            asks: rng.chance(1, 2).then(|| rng.below(100)),
        },
        _ => RunEvent::Complete,
    }
}

/// Fuzzes [`RunEvent::parse`]: no panics, and — because field parsing is
/// strict and canonical — decode → encode is the *identity* on every
/// accepted line (`parse(line).to_line() == line`).
pub struct JournalWireTarget;

impl JournalWireTarget {
    pub fn new() -> Self {
        JournalWireTarget
    }
}

impl Default for JournalWireTarget {
    fn default() -> Self {
        Self::new()
    }
}

impl FuzzTarget for JournalWireTarget {
    fn name(&self) -> &'static str {
        "journal_wire"
    }

    fn tags(&self) -> &'static [&'static str] {
        &["text", "smoke"]
    }

    fn generate(&mut self, rng: &mut SplitMix64) -> Vec<u8> {
        match rng.below(5) {
            // Valid line, untouched: exercises the accept + identity path.
            0 | 1 => random_run_event(rng).to_line().into_bytes(),
            // Valid line, mutated: near-miss corruption.
            2 | 3 => {
                let mut data = random_run_event(rng).to_line().into_bytes();
                mutate(rng, &mut data);
                data
            }
            _ => random_text_soup(rng, 64),
        }
    }

    fn check(&self, input: &[u8]) -> Result<(), String> {
        let line = String::from_utf8_lossy(input);
        let Ok(ev) = RunEvent::parse(&line) else {
            return Ok(());
        };
        let reencoded = ev.to_line();
        if reencoded != line {
            return Err(format!(
                "decode → encode is not the identity:\naccepted: {:?}\nre-encoded: {reencoded:?}",
                line.as_ref()
            ));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// worker_wire — the multi-process farm's framed stdio protocol.
// ---------------------------------------------------------------------

/// A random syntactically valid [`WireMsg`] — every frame family,
/// including non-finite floats, empty configs, and aux/event strings full
/// of the wire's escape-relevant characters.
fn random_wire_msg(rng: &mut SplitMix64) -> WireMsg {
    let f = |rng: &mut SplitMix64| f64::from_bits(rng.next_u64());
    match rng.below(6) {
        0 => WireMsg::Hello {
            version: rng.below(4),
        },
        1 => WireMsg::Heartbeat {
            seq: rng.below(1_000_000),
        },
        2 => WireMsg::Ask(e2c_tune::WorkerAsk {
            trial: rng.below(1000),
            attempt: rng.below(4) as u32,
            traced: rng.chance(1, 2),
            config: (0..rng.index(5)).map(|_| f(rng)).collect(),
        }),
        3 => WireMsg::ResultOk {
            trial: rng.below(1000),
            attempt: rng.below(4) as u32,
            reply: e2c_tune::WorkerReply {
                value: f(rng),
                aux: (0..rng.index(3))
                    .map(|_| (random_name(rng), random_name(rng)))
                    .collect(),
                events: (0..rng.index(4))
                    .map(|_| (random_name(rng), rng.chance(1, 2)))
                    .collect(),
                end_clock: rng.below(1_000_000),
            },
        },
        4 => WireMsg::ResultPanic {
            trial: rng.below(1000),
            attempt: rng.below(4) as u32,
            payload: random_name(rng),
        },
        _ => WireMsg::Shutdown,
    }
}

/// Fuzzes [`WireMsg::parse`] — the farm's frame payload codec. No panics
/// on arbitrary text, and — because field parsing is strict and floats
/// are canonical — decode → encode is the *identity* on every accepted
/// payload: a worker and its supervisor can never disagree about what a
/// frame said.
pub struct WorkerWireTarget;

impl WorkerWireTarget {
    pub fn new() -> Self {
        WorkerWireTarget
    }
}

impl Default for WorkerWireTarget {
    fn default() -> Self {
        Self::new()
    }
}

impl FuzzTarget for WorkerWireTarget {
    fn name(&self) -> &'static str {
        "worker_wire"
    }

    fn tags(&self) -> &'static [&'static str] {
        &["text", "smoke"]
    }

    fn generate(&mut self, rng: &mut SplitMix64) -> Vec<u8> {
        match rng.below(5) {
            0 | 1 => random_wire_msg(rng).encode().into_bytes(),
            2 | 3 => {
                let mut data = random_wire_msg(rng).encode().into_bytes();
                mutate(rng, &mut data);
                data
            }
            _ => random_text_soup(rng, 64),
        }
    }

    fn check(&self, input: &[u8]) -> Result<(), String> {
        let payload = String::from_utf8_lossy(input);
        let Ok(msg) = WireMsg::parse(&payload) else {
            return Ok(()); // rejection is fine; panicking is not
        };
        let reencoded = msg.encode();
        if reencoded != payload {
            return Err(format!(
                "decode → encode is not the identity:\naccepted: {:?}\nre-encoded: {reencoded:?}",
                payload.as_ref()
            ));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// trace_jsonl — one-line JSON trace events.
// ---------------------------------------------------------------------

/// A random [`TraceEvent`], including NaN/inf fields and hostile strings.
fn random_trace_event(rng: &mut SplitMix64) -> TraceEvent {
    let mut fields = BTreeMap::new();
    for _ in 0..rng.index(4) {
        let v = match rng.below(5) {
            0 => TraceValue::U64(rng.next_u64()),
            1 => TraceValue::I64(rng.next_u64() as i64),
            2 => TraceValue::F64(f64::from_bits(rng.next_u64())),
            3 => TraceValue::Bool(rng.chance(1, 2)),
            _ => TraceValue::Str(random_name(rng)),
        };
        fields.insert(random_name(rng), v);
    }
    TraceEvent {
        seq: rng.below(1_000_000),
        vt: rng.below(1_000_000),
        phase: random_name(rng),
        name: random_name(rng),
        kind: match rng.below(3) {
            0 => EventKind::Point,
            1 => EventKind::Begin,
            _ => EventKind::End,
        },
        trial: rng.chance(1, 2).then(|| rng.below(100)),
        span: rng.chance(1, 2).then(|| rng.below(100)),
        fields,
    }
}

/// Fuzzes the JSONL trace codec: `Json::parse` and
/// `TraceEvent::from_json` must never panic (including on deep-nesting
/// bombs), and any accepted event's encoding is a fixpoint
/// (`to_json` → `from_json` → `to_json` is byte-identical).
pub struct TraceJsonlTarget;

impl TraceJsonlTarget {
    pub fn new() -> Self {
        TraceJsonlTarget
    }
}

impl Default for TraceJsonlTarget {
    fn default() -> Self {
        Self::new()
    }
}

impl FuzzTarget for TraceJsonlTarget {
    fn name(&self) -> &'static str {
        "trace_jsonl"
    }

    fn tags(&self) -> &'static [&'static str] {
        &["text", "smoke"]
    }

    fn generate(&mut self, rng: &mut SplitMix64) -> Vec<u8> {
        match rng.below(6) {
            0 | 1 => random_trace_event(rng).to_json().into_bytes(),
            2 | 3 => {
                let mut data = random_trace_event(rng).to_json().into_bytes();
                mutate(rng, &mut data);
                data
            }
            4 => {
                // Nesting bombs: brackets/braces stacked past any sane
                // document depth.
                let depth = 1 + rng.index(300);
                let open = if rng.chance(1, 2) { "[" } else { "{\"k\":" };
                open.repeat(depth).into_bytes()
            }
            _ => random_text_soup(rng, 96),
        }
    }

    fn check(&self, input: &[u8]) -> Result<(), String> {
        let text = String::from_utf8_lossy(input);
        // The raw JSON parser must be total (Ok or Err, never unwind).
        let _ = e2c_trace::event::Json::parse(&text);
        let Ok(ev) = TraceEvent::from_json(&text) else {
            return Ok(());
        };
        let j1 = ev.to_json();
        let ev2 = TraceEvent::from_json(&j1)
            .map_err(|e| format!("accepted event re-serializes unparseably: {e}\nline: {j1}"))?;
        let j2 = ev2.to_json();
        if j1 != j2 {
            return Err(format!(
                "encoding is not a fixpoint:\nfirst:  {j1}\nsecond: {j2}"
            ));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// journal_wal — the CRC-framed write-ahead log.
// ---------------------------------------------------------------------

static WAL_SCRATCH_NONCE: AtomicU64 = AtomicU64::new(0);

/// Fuzzes WAL recovery. `scan_records` carries its own oracle: recovered
/// records re-frame to exactly the consumed prefix, and the scan is
/// maximal (it never stops in front of a valid frame). A sampled subset
/// of inputs additionally goes through the file-backed path —
/// `Wal::open` must recover the same records, truncate the torn tail,
/// and accept appends afterwards. The preflight runs the torn-write
/// truncation oracle exhaustively: a valid image cut at *every* byte
/// offset must recover exactly the frames whose end lies at or before
/// the cut.
pub struct JournalWalTarget {
    scratch: PathBuf,
}

impl JournalWalTarget {
    pub fn new() -> Self {
        let nonce = WAL_SCRATCH_NONCE.fetch_add(1, Ordering::Relaxed);
        JournalWalTarget {
            scratch: std::env::temp_dir()
                .join(format!("e2c-fuzz-wal-{}-{nonce}.wal", std::process::id())),
        }
    }

    /// Assemble a valid WAL image from framed payloads.
    fn image(payloads: &[Vec<u8>]) -> Vec<u8> {
        let mut bytes = Vec::new();
        for p in payloads {
            bytes.extend_from_slice(&(p.len() as u32).to_le_bytes());
            bytes.extend_from_slice(&e2c_journal::crc32(p).to_le_bytes());
            bytes.extend_from_slice(p);
        }
        bytes
    }
}

impl Drop for JournalWalTarget {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.scratch);
    }
}

impl Default for JournalWalTarget {
    fn default() -> Self {
        Self::new()
    }
}

impl FuzzTarget for JournalWalTarget {
    fn name(&self) -> &'static str {
        "journal_wal"
    }

    fn tags(&self) -> &'static [&'static str] {
        &["binary", "smoke"]
    }

    fn preflight(&self) -> Result<(), String> {
        // The truncation oracle, exhaustively: for a valid image cut at
        // byte `c`, recovery must yield exactly the record prefix whose
        // framed length fits in `c` — no fewer (lost acknowledged
        // writes), no more (fabricated records).
        let payloads: Vec<Vec<u8>> = vec![
            b"first".to_vec(),
            Vec::new(), // empty payload frames are legal
            vec![0u8; 37],
            b"tail".to_vec(),
        ];
        let bytes = Self::image(&payloads);
        let mut prefix_lens = vec![0usize];
        for p in &payloads {
            prefix_lens.push(prefix_lens.last().unwrap() + e2c_journal::HEADER + p.len());
        }
        for cut in 0..=bytes.len() {
            let expect_n = prefix_lens.iter().filter(|&&l| l <= cut).count() - 1;
            let (records, consumed) = e2c_journal::scan_records(&bytes[..cut]);
            if records.len() != expect_n || consumed != prefix_lens[expect_n] {
                return Err(format!(
                    "cut at {cut}: recovered {} records ({consumed} bytes), oracle expects {expect_n} ({} bytes)",
                    records.len(),
                    prefix_lens[expect_n]
                ));
            }
            if records.iter().zip(&payloads).any(|(r, p)| r != p) {
                return Err(format!("cut at {cut}: recovered record bytes differ"));
            }
        }
        // File-backed recovery agrees with the in-memory scan, truncates
        // the torn tail, and accepts appends afterwards.
        let torn_cut = prefix_lens[2] + 3; // mid-header of the third frame
        std::fs::write(&self.scratch, &bytes[..torn_cut]).map_err(|e| e.to_string())?;
        let (mut wal, recovered) =
            e2c_journal::Wal::open(&self.scratch).map_err(|e| format!("open torn wal: {e}"))?;
        if recovered.len() != 2 {
            return Err(format!(
                "torn open recovered {} records, oracle expects 2",
                recovered.len()
            ));
        }
        wal.append(b"post-recovery")
            .map_err(|e| format!("append after recovery: {e}"))?;
        drop(wal);
        let records = e2c_journal::read_records(&self.scratch).map_err(|e| e.to_string())?;
        if records.len() != 3 || records[2] != b"post-recovery" {
            return Err("append after torn recovery did not persist cleanly".to_string());
        }
        std::fs::remove_file(&self.scratch).map_err(|e| e.to_string())?;
        Ok(())
    }

    fn generate(&mut self, rng: &mut SplitMix64) -> Vec<u8> {
        let payloads: Vec<Vec<u8>> = (0..rng.index(5))
            .map(|_| (0..rng.index(48)).map(|_| rng.next_u64() as u8).collect())
            .collect();
        let mut bytes = Self::image(&payloads);
        if rng.chance(2, 5) {
            // Clean torn-write shape: truncate only.
            let keep = rng.index(bytes.len() + 1);
            bytes.truncate(keep);
        } else {
            mutate(rng, &mut bytes);
        }
        bytes
    }

    fn check(&self, input: &[u8]) -> Result<(), String> {
        let (records, consumed) = e2c_journal::scan_records(input);
        if consumed > input.len() {
            return Err(format!(
                "consumed {consumed} bytes of a {}-byte image",
                input.len()
            ));
        }
        // Recovered records re-frame to exactly the consumed prefix.
        let reframed = Self::image(&records);
        if reframed != input[..consumed] {
            return Err(format!(
                "recovered records re-frame to {} bytes != consumed prefix of {consumed}",
                reframed.len()
            ));
        }
        // Maximality: the scan never stops in front of a valid frame.
        let rem = &input[consumed..];
        if rem.len() >= e2c_journal::HEADER {
            let len = u32::from_le_bytes([rem[0], rem[1], rem[2], rem[3]]);
            if len <= e2c_journal::MAX_RECORD {
                let end = e2c_journal::HEADER + len as usize;
                if rem.len() >= end {
                    let crc = u32::from_le_bytes([rem[4], rem[5], rem[6], rem[7]]);
                    if e2c_journal::crc32(&rem[e2c_journal::HEADER..end]) == crc {
                        return Err(format!(
                            "scan stopped at offset {consumed} in front of a valid {len}-byte frame"
                        ));
                    }
                }
            }
        }
        // File-backed agreement, on a deterministic sample of inputs
        // (fsync per open keeps this off the every-iteration hot path).
        if e2c_journal::crc32(input).is_multiple_of(8) {
            std::fs::write(&self.scratch, input).map_err(|e| e.to_string())?;
            let (wal, recovered) =
                e2c_journal::Wal::open(&self.scratch).map_err(|e| format!("Wal::open: {e}"))?;
            drop(wal);
            if recovered != records {
                return Err(format!(
                    "Wal::open recovered {} records, scan_records {}",
                    recovered.len(),
                    records.len()
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::guard;

    fn exercise(target: &mut dyn FuzzTarget, iters: u64) {
        assert_eq!(
            guard(|| target.preflight()),
            Ok(()),
            "{} preflight",
            target.name()
        );
        let mut rng = SplitMix64::new(0xE2C);
        for i in 0..iters {
            let input = target.generate(&mut rng);
            if let Err(kind) = guard(|| target.check(&input)) {
                panic!(
                    "{} failed at iteration {i}: {kind}\ninput: {:?}",
                    target.name(),
                    String::from_utf8_lossy(&input)
                );
            }
        }
    }

    #[test]
    fn conf_yaml_smoke() {
        exercise(&mut ConfYamlTarget::new(), 300);
    }

    #[test]
    fn journal_wire_smoke() {
        exercise(&mut JournalWireTarget::new(), 300);
    }

    #[test]
    fn worker_wire_smoke() {
        exercise(&mut WorkerWireTarget::new(), 300);
    }

    #[test]
    fn trace_jsonl_smoke() {
        exercise(&mut TraceJsonlTarget::new(), 300);
    }

    #[test]
    fn wire_generator_covers_every_frame_family() {
        let mut rng = SplitMix64::new(23);
        let mut families = std::collections::BTreeSet::new();
        for _ in 0..200 {
            let payload = random_wire_msg(&mut rng).encode();
            families.insert(payload.split('\t').next().unwrap().to_string());
        }
        for family in ["hello", "heartbeat", "ask", "result", "shutdown"] {
            assert!(
                families.contains(family),
                "generator never emitted {family}"
            );
        }
    }

    #[test]
    fn journal_wal_smoke() {
        exercise(&mut JournalWalTarget::new(), 200);
    }

    #[test]
    fn wire_generator_covers_every_record_family() {
        let mut rng = SplitMix64::new(11);
        let mut families = std::collections::BTreeSet::new();
        for _ in 0..200 {
            let line = random_run_event(&mut rng).to_line();
            families.insert(line.split('\t').next().unwrap().to_string());
        }
        for family in [
            "meta", "ask", "restart", "report", "attempt", "tell", "complete",
        ] {
            assert!(
                families.contains(family),
                "generator never emitted {family}"
            );
        }
    }
}
