//! # e2c-fuzz — deterministic fuzz + differential-test harness
//!
//! The repository hand-rolls five codecs — the YAML-subset configuration
//! parser (`e2c-conf`), the tab-separated journal wire format
//! (`e2c-tune`), the worker-farm stdio protocol (`e2c-tune`), the JSONL
//! trace format (`e2c-trace`) and the CRC-framed write-ahead log
//! (`e2c-journal`). Each sits on a crash-recovery or reproducibility
//! path, where a panic on malformed bytes *is* data loss. This crate
//! drives all five with seeded byte mutation and checks three property
//! classes:
//!
//! 1. **No panics** — feeding arbitrary bytes to a parser must return
//!    `Ok`/`Err`, never unwind ([`engine::guard`] converts an unwind into
//!    a reported failure).
//! 2. **Roundtrip identity** — whenever a parser *accepts* an input,
//!    re-encoding must be byte-stable: for the strict journal wire,
//!    `parse(line).to_line() == line`; for YAML and JSONL, the second
//!    encode of `encode(decode(encode(v)))` equals the first. Comparing
//!    bytes (not values) keeps NaN-carrying events honest.
//! 3. **Differential oracles** — the YAML parser is compared against the
//!    committed fixture corpus (`crates/conf/tests/corpus/*.tree`), and
//!    torn-WAL recovery against a truncation oracle that predicts the
//!    exact record prefix a cut must recover.
//!
//! The harness mirrors `e2c-bench`'s registry shape: a [`FuzzTarget`]
//! trait, a builder-style [`FuzzRegistry`]
//! (`with_seed`/`with_iters`/`with_filter`), and `e2clab fuzz` as the CLI
//! entry point. Everything is reproducible: a `(seed, iteration)` pair
//! fully determines the bytes a target sees, and failures are shrunk with
//! [`engine::minimize`] before being reported, so a CI crash artifact is
//! a ready-made regression fixture.

pub mod engine;
pub mod targets;

pub use engine::{FailKind, SplitMix64};
pub use targets::{
    ConfYamlTarget, JournalWalTarget, JournalWireTarget, TraceJsonlTarget, WorkerWireTarget,
};

use std::path::PathBuf;

/// One registered fuzz target: a named codec plus its property checks.
///
/// `generate` derives a candidate input purely from the RNG stream (which
/// the registry seeds per-target from the run seed), and `check` decides
/// whether the codec holds its properties on those bytes. `check` must be
/// a pure function of the input — the minimizer replays it on shrinking
/// candidates — and is always run under [`engine::guard`], so panicking
/// *is* a reportable outcome, not a harness crash.
pub trait FuzzTarget {
    /// Stable identifier (`e2clab fuzz --codec NAME`).
    fn name(&self) -> &'static str;

    /// Filter tags (matched exactly, like `e2clab bench --filter`).
    fn tags(&self) -> &'static [&'static str] {
        &[]
    }

    /// Deterministic one-shot checks run before the mutation loop:
    /// differential fixtures, exhaustive truncation oracles.
    fn preflight(&self) -> Result<(), String> {
        Ok(())
    }

    /// Derive one candidate input from the RNG stream.
    fn generate(&mut self, rng: &mut SplitMix64) -> Vec<u8>;

    /// Check every property the codec promises on `input`.
    fn check(&self, input: &[u8]) -> Result<(), String>;
}

/// A failure a target produced, with the shrunk reproducer.
#[derive(Debug, Clone)]
pub struct FuzzFailure {
    /// Iteration the failing input was generated on (`0` = preflight).
    pub iteration: u64,
    /// Panic or property mismatch, with the message.
    pub kind: FailKind,
    /// The input as generated.
    pub input: Vec<u8>,
    /// The ddmin-shrunk input that still fails.
    pub minimized: Vec<u8>,
}

/// The outcome of fuzzing one target.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// Target name.
    pub name: String,
    /// Iterations requested for the run.
    pub iters_requested: u64,
    /// Iterations actually executed (a failure stops the target early).
    pub iters_run: u64,
    /// Run seed (the per-target stream is derived from it and the name).
    pub seed: u64,
    /// The first failure found, if any.
    pub failure: Option<FuzzFailure>,
}

impl FuzzReport {
    /// One aligned human-readable row for the CLI table.
    pub fn render_row(&self) -> String {
        match &self.failure {
            None => format!("{:<14} {:>8} iters  ok", self.name, self.iters_run),
            Some(f) => format!(
                "{:<14} {:>8} iters  FAIL at iteration {} ({}) — minimized to {} bytes",
                self.name,
                self.iters_run,
                f.iteration,
                match f.kind {
                    FailKind::Panic(_) => "panic",
                    FailKind::Mismatch(_) => "mismatch",
                },
                f.minimized.len()
            ),
        }
    }

    /// The crash-artifact body written as `FUZZ_<name>.crash`: everything
    /// needed to reproduce and fix the failure.
    pub fn crash_artifact(&self) -> Option<String> {
        let f = self.failure.as_ref()?;
        Some(format!(
            "target: {}\nseed: {}\niteration: {}\nfailure: {}\n\n== input ({} bytes) ==\n{}\n== minimized ({} bytes) ==\n{}",
            self.name,
            self.seed,
            f.iteration,
            f.kind,
            f.input.len(),
            engine::render_input(&f.input),
            f.minimized.len(),
            engine::render_input(&f.minimized),
        ))
    }
}

/// Why a fuzz run could not complete (finding failures is a *completed*
/// run — they land in the reports).
#[derive(Debug)]
pub enum FuzzError {
    /// Writing a crash artifact failed.
    Io {
        path: PathBuf,
        source: std::io::Error,
    },
}

impl std::fmt::Display for FuzzError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FuzzError::Io { path, source } => write!(f, "write {}: {source}", path.display()),
        }
    }
}

impl std::error::Error for FuzzError {}

/// Predicate-evaluation budget handed to the minimizer per failure.
const MINIMIZE_BUDGET: usize = 2048;

/// Runs registered fuzz targets. Builder methods take `self` by value,
/// mirroring [`e2c-bench`'s `BenchRegistry`], so a run reads as one
/// chain:
///
/// ```no_run
/// let reports = e2c_fuzz::default_registry()
///     .with_seed(1)
///     .with_iters(10_000)
///     .with_filter("conf_yaml")
///     .run()
///     .unwrap();
/// # let _ = reports;
/// ```
pub struct FuzzRegistry {
    targets: Vec<Box<dyn FuzzTarget>>,
    seed: u64,
    iters: u64,
    filter: Option<String>,
    out_dir: Option<PathBuf>,
}

impl Default for FuzzRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl FuzzRegistry {
    /// An empty registry (seed 1, 1000 iterations, no filter).
    pub fn new() -> Self {
        FuzzRegistry {
            targets: Vec::new(),
            seed: 1,
            iters: 1000,
            filter: None,
            out_dir: None,
        }
    }

    /// Add a target.
    pub fn register(mut self, target: impl FuzzTarget + 'static) -> Self {
        self.targets.push(Box::new(target));
        self
    }

    /// Run seed; the per-target RNG stream is derived from it and the
    /// target name, so adding a target never perturbs the others.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Mutation-loop iterations per target.
    pub fn with_iters(mut self, iters: u64) -> Self {
        self.iters = iters;
        self
    }

    /// Only run targets whose name contains `pat` or whose tag equals
    /// `pat`.
    pub fn with_filter(mut self, pat: impl Into<String>) -> Self {
        self.filter = Some(pat.into());
        self
    }

    /// Write `FUZZ_<name>.crash` artifacts for failing targets.
    pub fn with_out_dir(mut self, dir: PathBuf) -> Self {
        self.out_dir = Some(dir);
        self
    }

    /// Names of the targets the current filter selects.
    pub fn selected(&self) -> Vec<&'static str> {
        self.targets
            .iter()
            .filter(|t| Self::matches(self.filter.as_deref(), t.as_ref()))
            .map(|t| t.name())
            .collect()
    }

    fn matches(filter: Option<&str>, target: &dyn FuzzTarget) -> bool {
        match filter {
            None => true,
            Some(pat) => target.name().contains(pat) || target.tags().contains(&pat),
        }
    }

    /// Derive the per-target stream seed: run seed mixed with the name,
    /// so each target sees an independent, stable stream.
    fn stream_seed(seed: u64, name: &str) -> u64 {
        name.bytes().fold(seed ^ 0x517C_C1B7_2722_0A95, |acc, b| {
            (acc ^ b as u64).wrapping_mul(0x0100_0000_01B3)
        })
    }

    /// Fuzz every selected target: preflight, then `iters` generate/check
    /// rounds; the first failure is minimized, recorded (and written as a
    /// crash artifact when an output directory is configured), and stops
    /// that target. Reports come back in registration order.
    pub fn run(&mut self) -> Result<Vec<FuzzReport>, FuzzError> {
        let (seed, iters, filter) = (self.seed, self.iters, self.filter.clone());
        let mut reports = Vec::new();
        for target in &mut self.targets {
            if !Self::matches(filter.as_deref(), target.as_ref()) {
                continue;
            }
            let mut report = FuzzReport {
                name: target.name().to_string(),
                iters_requested: iters,
                iters_run: 0,
                seed,
                failure: None,
            };
            if let Err(kind) = engine::guard(|| target.preflight()) {
                report.failure = Some(FuzzFailure {
                    iteration: 0,
                    kind,
                    input: Vec::new(),
                    minimized: Vec::new(),
                });
            } else {
                let mut rng = SplitMix64::new(Self::stream_seed(seed, target.name()));
                for i in 0..iters {
                    let input = target.generate(&mut rng);
                    report.iters_run = i + 1;
                    if let Err(kind) = engine::guard(|| target.check(&input)) {
                        let minimized = engine::minimize(&input, MINIMIZE_BUDGET, |c| {
                            engine::guard(|| target.check(c)).is_err()
                        });
                        report.failure = Some(FuzzFailure {
                            iteration: i + 1,
                            kind,
                            input,
                            minimized,
                        });
                        break;
                    }
                }
            }
            if let (Some(dir), Some(artifact)) = (&self.out_dir, report.crash_artifact()) {
                let path = dir.join(format!("FUZZ_{}.crash", report.name));
                e2c_journal::write_atomic(&path, artifact.as_bytes())
                    .map_err(|source| FuzzError::Io { path, source })?;
            }
            reports.push(report);
        }
        Ok(reports)
    }
}

/// The registry with all five codec targets, in dependency order.
pub fn default_registry() -> FuzzRegistry {
    FuzzRegistry::new()
        .register(ConfYamlTarget::new())
        .register(JournalWireTarget::new())
        .register(WorkerWireTarget::new())
        .register(TraceJsonlTarget::new())
        .register(JournalWalTarget::new())
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Flawed {
        trigger: u8,
    }

    impl FuzzTarget for Flawed {
        fn name(&self) -> &'static str {
            "flawed"
        }
        fn tags(&self) -> &'static [&'static str] {
            &["unit"]
        }
        fn generate(&mut self, rng: &mut SplitMix64) -> Vec<u8> {
            (0..8).map(|_| rng.ascii()).collect()
        }
        fn check(&self, input: &[u8]) -> Result<(), String> {
            if input.contains(&self.trigger) {
                panic!("hit the trigger byte");
            }
            Ok(())
        }
    }

    #[test]
    fn registry_finds_minimizes_and_reports_a_panic() {
        // Space is the most likely ascii() output, so the trigger fires
        // within a few iterations.
        let mut reg = FuzzRegistry::new()
            .register(Flawed { trigger: b' ' })
            .with_seed(7)
            .with_iters(200);
        let reports = reg.run().unwrap();
        assert_eq!(reports.len(), 1);
        let failure = reports[0].failure.as_ref().expect("trigger byte found");
        assert!(matches!(failure.kind, FailKind::Panic(_)));
        // ddmin shrinks to exactly the trigger byte.
        assert_eq!(failure.minimized, vec![b' ']);
        assert!(reports[0].iters_run < 200);
        // And the run replays identically.
        let reports2 = FuzzRegistry::new()
            .register(Flawed { trigger: b' ' })
            .with_seed(7)
            .with_iters(200)
            .run()
            .unwrap();
        assert_eq!(reports2[0].failure.as_ref().unwrap().input, failure.input);
        assert_eq!(reports2[0].iters_run, reports[0].iters_run);
    }

    struct Clean;

    impl FuzzTarget for Clean {
        fn name(&self) -> &'static str {
            "clean"
        }
        fn generate(&mut self, rng: &mut SplitMix64) -> Vec<u8> {
            vec![rng.ascii()]
        }
        fn check(&self, _input: &[u8]) -> Result<(), String> {
            Ok(())
        }
    }

    #[test]
    fn clean_targets_complete_all_iterations() {
        let reports = FuzzRegistry::new()
            .register(Clean)
            .with_iters(50)
            .run()
            .unwrap();
        assert!(reports[0].failure.is_none());
        assert_eq!(reports[0].iters_run, 50);
        assert!(reports[0].render_row().contains("ok"));
    }

    #[test]
    fn filter_selects_by_name_or_tag() {
        let reg = FuzzRegistry::new()
            .register(Flawed { trigger: 0 })
            .register(Clean);
        assert_eq!(reg.selected(), vec!["flawed", "clean"]);
        let reg = FuzzRegistry::new()
            .register(Flawed { trigger: 0 })
            .register(Clean)
            .with_filter("unit");
        assert_eq!(reg.selected(), vec!["flawed"]);
        let reg = FuzzRegistry::new()
            .register(Flawed { trigger: 0 })
            .register(Clean)
            .with_filter("cle");
        assert_eq!(reg.selected(), vec!["clean"]);
    }

    #[test]
    fn crash_artifacts_land_in_the_out_dir() {
        let dir = std::env::temp_dir().join(format!("e2c-fuzz-out-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let reports = FuzzRegistry::new()
            .register(Flawed { trigger: b' ' })
            .with_seed(7)
            .with_iters(200)
            .with_out_dir(dir.clone())
            .run()
            .unwrap();
        assert!(reports[0].failure.is_some());
        let text = std::fs::read_to_string(dir.join("FUZZ_flawed.crash")).unwrap();
        assert!(text.contains("seed: 7"), "{text}");
        assert!(text.contains("minimized"), "{text}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stream_seeds_differ_per_target() {
        let a = FuzzRegistry::stream_seed(1, "conf_yaml");
        let b = FuzzRegistry::stream_seed(1, "journal_wire");
        assert_ne!(a, b);
        assert_eq!(a, FuzzRegistry::stream_seed(1, "conf_yaml"));
    }
}
