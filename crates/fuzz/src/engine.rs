//! The deterministic fuzzing engine: a seeded [`SplitMix64`] stream, a
//! byte-level [`mutate`] step, a ddmin-style [`minimize`] shrinker, and a
//! panic-capturing [`guard`] wrapper.
//!
//! Everything here is reproducible by construction: a `(seed, iteration)`
//! pair fully determines the input a target sees, so any failure the
//! harness reports can be replayed with `e2clab fuzz --seed S --iters N`
//! on any host. No wall clock, no ambient entropy, no threads.

use std::panic::{self, AssertUnwindSafe};
use std::sync::Mutex;

/// SplitMix64 — the 64-bit mixing generator from Steele et al.'s
/// "Fast splittable pseudorandom number generators" (OOPSLA 2014). Tiny,
/// full-period, and identical on every platform, which is all a
/// reproducible fuzzer needs.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator whose entire stream is a pure function of `seed`.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly mixed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`0` when `n == 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            // Multiply-shift range reduction; the tiny modulo bias of a
            // plain `% n` would be harmless here, but this is bias-free
            // for the `n << 2^64` ranges the mutator uses.
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }
    }

    /// Uniform index into a slice of length `len`.
    pub fn index(&mut self, len: usize) -> usize {
        self.below(len as u64) as usize
    }

    /// True with probability `num / den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// A printable ASCII byte (space through `~`).
    pub fn ascii(&mut self) -> u8 {
        b' ' + self.below(95) as u8
    }
}

/// Byte values that disproportionately trigger codec edge cases: field
/// separators, escape introducers, frame-length extremes, non-ASCII lead
/// bytes.
const INTERESTING: &[u8] = &[
    0x00, 0x09, 0x0A, 0x0D, 0x20, b'"', b'#', b'\'', b',', b'-', b'.', b':', b'[', b'\\', b']',
    b'{', b'}', 0x7F, 0x80, 0xC0, 0xE0, 0xF0, 0xFF,
];

/// Apply 1–4 random byte-level mutations to `data` in place: bit flips,
/// interesting-byte substitution, chunk deletion/duplication, truncation,
/// and insertion. Mutating an empty buffer inserts instead of looping
/// forever looking for an offset.
pub fn mutate(rng: &mut SplitMix64, data: &mut Vec<u8>) {
    let rounds = 1 + rng.index(4);
    for _ in 0..rounds {
        if data.is_empty() {
            data.push(INTERESTING[rng.index(INTERESTING.len())]);
            continue;
        }
        match rng.below(7) {
            0 => {
                // Flip one bit.
                let i = rng.index(data.len());
                data[i] ^= 1 << rng.below(8);
            }
            1 => {
                // Overwrite with an interesting byte.
                let i = rng.index(data.len());
                data[i] = INTERESTING[rng.index(INTERESTING.len())];
            }
            2 => {
                // Overwrite with printable ASCII (keeps text codecs in
                // their parse-worthy region more often than raw bytes).
                let i = rng.index(data.len());
                data[i] = rng.ascii();
            }
            3 => {
                // Delete a chunk.
                let start = rng.index(data.len());
                let len = 1 + rng.index((data.len() - start).min(8));
                data.drain(start..start + len);
            }
            4 => {
                // Duplicate a chunk right after itself.
                let start = rng.index(data.len());
                let len = 1 + rng.index((data.len() - start).min(8));
                let chunk: Vec<u8> = data[start..start + len].to_vec();
                let at = start + len;
                data.splice(at..at, chunk);
            }
            5 => {
                // Truncate — torn-write shapes.
                let keep = rng.index(data.len() + 1);
                data.truncate(keep);
            }
            _ => {
                // Insert an interesting byte.
                let at = rng.index(data.len() + 1);
                data.insert(at, INTERESTING[rng.index(INTERESTING.len())]);
            }
        }
    }
}

/// Greedily shrink `input` while `fails` keeps returning `true`: first
/// chunk deletion at halving granularity (ddmin-lite), then byte
/// simplification toward `b'0'`. The predicate is invoked at most
/// `budget` times, so minimization terminates even on pathological
/// predicates. Returns the smallest still-failing input found.
pub fn minimize(input: &[u8], budget: usize, mut fails: impl FnMut(&[u8]) -> bool) -> Vec<u8> {
    let mut best = input.to_vec();
    let mut spent = 0usize;
    let mut try_case = |case: &[u8], spent: &mut usize| -> bool {
        if *spent >= budget {
            return false;
        }
        *spent += 1;
        fails(case)
    };
    // Chunk-deletion passes at shrinking granularity.
    let mut chunk = (best.len() / 2).max(1);
    while chunk >= 1 && spent < budget {
        let mut progressed = false;
        let mut start = 0usize;
        while start < best.len() {
            let end = (start + chunk).min(best.len());
            let mut candidate = Vec::with_capacity(best.len() - (end - start));
            candidate.extend_from_slice(&best[..start]);
            candidate.extend_from_slice(&best[end..]);
            if try_case(&candidate, &mut spent) {
                best = candidate;
                progressed = true;
                // Re-test the same offset: the next chunk slid into it.
            } else {
                start = end;
            }
            if spent >= budget {
                break;
            }
        }
        if !progressed {
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }
    }
    // Byte simplification: canonicalize surviving bytes to a readable
    // placeholder so the committed fixture is legible.
    for i in 0..best.len() {
        if spent >= budget {
            break;
        }
        if best[i] == b'0' {
            continue;
        }
        let mut candidate = best.clone();
        candidate[i] = b'0';
        if try_case(&candidate, &mut spent) {
            best = candidate;
        }
    }
    best
}

/// How a guarded check failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailKind {
    /// The code under test panicked; the payload is the panic message.
    Panic(String),
    /// A property (roundtrip identity, differential oracle) was violated.
    Mismatch(String),
}

impl std::fmt::Display for FailKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailKind::Panic(msg) => write!(f, "panic: {msg}"),
            FailKind::Mismatch(msg) => write!(f, "mismatch: {msg}"),
        }
    }
}

/// Serializes panic-hook swaps: [`guard`] silences the default hook while
/// a check runs (a fuzzer provoking thousands of caught panics must not
/// spray backtraces), and concurrent guards — e.g. parallel `cargo test`
/// threads — must not restore the silenced hook as "previous".
static HOOK_GUARD: Mutex<()> = Mutex::new(());

/// Run `f`, converting a panic into [`FailKind::Panic`] and an `Err`
/// return into [`FailKind::Mismatch`].
pub fn guard(f: impl FnOnce() -> Result<(), String>) -> Result<(), FailKind> {
    let _lock = HOOK_GUARD.lock().unwrap_or_else(|e| e.into_inner());
    let prev = panic::take_hook();
    panic::set_hook(Box::new(|_| {}));
    let outcome = panic::catch_unwind(AssertUnwindSafe(f));
    panic::set_hook(prev);
    match outcome {
        Ok(Ok(())) => Ok(()),
        Ok(Err(msg)) => Err(FailKind::Mismatch(msg)),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Err(FailKind::Panic(msg))
        }
    }
}

/// Render bytes for a crash artifact: lossy UTF-8 plus a hex dump, so
/// both text codec inputs and binary WAL images stay inspectable.
pub fn render_input(bytes: &[u8]) -> String {
    let mut out = String::new();
    out.push_str("lossy-utf8: ");
    out.push_str(&String::from_utf8_lossy(bytes).escape_debug().to_string());
    out.push_str("\nhex:        ");
    for (i, b) in bytes.iter().enumerate() {
        if i > 0 && i % 32 == 0 {
            out.push_str("\n            ");
        }
        out.push_str(&format!("{b:02x}"));
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_mixes() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        // Not trivially degenerate.
        assert_ne!(xs[0], xs[1]);
        let mut c = SplitMix64::new(8);
        assert_ne!(xs[0], c.next_u64());
    }

    #[test]
    fn below_respects_bounds() {
        let mut rng = SplitMix64::new(1);
        for _ in 0..1000 {
            assert!(rng.below(10) < 10);
        }
        assert_eq!(rng.below(0), 0);
        assert_eq!(rng.below(1), 0);
    }

    #[test]
    fn mutate_is_deterministic_per_seed() {
        let base = b"hello: world".to_vec();
        let run = |seed| {
            let mut rng = SplitMix64::new(seed);
            let mut data = base.clone();
            mutate(&mut rng, &mut data);
            data
        };
        assert_eq!(run(3), run(3));
    }

    #[test]
    fn mutate_handles_empty_input() {
        let mut rng = SplitMix64::new(9);
        let mut data = Vec::new();
        mutate(&mut rng, &mut data);
        // Must not loop or panic; usually grows.
        let _ = data;
    }

    #[test]
    fn minimize_strips_irrelevant_bytes() {
        // Failing predicate: input contains a tab anywhere.
        let input = b"aaaaaaaa\tbbbbbbbb".to_vec();
        let min = minimize(&input, 500, |c| c.contains(&b'\t'));
        assert_eq!(min, b"\t");
    }

    #[test]
    fn minimize_respects_budget() {
        let input = vec![b'x'; 64];
        // Predicate always fails; a budget of 3 bounds the evaluations.
        let mut calls = 0;
        let _ = minimize(&input, 3, |_| {
            calls += 1;
            true
        });
        assert!(calls <= 3);
    }

    #[test]
    fn guard_classifies_outcomes() {
        assert_eq!(guard(|| Ok(())), Ok(()));
        assert_eq!(
            guard(|| Err("nope".into())),
            Err(FailKind::Mismatch("nope".into()))
        );
        match guard(|| panic!("boom {}", 1)) {
            Err(FailKind::Panic(msg)) => assert_eq!(msg, "boom 1"),
            other => panic!("expected panic classification, got {other:?}"),
        }
    }

    #[test]
    fn render_input_shows_text_and_hex() {
        let r = render_input(b"a\tb");
        assert!(r.contains("a\\tb"), "{r}");
        assert!(r.contains("610962"), "{r}");
    }
}
