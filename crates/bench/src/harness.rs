//! The first-class benchmark API: a [`Benchmark`] trait, a builder-style
//! [`BenchRegistry`], and a machine-readable [`BenchReport`] serialized to
//! `BENCH_<name>.json`.
//!
//! The paper's premise is *measured, reproducible* performance
//! optimization; this module applies the same discipline to the
//! reproduction itself. Every load-bearing path registers a benchmark, and
//! every PR can regenerate the `BENCH_*.json` trajectory with
//! `e2clab bench`, so speed regressions are caught by diffing artifacts
//! instead of anecdotes.
//!
//! Design constraints:
//!
//! * **Deterministic work.** A benchmark's workload derives entirely from
//!   the seed handed to [`Benchmark::setup`] and the round index handed to
//!   [`Benchmark::iter`] — two hosts time different numbers, but they time
//!   the *same instructions*.
//! * **Stable reports.** [`BenchReport::to_json`] writes keys in a fixed
//!   order with shortest-round-trip floats, so byte-diffing two reports is
//!   meaningful and [`BenchReport::from_json`] parses them back exactly.
//! * **Sanctioned clock.** Timing goes through [`e2c_tune::clock::now`],
//!   the single wall-clock call site the determinism lint accepts
//!   (DET002); wall time here is *observed*, never *result-bearing*.
//!
//! The registry mirrors [`OptimizationManager`]'s by-value builder shape
//! (`with_seed`, `with_policy`, …) so the two top-level entry APIs read
//! identically.
//!
//! [`OptimizationManager`]: e2c_core::optimization::OptimizationManager

use e2c_tune::clock;
use std::path::{Path, PathBuf};

/// Warmup/measurement iteration counts for one benchmark run.
///
/// CI and quick local runs shrink the counts globally through the
/// `E2C_BENCH_WARMUP` / `E2C_BENCH_ITERS` environment variables (applied
/// by [`BenchPolicy::from_env`]), mirroring how the figure binaries honor
/// `E2C_REPS` / `E2C_DURATION`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchPolicy {
    /// Untimed iterations run first (cache/branch-predictor warmup).
    pub warmup_iters: u32,
    /// Timed iterations; the report's percentiles come from these.
    pub measure_iters: u32,
}

impl BenchPolicy {
    /// A policy with at least one measured iteration.
    pub fn new(warmup_iters: u32, measure_iters: u32) -> Self {
        BenchPolicy {
            warmup_iters,
            measure_iters: measure_iters.max(1),
        }
    }

    /// Apply the `E2C_BENCH_WARMUP` / `E2C_BENCH_ITERS` environment
    /// overrides on top of `self`.
    pub fn from_env(self) -> Self {
        let get = |key: &str| std::env::var(key).ok().and_then(|v| v.parse::<u32>().ok());
        BenchPolicy::new(
            get("E2C_BENCH_WARMUP").unwrap_or(self.warmup_iters),
            get("E2C_BENCH_ITERS").unwrap_or(self.measure_iters),
        )
    }
}

impl Default for BenchPolicy {
    /// Seven measured iterations — the paper's repetition protocol.
    fn default() -> Self {
        BenchPolicy::new(2, 7)
    }
}

/// One registered benchmark: a named, seeded, repeatable unit of work.
///
/// Implementations must be deterministic in their *work* (the instructions
/// executed depend only on the seed and round index), never read ambient
/// entropy or the clock, and return the number of logical work units an
/// iteration processed (events, trials, records) so the report can derive
/// a throughput.
pub trait Benchmark {
    /// Stable identifier; the report lands in `BENCH_<name>.json`.
    fn name(&self) -> &'static str;

    /// Filter tags (`e2clab bench --filter PAT` matches a tag exactly or
    /// a name substring). Every default-suite benchmark carries `smoke`.
    fn tags(&self) -> &'static [&'static str] {
        &[]
    }

    /// Per-benchmark default iteration counts (a registry-level
    /// [`BenchRegistry::with_policy`] overrides them for all benchmarks).
    fn policy(&self) -> BenchPolicy {
        BenchPolicy::default()
    }

    /// Prepare deterministic state. All randomness must derive from
    /// `seed`.
    fn setup(&mut self, seed: u64) {
        let _ = seed;
    }

    /// Run one iteration (warmup rounds included) and return the number
    /// of work units processed. `round` increments across warmup +
    /// measured iterations so per-round workloads can vary derived seeds
    /// deterministically.
    fn iter(&mut self, round: u64) -> u64;
}

/// Why a benchmark run could not produce its reports.
#[derive(Debug)]
pub enum BenchError {
    /// Writing a `BENCH_*.json` artifact failed.
    Io {
        path: PathBuf,
        source: std::io::Error,
    },
}

impl std::fmt::Display for BenchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BenchError::Io { path, source } => {
                write!(f, "write {}: {source}", path.display())
            }
        }
    }
}

impl std::error::Error for BenchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BenchError::Io { source, .. } => Some(source),
        }
    }
}

/// Wall-clock statistics over the measured iterations, in nanoseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct WallStats {
    /// Median (p50) iteration time.
    pub median_ns: u64,
    /// 10th percentile.
    pub p10_ns: u64,
    /// 90th percentile.
    pub p90_ns: u64,
    /// Fastest iteration.
    pub min_ns: u64,
    /// Slowest iteration.
    pub max_ns: u64,
    /// Arithmetic mean.
    pub mean_ns: u64,
}

/// Nearest-rank percentile over `sorted` (ascending). `q` in `[0, 1]`.
fn percentile(sorted: &[u64], q: f64) -> u64 {
    debug_assert!(!sorted.is_empty());
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

impl WallStats {
    /// Statistics of one sample set (unsorted, one entry per iteration).
    pub fn from_samples(mut samples: Vec<u64>) -> Self {
        assert!(!samples.is_empty(), "need at least one sample");
        samples.sort_unstable();
        let sum: u128 = samples.iter().map(|&s| s as u128).sum();
        WallStats {
            median_ns: percentile(&samples, 0.50),
            p10_ns: percentile(&samples, 0.10),
            p90_ns: percentile(&samples, 0.90),
            min_ns: samples[0],
            max_ns: samples[samples.len() - 1],
            mean_ns: (sum / samples.len() as u128) as u64,
        }
    }
}

/// The machine-readable result of one benchmark: what `BENCH_<name>.json`
/// holds and what the per-PR trajectory diffs.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Benchmark name (`Benchmark::name`).
    pub name: String,
    /// Measured iterations behind the statistics.
    pub iterations: u32,
    /// Warmup iterations run before measuring.
    pub warmup: u32,
    /// Seed handed to `Benchmark::setup`.
    pub seed: u64,
    /// Everything that shaped the workload, so two reports are only
    /// comparable when their fingerprints match.
    pub fingerprint: String,
    /// Wall-clock statistics (nanoseconds per iteration).
    pub wall_ns: WallStats,
    /// Work units processed per iteration (constant across rounds for a
    /// deterministic workload; the mean is recorded).
    pub units_per_iter: f64,
    /// Throughput: total units over total measured wall time.
    pub units_per_sec: f64,
}

impl BenchReport {
    /// File name the report is written under: `BENCH_<name>.json`.
    pub fn file_name(&self) -> String {
        format!("BENCH_{}.json", self.name)
    }

    /// Serialize with a fixed key order and shortest-round-trip floats;
    /// [`BenchReport::from_json`] inverts this exactly.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256);
        s.push_str("{\"name\":\"");
        json_escape_into(&mut s, &self.name);
        s.push_str(&format!(
            "\",\"iterations\":{},\"warmup\":{},\"seed\":{},\"fingerprint\":\"",
            self.iterations, self.warmup, self.seed
        ));
        json_escape_into(&mut s, &self.fingerprint);
        let w = &self.wall_ns;
        s.push_str(&format!(
            "\",\"wall_ns\":{{\"median\":{},\"p10\":{},\"p90\":{},\"min\":{},\"max\":{},\"mean\":{}}}",
            w.median_ns, w.p10_ns, w.p90_ns, w.min_ns, w.max_ns, w.mean_ns
        ));
        s.push_str(&format!(
            ",\"units\":{{\"per_iter\":{},\"per_sec\":{}}}}}",
            self.units_per_iter, self.units_per_sec
        ));
        s
    }

    /// Parse a report produced by [`BenchReport::to_json`].
    pub fn from_json(text: &str) -> Result<BenchReport, String> {
        let v = json::parse(text)?;
        let obj = v.as_object().ok_or("report is not a JSON object")?;
        let field = |key: &str| -> Result<&json::Value, String> {
            json::get(obj, key).ok_or_else(|| format!("missing key `{key}`"))
        };
        let num_u64 = |v: &json::Value, key: &str| -> Result<u64, String> {
            v.as_f64()
                .filter(|n| n.fract() == 0.0 && *n >= 0.0)
                .map(|n| n as u64)
                .ok_or_else(|| format!("`{key}` is not a non-negative integer"))
        };
        let wall = field("wall_ns")?
            .as_object()
            .ok_or("`wall_ns` is not an object")?;
        let wall_u64 = |key: &str| -> Result<u64, String> {
            num_u64(
                json::get(wall, key).ok_or_else(|| format!("missing key `wall_ns.{key}`"))?,
                key,
            )
        };
        let units = field("units")?
            .as_object()
            .ok_or("`units` is not an object")?;
        let units_f64 = |key: &str| -> Result<f64, String> {
            json::get(units, key)
                .and_then(json::Value::as_f64)
                .ok_or_else(|| format!("missing number `units.{key}`"))
        };
        Ok(BenchReport {
            name: field("name")?
                .as_str()
                .ok_or("`name` is not a string")?
                .to_string(),
            iterations: num_u64(field("iterations")?, "iterations")? as u32,
            warmup: num_u64(field("warmup")?, "warmup")? as u32,
            seed: num_u64(field("seed")?, "seed")?,
            fingerprint: field("fingerprint")?
                .as_str()
                .ok_or("`fingerprint` is not a string")?
                .to_string(),
            wall_ns: WallStats {
                median_ns: wall_u64("median")?,
                p10_ns: wall_u64("p10")?,
                p90_ns: wall_u64("p90")?,
                min_ns: wall_u64("min")?,
                max_ns: wall_u64("max")?,
                mean_ns: wall_u64("mean")?,
            },
            units_per_iter: units_f64("per_iter")?,
            units_per_sec: units_f64("per_sec")?,
        })
    }

    /// One aligned human-readable row for the CLI table.
    pub fn render_row(&self) -> String {
        format!(
            "{:<16} {:>4} it  median {:>10}  p10 {:>10}  p90 {:>10}  {:>12.0} units/s",
            self.name,
            self.iterations,
            fmt_ns(self.wall_ns.median_ns),
            fmt_ns(self.wall_ns.p10_ns),
            fmt_ns(self.wall_ns.p90_ns),
            self.units_per_sec,
        )
    }
}

/// Render nanoseconds with an adaptive unit (`1.234ms`, `56.7µs`, …).
fn fmt_ns(ns: u64) -> String {
    let ns = ns as f64;
    if ns >= 1e9 {
        format!("{:.3}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.1}µs", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

fn json_escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Runs registered benchmarks and writes their reports.
///
/// Builder methods take `self` by value, mirroring
/// `OptimizationManager::with_*`, so a full run reads as one chain:
///
/// ```no_run
/// use e2c_bench::{BenchPolicy, BenchRegistry};
/// let reports = e2c_bench::default_registry()
///     .with_seed(42)
///     .with_filter("smoke")
///     .with_policy(BenchPolicy::new(1, 3))
///     .with_out_dir("bench-out".into())
///     .run()
///     .unwrap();
/// # let _ = reports;
/// ```
pub struct BenchRegistry {
    benches: Vec<Box<dyn Benchmark>>,
    seed: u64,
    policy: Option<BenchPolicy>,
    filter: Option<String>,
    out_dir: Option<PathBuf>,
}

impl Default for BenchRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl BenchRegistry {
    /// An empty registry (seed 0, per-benchmark policies, no filter, no
    /// output directory).
    pub fn new() -> Self {
        BenchRegistry {
            benches: Vec::new(),
            seed: 0,
            policy: None,
            filter: None,
            out_dir: None,
        }
    }

    /// Add a benchmark.
    pub fn register(mut self, bench: impl Benchmark + 'static) -> Self {
        self.benches.push(Box::new(bench));
        self
    }

    /// Seed handed to every benchmark's `setup` (reproducibility: same
    /// seed ⇒ same workload).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Override every benchmark's iteration counts (the CLI's `--warmup`
    /// / `--iters` knobs). Environment overrides still apply on top.
    pub fn with_policy(mut self, policy: BenchPolicy) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Only run benchmarks whose name contains `pat` or whose tag equals
    /// `pat`.
    pub fn with_filter(mut self, pat: impl Into<String>) -> Self {
        self.filter = Some(pat.into());
        self
    }

    /// Write each report to `dir/BENCH_<name>.json` (atomically).
    pub fn with_out_dir(mut self, dir: PathBuf) -> Self {
        self.out_dir = Some(dir);
        self
    }

    /// Names of the benchmarks the current filter selects.
    pub fn selected(&self) -> Vec<&'static str> {
        self.benches
            .iter()
            .filter(|b| Self::matches(self.filter.as_deref(), b.as_ref()))
            .map(|b| b.name())
            .collect()
    }

    fn matches(filter: Option<&str>, bench: &dyn Benchmark) -> bool {
        match filter {
            None => true,
            Some(pat) => bench.name().contains(pat) || bench.tags().contains(&pat),
        }
    }

    /// Run every selected benchmark: setup, warmup, timed iterations,
    /// report (written to the output directory when one is configured).
    /// Reports come back in registration order.
    pub fn run(&mut self) -> Result<Vec<BenchReport>, BenchError> {
        let mut reports = Vec::new();
        let (seed, override_policy, filter) = (self.seed, self.policy, self.filter.clone());
        for bench in &mut self.benches {
            if !Self::matches(filter.as_deref(), bench.as_ref()) {
                continue;
            }
            let policy = override_policy.unwrap_or_else(|| bench.policy()).from_env();
            bench.setup(seed);
            let mut round = 0u64;
            for _ in 0..policy.warmup_iters {
                std::hint::black_box(bench.iter(round));
                round += 1;
            }
            let mut samples = Vec::with_capacity(policy.measure_iters as usize);
            let mut total_units = 0u64;
            for _ in 0..policy.measure_iters {
                let t0 = clock::now();
                let units = std::hint::black_box(bench.iter(round));
                let dt = t0.elapsed();
                samples.push(dt.as_nanos().min(u64::MAX as u128) as u64);
                total_units += units;
                round += 1;
            }
            let total_ns: u128 = samples.iter().map(|&s| s as u128).sum();
            let report = BenchReport {
                name: bench.name().to_string(),
                iterations: policy.measure_iters,
                warmup: policy.warmup_iters,
                seed,
                fingerprint: format!(
                    "bench={};seed={seed};warmup={};iters={}",
                    bench.name(),
                    policy.warmup_iters,
                    policy.measure_iters
                ),
                wall_ns: WallStats::from_samples(samples),
                units_per_iter: total_units as f64 / policy.measure_iters as f64,
                units_per_sec: if total_ns == 0 {
                    0.0
                } else {
                    total_units as f64 / (total_ns as f64 / 1e9)
                },
            };
            if let Some(dir) = &self.out_dir {
                let path = dir.join(report.file_name());
                e2c_journal::write_atomic(&path, report.to_json().as_bytes())
                    .map_err(|source| BenchError::Io { path, source })?;
            }
            reports.push(report);
        }
        Ok(reports)
    }
}

/// Write `reports` as `BENCH_<name>.json` files under `dir`.
pub fn write_reports(dir: &Path, reports: &[BenchReport]) -> Result<(), BenchError> {
    for report in reports {
        let path = dir.join(report.file_name());
        e2c_journal::write_atomic(&path, report.to_json().as_bytes())
            .map_err(|source| BenchError::Io { path, source })?;
    }
    Ok(())
}

/// A minimal JSON reader for [`BenchReport::from_json`] (objects, arrays,
/// strings, numbers, booleans, null — no streaming, no numbers beyond
/// `f64`). Key order is preserved so stability tests can assert on it.
mod json {
    /// A parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        Null,
        Bool(bool),
        Num(f64),
        Str(String),
        Arr(Vec<Value>),
        /// Key/value pairs in document order.
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Num(n) => Some(*n),
                _ => None,
            }
        }
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }
        pub fn as_object(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Obj(pairs) => Some(pairs),
                _ => None,
            }
        }
    }

    /// First value under `key` in an object's pair list.
    pub fn get<'a>(obj: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
        obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(v)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b'{') => object(b, pos),
            Some(b'[') => array(b, pos),
            Some(b'"') => string(b, pos).map(Value::Str),
            Some(b't') => lit(b, pos, "true", Value::Bool(true)),
            Some(b'f') => lit(b, pos, "false", Value::Bool(false)),
            Some(b'n') => lit(b, pos, "null", Value::Null),
            Some(_) => number(b, pos),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn lit(b: &[u8], pos: &mut usize, word: &str, v: Value) -> Result<Value, String> {
        if b[*pos..].starts_with(word.as_bytes()) {
            *pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {pos}", pos = *pos))
        }
    }

    fn object(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        *pos += 1; // '{'
        let mut pairs = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            skip_ws(b, pos);
            let key = string(b, pos)?;
            skip_ws(b, pos);
            if b.get(*pos) != Some(&b':') {
                return Err(format!("expected `:` at byte {}", *pos));
            }
            *pos += 1;
            pairs.push((key, value(b, pos)?));
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
            }
        }
    }

    fn array(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        *pos += 1; // '['
        let mut items = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(value(b, pos)?);
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
            }
        }
    }

    fn string(b: &[u8], pos: &mut usize) -> Result<String, String> {
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected string at byte {}", *pos));
        }
        *pos += 1;
        let mut out = String::new();
        loop {
            match b.get(*pos) {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match b.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = b
                                .get(*pos + 1..*pos + 5)
                                .ok_or("truncated \\u escape")
                                .and_then(|h| {
                                    std::str::from_utf8(h).map_err(|_| "bad \\u escape")
                                })?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                            out.push(char::from_u32(cp).unwrap_or('\u{FFFD}'));
                            *pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    *pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let start = *pos;
                    let mut end = start + 1;
                    while end < b.len() && (b[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    out.push_str(std::str::from_utf8(&b[start..end]).map_err(|e| e.to_string())?);
                    *pos = end;
                }
            }
        }
    }

    fn number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        while *pos < b.len() && matches!(b[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
            *pos += 1;
        }
        let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|e| format!("bad number `{text}`: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> BenchReport {
        BenchReport {
            name: "des_mm1".to_string(),
            iterations: 7,
            warmup: 2,
            seed: 42,
            fingerprint: "bench=des_mm1;seed=42;warmup=2;iters=7".to_string(),
            wall_ns: WallStats {
                median_ns: 1_234_567,
                p10_ns: 1_100_000,
                p90_ns: 1_400_000,
                min_ns: 1_050_000,
                max_ns: 1_500_000,
                mean_ns: 1_250_000,
            },
            units_per_iter: 150_000.0,
            units_per_sec: 120_000_000.5,
        }
    }

    #[test]
    fn json_key_order_is_stable() {
        // The writer's key order is part of the artifact contract: the
        // per-PR trajectory is diffed byte-wise.
        let json = sample_report().to_json();
        let expected = "{\"name\":\"des_mm1\",\"iterations\":7,\"warmup\":2,\"seed\":42,\
             \"fingerprint\":\"bench=des_mm1;seed=42;warmup=2;iters=7\",\
             \"wall_ns\":{\"median\":1234567,\"p10\":1100000,\"p90\":1400000,\
             \"min\":1050000,\"max\":1500000,\"mean\":1250000},\
             \"units\":{\"per_iter\":150000,\"per_sec\":120000000.5}}";
        assert_eq!(json, expected);
    }

    #[test]
    fn json_roundtrips() {
        let report = sample_report();
        let parsed = BenchReport::from_json(&report.to_json()).unwrap();
        assert_eq!(parsed, report);
        // And serializing the parse reproduces the bytes.
        assert_eq!(parsed.to_json(), report.to_json());
    }

    #[test]
    fn json_escapes_roundtrip() {
        let mut report = sample_report();
        report.fingerprint = "line1\nline2\t\"quoted\"\\x".to_string();
        let parsed = BenchReport::from_json(&report.to_json()).unwrap();
        assert_eq!(parsed.fingerprint, report.fingerprint);
    }

    #[test]
    fn from_json_rejects_malformed_reports() {
        assert!(BenchReport::from_json("{}").is_err());
        assert!(BenchReport::from_json("not json").is_err());
        assert!(BenchReport::from_json("{\"name\":\"x\"}").is_err());
        let truncated = &sample_report().to_json()[..40];
        assert!(BenchReport::from_json(truncated).is_err());
    }

    #[test]
    fn wall_stats_percentiles() {
        let stats = WallStats::from_samples((1..=100).rev().collect());
        assert_eq!(stats.min_ns, 1);
        assert_eq!(stats.max_ns, 100);
        assert_eq!(stats.median_ns, 51); // nearest-rank on [1, 100]
        assert_eq!(stats.p10_ns, 11);
        assert_eq!(stats.p90_ns, 90);
        let single = WallStats::from_samples(vec![7]);
        assert_eq!(single.median_ns, 7);
        assert_eq!(single.p10_ns, 7);
        assert_eq!(single.p90_ns, 7);
        assert_eq!(single.mean_ns, 7);
    }

    struct Counting {
        setup_seed: Option<u64>,
        rounds: Vec<u64>,
    }

    impl Benchmark for Counting {
        fn name(&self) -> &'static str {
            "counting"
        }
        fn tags(&self) -> &'static [&'static str] {
            &["unit"]
        }
        fn policy(&self) -> BenchPolicy {
            BenchPolicy::new(1, 3)
        }
        fn setup(&mut self, seed: u64) {
            self.setup_seed = Some(seed);
        }
        fn iter(&mut self, round: u64) -> u64 {
            self.rounds.push(round);
            10
        }
    }

    #[test]
    fn registry_runs_warmup_then_measures() {
        let mut reg = BenchRegistry::new()
            .register(Counting {
                setup_seed: None,
                rounds: Vec::new(),
            })
            .with_seed(9);
        let reports = reg.run().unwrap();
        assert_eq!(reports.len(), 1);
        let r = &reports[0];
        assert_eq!(r.name, "counting");
        assert_eq!(r.iterations, 3);
        assert_eq!(r.warmup, 1);
        assert_eq!(r.seed, 9);
        assert_eq!(r.units_per_iter, 10.0);
        assert!(r.units_per_sec > 0.0);
    }

    #[test]
    fn filter_matches_name_substring_and_exact_tag() {
        let make = || Counting {
            setup_seed: None,
            rounds: Vec::new(),
        };
        let reg = BenchRegistry::new().register(make()).with_filter("count");
        assert_eq!(reg.selected(), vec!["counting"]);
        let reg = BenchRegistry::new().register(make()).with_filter("unit");
        assert_eq!(reg.selected(), vec!["counting"]);
        let reg = BenchRegistry::new().register(make()).with_filter("nope");
        assert!(reg.selected().is_empty());
    }

    #[test]
    fn registry_policy_overrides_bench_policy() {
        let mut reg = BenchRegistry::new()
            .register(Counting {
                setup_seed: None,
                rounds: Vec::new(),
            })
            .with_policy(BenchPolicy::new(0, 1));
        let reports = reg.run().unwrap();
        assert_eq!(reports[0].iterations, 1);
        assert_eq!(reports[0].warmup, 0);
    }

    #[test]
    fn reports_written_to_out_dir() {
        let dir = std::env::temp_dir().join(format!("e2c-bench-out-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut reg = BenchRegistry::new()
            .register(Counting {
                setup_seed: None,
                rounds: Vec::new(),
            })
            .with_out_dir(dir.clone());
        let reports = reg.run().unwrap();
        let path = dir.join("BENCH_counting.json");
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, reports[0].to_json());
        assert_eq!(BenchReport::from_json(&text).unwrap(), reports[0]);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
