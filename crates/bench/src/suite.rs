//! The default benchmark suite: one [`Benchmark`] per load-bearing path
//! named by the roadmap.
//!
//! * [`DesMm1Bench`] — the DES event loop: queue push/pop/cancel under an
//!   M/M/1 workload with per-job timeouts (most timeouts are cancelled,
//!   so the cancellation path is exercised as hard as scheduling).
//! * [`PlantnetRunBench`] — a full 600 s simulated Pl@ntNet engine run at
//!   the paper's 80-client workload.
//! * [`BayesCycleBench`] — a 50-trial Bayesian optimization cycle
//!   (Extra-Trees fit + `gp_hedge` ask per suggestion).
//! * [`JournalWalBench`] — WAL append (fsync'd) + recovery-scan replay.
//! * [`JournalWireBench`] — the escaped-TSV wire codec alone
//!   (`RunEvent::to_line` / `RunEvent::parse`), no I/O.
//! * [`DetlintWorkspaceBench`] — analyzer throughput: the full detlint
//!   pipeline (lexer, test-region detection, all rule families,
//!   suppression matching) over a synthetic in-memory workspace.
//! * [`WorkerFarmOverheadBench`] — the multi-process trial farm's
//!   dispatch tax: asks round-tripped through live `e2clab worker`
//!   processes running a near-free builtin objective.
//! * [`ServingEpochBench`] — one serving epoch under overload: an
//!   open-loop run at the 2.5M-users/day spring-peak rate against the
//!   baseline pools, with bounded admission and deadline shedding.
//!
//! Every suite benchmark carries the `smoke` tag so
//! `e2clab bench --filter smoke` (the CI job) runs them all.

use crate::harness::{BenchPolicy, BenchRegistry, Benchmark};
use e2c_des::{Context, Dist, Model, SimTime, Simulation};
use e2c_optim::bayes::BayesOpt;
use e2c_optim::space::Space;
use e2c_tune::journal::RunEvent;
use e2c_tune::TrialError;
use plantnet::sim::{Experiment, ExperimentSpec};
use plantnet::PoolConfig;
use std::collections::VecDeque;

/// The registry with every suite benchmark registered, ready for
/// `with_*` configuration and [`BenchRegistry::run`].
pub fn default_registry() -> BenchRegistry {
    BenchRegistry::new()
        .register(DesMm1Bench::new())
        .register(PlantnetRunBench::new())
        .register(BayesCycleBench::new())
        .register(JournalWalBench::new())
        .register(JournalWireBench::new())
        .register(DetlintWorkspaceBench::new())
        .register(WorkerFarmOverheadBench::new())
        .register(ServingEpochBench::new())
}

// ---------------------------------------------------------------------------
// DES event loop
// ---------------------------------------------------------------------------

/// M/M/1 queue with a per-job timeout event that is cancelled when the job
/// completes in time — the common DES pattern that stresses all three
/// event-queue operations (schedule, pop, cancel).
struct Mm1 {
    interarrival: Dist,
    service: Dist,
    timeout: SimTime,
    horizon: SimTime,
    /// Jobs waiting for the server: `(job id, timeout handle)`.
    waiting: VecDeque<(u64, e2c_des::EventHandle)>,
    /// The job in service, with its timeout handle.
    in_service: Option<(u64, e2c_des::EventHandle)>,
    next_job: u64,
    served: u64,
    timed_out: u64,
}

enum Mm1Ev {
    Arrive,
    Depart,
    Timeout(u64),
}

impl Model for Mm1 {
    type Event = Mm1Ev;

    fn handle(&mut self, ctx: &mut Context<'_, Mm1Ev>, event: Mm1Ev) {
        match event {
            Mm1Ev::Arrive => {
                let job = self.next_job;
                self.next_job += 1;
                let timeout = ctx.schedule_in(self.timeout, Mm1Ev::Timeout(job));
                if self.in_service.is_none() {
                    let s = SimTime::from_secs_f64(self.service.sample(ctx.rng()));
                    ctx.schedule_in(s, Mm1Ev::Depart);
                    self.in_service = Some((job, timeout));
                } else {
                    self.waiting.push_back((job, timeout));
                }
                if ctx.now() < self.horizon {
                    let a = SimTime::from_secs_f64(self.interarrival.sample(ctx.rng()));
                    ctx.schedule_in(a, Mm1Ev::Arrive);
                }
            }
            Mm1Ev::Depart => {
                if let Some((_, timeout)) = self.in_service.take() {
                    ctx.cancel(timeout);
                    self.served += 1;
                }
                if let Some((job, timeout)) = self.waiting.pop_front() {
                    let s = SimTime::from_secs_f64(self.service.sample(ctx.rng()));
                    ctx.schedule_in(s, Mm1Ev::Depart);
                    self.in_service = Some((job, timeout));
                }
            }
            Mm1Ev::Timeout(job) => {
                // Fires only for jobs still waiting (in-service and
                // completed jobs cancelled theirs): the job abandons.
                if let Some(i) = self.waiting.iter().position(|&(j, _)| j == job) {
                    self.waiting.remove(i);
                    self.timed_out += 1;
                }
            }
        }
    }
}

/// DES event-loop benchmark (`crates/des`): ~120 k arrivals per iteration
/// through [`Simulation::run`], heavy on cancellations.
pub struct DesMm1Bench {
    seed: u64,
}

impl DesMm1Bench {
    pub fn new() -> Self {
        DesMm1Bench { seed: 0 }
    }
}

impl Default for DesMm1Bench {
    fn default() -> Self {
        Self::new()
    }
}

impl Benchmark for DesMm1Bench {
    fn name(&self) -> &'static str {
        "des_mm1"
    }
    fn tags(&self) -> &'static [&'static str] {
        &["smoke", "des"]
    }
    fn policy(&self) -> BenchPolicy {
        BenchPolicy::new(2, 7)
    }
    fn setup(&mut self, seed: u64) {
        self.seed = seed;
    }
    fn iter(&mut self, round: u64) -> u64 {
        // ρ = 0.8 with a timeout deep enough that most jobs finish first:
        // the cancel path dominates over the timeout-fires path.
        let horizon = SimTime::from_secs(120_000);
        let model = Mm1 {
            interarrival: Dist::Exp { mean: 1.0 },
            service: Dist::Exp { mean: 0.8 },
            timeout: SimTime::from_secs(25),
            horizon,
            waiting: VecDeque::new(),
            in_service: None,
            next_job: 0,
            served: 0,
            timed_out: 0,
        };
        let mut sim = Simulation::new(model, self.seed ^ round.wrapping_mul(0x9E37));
        sim.schedule(SimTime::ZERO, Mm1Ev::Arrive);
        // Drain fully (the arrival chain stops at the horizon).
        sim.run()
    }
}

// ---------------------------------------------------------------------------
// Pl@ntNet engine run
// ---------------------------------------------------------------------------

/// Full Pl@ntNet engine simulation (`crates/plantnet`): 600 simulated
/// seconds at the paper's 80-client closed loop, baseline pool sizes.
pub struct PlantnetRunBench {
    seed: u64,
}

impl PlantnetRunBench {
    pub fn new() -> Self {
        PlantnetRunBench { seed: 0 }
    }
}

impl Default for PlantnetRunBench {
    fn default() -> Self {
        Self::new()
    }
}

impl Benchmark for PlantnetRunBench {
    fn name(&self) -> &'static str {
        "plantnet_600s"
    }
    fn tags(&self) -> &'static [&'static str] {
        &["smoke", "plantnet"]
    }
    fn policy(&self) -> BenchPolicy {
        BenchPolicy::new(1, 5)
    }
    fn setup(&mut self, seed: u64) {
        self.seed = seed;
    }
    fn iter(&mut self, round: u64) -> u64 {
        let mut spec = ExperimentSpec::paper(PoolConfig::baseline(), 80);
        spec.duration = SimTime::from_secs(600);
        spec.warmup = SimTime::from_secs(60);
        let metrics = Experiment::run(spec, self.seed.wrapping_add(round));
        metrics.completed
    }
}

// ---------------------------------------------------------------------------
// Bayesian optimization cycle
// ---------------------------------------------------------------------------

/// 50-trial Bayesian cycle (`crates/optim`): Extra-Trees surrogate refit
/// plus a `gp_hedge` candidate ranking per suggestion, over a
/// paper-shaped 4-dimensional integer space.
pub struct BayesCycleBench {
    seed: u64,
}

impl BayesCycleBench {
    pub fn new() -> Self {
        BayesCycleBench { seed: 0 }
    }
}

impl Default for BayesCycleBench {
    fn default() -> Self {
        Self::new()
    }
}

impl Benchmark for BayesCycleBench {
    fn name(&self) -> &'static str {
        "bayes_cycle50"
    }
    fn tags(&self) -> &'static [&'static str] {
        &["smoke", "optim"]
    }
    fn policy(&self) -> BenchPolicy {
        BenchPolicy::new(1, 5)
    }
    fn setup(&mut self, seed: u64) {
        self.seed = seed;
    }
    fn iter(&mut self, round: u64) -> u64 {
        let space = Space::new()
            .int("http", 2, 60)
            .int("download", 2, 40)
            .int("simsearch", 2, 30)
            .int("extract", 2, 20);
        let mut opt = BayesOpt::new(space, self.seed.wrapping_add(round)).n_initial_points(10);
        let trials = 50u64;
        for _ in 0..trials {
            let p = opt.ask();
            // A deterministic stand-in objective with the response-surface
            // shape of the engine (sweet spot mid-space).
            let y = (p[0] - 40.0).powi(2) / 16.0
                + (p[1] - 24.0).powi(2) / 9.0
                + (p[2] - 11.0).powi(2) / 4.0
                + (p[3] - 9.0).powi(2);
            opt.tell(p, y);
        }
        trials
    }
}

// ---------------------------------------------------------------------------
// Journal: WAL + wire codec
// ---------------------------------------------------------------------------

/// A realistic mix of run-journal events (asks with 4-dim configs,
/// scheduler reports, attempt outcomes, tells with trace marks).
fn journal_events(n: usize, seed: u64) -> Vec<RunEvent> {
    let mut events = Vec::with_capacity(n + 1);
    events.push(RunEvent::meta(format!(
        "bench-journal;seed={seed};space=4d;faults=none"
    )));
    let mut trial = 0u64;
    while events.len() < n {
        let t = trial;
        let frac = (t.wrapping_mul(seed | 1) % 1000) as f64 / 1000.0;
        events.push(RunEvent::Ask {
            trial: t,
            config: vec![2.0 + frac * 58.0, 24.0, 11.0 + frac, 9.0],
        });
        events.push(RunEvent::Report {
            trial: t,
            iteration: 1,
            normalized: 0.25 + frac,
            stop: t.is_multiple_of(7),
        });
        events.push(RunEvent::Attempt {
            trial: t,
            index: 0,
            secs: 0.125 + frac,
            raw: Some(840.0 + frac * 100.0),
            error: if t % 11 == 3 {
                Some(TrialError::Injected("injected fault: scripted".to_string()))
            } else {
                None
            },
        });
        events.push(RunEvent::Tell {
            trial: t,
            feedback: 840.0 + frac * 100.0,
            status: "terminated".to_string(),
            value: Some(840.0 + frac * 100.0),
            trace_mark: Some((t * 12, t * 1000)),
            asks: Some(t + 1),
        });
        trial += 1;
    }
    events.truncate(n);
    events
}

/// WAL throughput (`crates/journal`): fsync'd appends of realistic
/// journal records, then a recovery scan + parse of the whole log.
pub struct JournalWalBench {
    events: Vec<RunEvent>,
}

impl JournalWalBench {
    pub fn new() -> Self {
        JournalWalBench { events: Vec::new() }
    }
}

impl Default for JournalWalBench {
    fn default() -> Self {
        Self::new()
    }
}

impl Benchmark for JournalWalBench {
    fn name(&self) -> &'static str {
        "journal_wal"
    }
    fn tags(&self) -> &'static [&'static str] {
        &["smoke", "journal"]
    }
    fn policy(&self) -> BenchPolicy {
        BenchPolicy::new(1, 5)
    }
    fn setup(&mut self, seed: u64) {
        self.events = journal_events(400, seed);
    }
    fn iter(&mut self, round: u64) -> u64 {
        let path =
            std::env::temp_dir().join(format!("e2c-bench-wal-{}-{round}.wal", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let mut wal = e2c_journal::Wal::create(&path).expect("create bench WAL");
        for event in &self.events {
            wal.append(event.to_line().as_bytes()).expect("append");
        }
        drop(wal);
        // Replay: recovery scan + wire parse, as `--resume` does.
        let (_, records) = e2c_journal::Wal::open(&path).expect("open bench WAL");
        let mut parsed = 0u64;
        for record in &records {
            let line = std::str::from_utf8(record).expect("utf8 record");
            std::hint::black_box(RunEvent::parse(line).expect("parse record"));
            parsed += 1;
        }
        let _ = std::fs::remove_file(&path);
        self.events.len() as u64 + parsed
    }
}

/// Wire-codec throughput (`crates/tune/src/journal.rs`): encode + parse
/// round-trips of the escaped-TSV format, no filesystem.
pub struct JournalWireBench {
    events: Vec<RunEvent>,
}

impl JournalWireBench {
    pub fn new() -> Self {
        JournalWireBench { events: Vec::new() }
    }
}

impl Default for JournalWireBench {
    fn default() -> Self {
        Self::new()
    }
}

impl Benchmark for JournalWireBench {
    fn name(&self) -> &'static str {
        "journal_wire"
    }
    fn tags(&self) -> &'static [&'static str] {
        &["smoke", "journal"]
    }
    fn policy(&self) -> BenchPolicy {
        BenchPolicy::new(3, 15)
    }
    fn setup(&mut self, seed: u64) {
        self.events = journal_events(2000, seed);
    }
    fn iter(&mut self, _round: u64) -> u64 {
        let mut bytes = 0usize;
        for event in &self.events {
            let line = event.to_line();
            bytes += line.len();
            std::hint::black_box(RunEvent::parse(&line).expect("roundtrip"));
        }
        std::hint::black_box(bytes);
        self.events.len() as u64
    }
}

// ---------------------------------------------------------------------------
// detlint analyzer throughput
// ---------------------------------------------------------------------------

/// One synthetic source file exercising every analyzer stage: ordinary
/// code, string/comment stripping, unordered containers, panic/IO/lock
/// sites, suppressions and a test module. Content varies with `(seed,
/// index)` but is fully deterministic.
fn synthetic_source(seed: u64, index: u64) -> String {
    use std::fmt::Write as _;
    let mut src = String::with_capacity(4096);
    let salt = seed.wrapping_mul(0x9E37_79B9).wrapping_add(index);
    src.push_str("//! Synthetic detlint workload file.\n");
    src.push_str("use std::collections::HashMap;\n\n");
    for block in 0..12u64 {
        let v = salt.wrapping_add(block);
        let _ = writeln!(src, "fn work_{index}_{block}(xs: &[u64]) -> u64 {{");
        let _ = writeln!(src, "    let mut map: HashMap<u64, u64> = HashMap::new();");
        let _ = writeln!(src, "    map.insert({v}, xs.len() as u64);");
        match v % 5 {
            0 => {
                let _ = writeln!(src, "    let head = xs.first().unwrap(); // panic site");
                let _ = writeln!(src, "    *head + xs[{}]", v % 7);
            }
            1 => {
                let _ = writeln!(src, "    // detlint: allow(PANIC003) bench corpus");
                let _ = writeln!(src, "    xs[0]");
            }
            2 => {
                let _ = writeln!(src, "    let s = r#\"raw {v} \"quoted\" body\"#;");
                let _ = writeln!(src, "    /* nested /* comment */ here */ s.len() as u64");
            }
            3 => {
                let _ = writeln!(src, "    std::fs::write(\"out.json\", b\"{v}\").ok();");
                let _ = writeln!(src, "    xs.iter().sum::<u64>()");
            }
            _ => {
                let _ = writeln!(src, "    let g = LOCKS.lock();");
                let _ = writeln!(src, "    g.append(&[{v}]).ok();");
                let _ = writeln!(src, "    0");
            }
        }
        src.push_str("}\n\n");
    }
    src.push_str("#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n");
    src.push_str(
        "        assert_eq!(super::work_0_0(&[1]).to_string().parse::<u64>().unwrap(), 1);\n",
    );
    src.push_str("    }\n}\n");
    src
}

/// Analyzer throughput (`crates/detlint`): lex + all rule families +
/// suppression matching over a synthetic 48-file workspace held in
/// memory, so the number tracks the analyzer, not the disk. Units are
/// source lines processed.
pub struct DetlintWorkspaceBench {
    /// `(path label, source)` pairs, regenerated per seed.
    files: Vec<(String, String)>,
    config: detlint::Config,
}

impl DetlintWorkspaceBench {
    pub fn new() -> Self {
        DetlintWorkspaceBench {
            files: Vec::new(),
            config: detlint::Config::default(),
        }
    }
}

impl Default for DetlintWorkspaceBench {
    fn default() -> Self {
        Self::new()
    }
}

impl Benchmark for DetlintWorkspaceBench {
    fn name(&self) -> &'static str {
        "detlint_workspace"
    }
    fn tags(&self) -> &'static [&'static str] {
        &["smoke", "detlint"]
    }
    fn policy(&self) -> BenchPolicy {
        BenchPolicy::new(2, 10)
    }
    fn setup(&mut self, seed: u64) {
        self.files = (0..48)
            .map(|i| {
                (
                    format!("crates/synthetic/src/file_{i:02}.rs"),
                    synthetic_source(seed, i),
                )
            })
            .collect();
        let mut config = detlint::Config::default();
        // Scope the token families onto the synthetic corpus so every
        // rule pass runs (the realistic worst case for throughput).
        config.critical_paths.push("crates/synthetic/".to_string());
        config.artifact_paths.push("crates/synthetic/".to_string());
        self.config = config;
    }
    fn iter(&mut self, _round: u64) -> u64 {
        let mut lines = 0u64;
        for (path, text) in &self.files {
            std::hint::black_box(detlint::lint_source(path, text, &self.config));
            lines += text.lines().count() as u64;
        }
        lines
    }
}

// ---------------------------------------------------------------------------
// worker-farm dispatch overhead
// ---------------------------------------------------------------------------

/// Locate a binary that speaks the `e2clab worker` protocol.
///
/// * `E2C_WORKER_BIN` overrides everything (CI and local experiments);
/// * when the running process *is* `e2clab` (the `e2clab bench` path),
///   it serves as its own worker;
/// * under `cargo test` the current executable is a test harness, so the
///   workspace's `e2clab` binary is searched for next to it
///   (`target/<profile>/e2clab`, one directory above `deps/`).
fn worker_binary() -> Option<std::path::PathBuf> {
    if let Some(path) = std::env::var_os("E2C_WORKER_BIN") {
        return Some(std::path::PathBuf::from(path));
    }
    let exe = std::env::current_exe().ok()?;
    if exe.file_stem().is_some_and(|s| s == "e2clab") {
        return Some(exe);
    }
    let mut dir = exe.parent()?;
    for _ in 0..3 {
        for name in ["e2clab", "e2clab.exe"] {
            let candidate = dir.join(name);
            if candidate.is_file() {
                return Some(candidate);
            }
        }
        dir = dir.parent()?;
    }
    None
}

/// Multi-process farm dispatch overhead (`crates/tune/src/farm.rs`): asks
/// round-tripped through live `e2clab worker --builtin quad` processes —
/// frame encode, pipe write, worker turnaround, result parse, supervisor
/// bookkeeping — with the objective itself near-free, so the number *is*
/// the farm tax per evaluation. Units are completed asks.
pub struct WorkerFarmOverheadBench {
    farm: Option<e2c_tune::WorkerFarm>,
    trial: u64,
}

impl WorkerFarmOverheadBench {
    pub fn new() -> Self {
        WorkerFarmOverheadBench {
            farm: None,
            trial: 0,
        }
    }

    /// Asks dispatched per iteration.
    const ASKS: u64 = 64;
}

impl Default for WorkerFarmOverheadBench {
    fn default() -> Self {
        Self::new()
    }
}

impl Benchmark for WorkerFarmOverheadBench {
    fn name(&self) -> &'static str {
        "worker_farm_overhead"
    }
    fn tags(&self) -> &'static [&'static str] {
        &["smoke", "farm"]
    }
    fn policy(&self) -> BenchPolicy {
        BenchPolicy::new(1, 5)
    }
    fn setup(&mut self, seed: u64) {
        let bin = worker_binary().expect(
            "no `e2clab` binary found for the farm bench: build the workspace \
             (cargo build) or point E2C_WORKER_BIN at one",
        );
        let spec = e2c_tune::FarmSpec::new(
            bin,
            vec![
                "worker".to_string(),
                "--builtin".to_string(),
                "quad".to_string(),
            ],
            2,
            seed,
        );
        self.farm = Some(e2c_tune::WorkerFarm::launch(spec).expect("launch farm"));
        self.trial = 0;
    }
    fn iter(&mut self, _round: u64) -> u64 {
        let farm = self.farm.as_ref().expect("setup ran");
        for i in 0..Self::ASKS {
            let config = [self.trial as f64, (i % 7) as f64, 1.0];
            let outcome = farm
                .execute(self.trial, 0, &config, None)
                .expect("farm ask");
            match outcome {
                e2c_tune::FarmOutcome::Value { value, .. } => {
                    std::hint::black_box(value);
                }
                e2c_tune::FarmOutcome::Panicked { payload } => {
                    panic!("builtin quad objective panicked: {payload}")
                }
            }
            self.trial += 1;
        }
        Self::ASKS
    }
}

// ---------------------------------------------------------------------------
// open-loop serving epoch
// ---------------------------------------------------------------------------

/// One serving epoch under overload (`crates/plantnet` serving path +
/// `crates/workload` thinning): 120 simulated seconds of open-loop
/// arrivals at the 2.5M-users/day spring-peak rate (~55 req/s) against
/// the baseline pools, with a bounded admission queue and deadline
/// shedding — the hot loop behind every `e2clab serve` trial. Units are
/// offered arrivals processed.
pub struct ServingEpochBench {
    seed: u64,
}

impl ServingEpochBench {
    pub fn new() -> Self {
        ServingEpochBench { seed: 0 }
    }
}

impl Default for ServingEpochBench {
    fn default() -> Self {
        Self::new()
    }
}

impl Benchmark for ServingEpochBench {
    fn name(&self) -> &'static str {
        "serving_epoch"
    }
    fn tags(&self) -> &'static [&'static str] {
        &["smoke", "plantnet", "serve"]
    }
    fn policy(&self) -> BenchPolicy {
        BenchPolicy::new(1, 5)
    }
    fn setup(&mut self, seed: u64) {
        self.seed = seed;
    }
    fn iter(&mut self, round: u64) -> u64 {
        // The May peak of a 2.5M-users/day trace: mean ~29 req/s times
        // the 1.9× seasonal factor, saturating the baseline engine so
        // rejection, shedding and SLO accounting are all on the path.
        let schedule = e2c_workload::RateSchedule::constant(55.0, SimTime::from_secs(120))
            .expect("valid rate");
        let spec =
            plantnet::sim::ExperimentSpec::serving(PoolConfig::baseline(), schedule.horizon());
        let metrics = Experiment::run_serving(
            spec,
            &schedule,
            Some(plantnet::OverloadPolicy::paper_slo(64)),
            self.seed.wrapping_add(round),
        );
        let overload = metrics.overload.expect("serving run has overload totals");
        overload.offered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_registry_names_cover_the_roadmap_paths() {
        let reg = default_registry();
        assert_eq!(
            reg.selected(),
            vec![
                "des_mm1",
                "plantnet_600s",
                "bayes_cycle50",
                "journal_wal",
                "journal_wire",
                "detlint_workspace",
                "worker_farm_overhead",
                "serving_epoch"
            ]
        );
        // Every suite benchmark answers the CI smoke filter.
        assert_eq!(default_registry().with_filter("smoke").selected().len(), 8);
    }

    #[test]
    fn serving_epoch_bench_saturates_and_is_deterministic() {
        let mut a = ServingEpochBench::new();
        let mut b = ServingEpochBench::new();
        a.setup(7);
        b.setup(7);
        assert_eq!(a.iter(0), b.iter(0));
        // 55 req/s over 120 s: thousands of offered arrivals.
        assert!(a.iter(1) > 5_000);
    }

    #[test]
    fn detlint_bench_finds_real_findings_deterministically() {
        let mut a = DetlintWorkspaceBench::new();
        a.setup(3);
        let (path, text) = &a.files[0];
        let findings = detlint::lint_source(path, text, &a.config);
        // The synthetic corpus must exercise the token families for the
        // throughput number to mean anything.
        assert!(
            findings
                .iter()
                .any(|f| f.rule.code().starts_with("PANIC") || f.rule.code() == "IO001"),
            "{findings:?}"
        );
        let mut b = DetlintWorkspaceBench::new();
        b.setup(3);
        assert_eq!(a.iter(0), b.iter(0));
    }

    #[test]
    fn mm1_workload_is_seed_deterministic() {
        let mut a = DesMm1Bench::new();
        let mut b = DesMm1Bench::new();
        a.setup(7);
        b.setup(7);
        // Same seed+round ⇒ same event count; different round ⇒ different
        // workload instance (still the same size class).
        assert_eq!(a.iter(0), b.iter(0));
        assert!(a.iter(1) > 100_000);
    }

    #[test]
    fn journal_events_roundtrip_and_cover_variants() {
        let events = journal_events(40, 3);
        assert!(matches!(events[0], RunEvent::Meta { .. }));
        let mut kinds = std::collections::BTreeSet::new();
        for e in &events {
            kinds.insert(match e {
                RunEvent::Meta { .. } => "meta",
                RunEvent::Ask { .. } => "ask",
                RunEvent::Report { .. } => "report",
                RunEvent::Attempt { .. } => "attempt",
                RunEvent::Tell { .. } => "tell",
                _ => "other",
            });
            assert_eq!(&RunEvent::parse(&e.to_line()).unwrap(), e);
        }
        assert!(kinds.contains("ask") && kinds.contains("tell") && kinds.contains("attempt"));
    }
}
