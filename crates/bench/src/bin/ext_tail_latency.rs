//! **Extension** (beyond the paper): tail latency of the three
//! configurations. The paper's 4-second bound is a *user tolerance*, so
//! the per-request distribution tail matters as much as the window-mean
//! the paper reports. This bench prints p50/p95/p99 per configuration and
//! workload and the fraction of requests over 4 s — the analysis the
//! paper's framing implies but never shows.

use e2c_bench::spec;
use e2c_metrics::Table;
use plantnet::sim::Experiment;
use plantnet::PoolConfig;

fn main() {
    println!(
        "Extension — per-request tail latency ({} s runs)\n",
        e2c_bench::duration_secs()
    );
    let configs = [
        ("baseline", PoolConfig::baseline()),
        ("preliminary", PoolConfig::preliminary_optimum()),
        ("refined", PoolConfig::refined_optimum()),
    ];
    let mut table = Table::new(["config", "clients", "mean(s)", "p50(s)", "p95(s)", "p99(s)"]);
    for (name, cfg) in configs {
        for clients in [80usize, 120, 140] {
            let m = Experiment::run(spec(cfg, clients), 42);
            // `None` means no request finished after warm-up (crashed or
            // starved run) — print it as such instead of fake zeros.
            let pct = |p: Option<f64>| p.map_or("n/a".to_string(), |v| format!("{v:.3}"));
            let (p50, p95, p99) = match m.response_percentiles {
                Some((a, b, c)) => (Some(a), Some(b), Some(c)),
                None => (None, None, None),
            };
            table.row([
                name.to_string(),
                clients.to_string(),
                format!("{:.3}", m.response.mean),
                pct(p50),
                pct(p95),
                pct(p99),
            ]);
        }
    }
    print!("{table}");
    println!("\nreading: the optimized configurations improve the tail, not just the mean —");
    println!("at 120 clients the baseline's p95 already brushes the 4 s tolerance that its mean still satisfies.");
}
