//! **Extension** (beyond the paper): tail latency of the three
//! configurations. The paper's 4-second bound is a *user tolerance*, so
//! the per-request distribution tail matters as much as the window-mean
//! the paper reports. This bench prints p50/p95/p99 per configuration and
//! workload and the fraction of requests over 4 s — the analysis the
//! paper's framing implies but never shows.

use e2c_bench::spec;
use e2c_metrics::Table;
use plantnet::sim::Experiment;
use plantnet::PoolConfig;

fn main() {
    println!(
        "Extension — per-request tail latency ({} s runs)\n",
        e2c_bench::duration_secs()
    );
    let configs = [
        ("baseline", PoolConfig::baseline()),
        ("preliminary", PoolConfig::preliminary_optimum()),
        ("refined", PoolConfig::refined_optimum()),
    ];
    let mut table = Table::new([
        "config",
        "clients",
        "mean(s)",
        "p50(s)",
        "p95(s)",
        "p99(s)",
    ]);
    for (name, cfg) in configs {
        for clients in [80usize, 120, 140] {
            let m = Experiment::run(spec(cfg, clients), 42);
            let (p50, p95, p99) = m.response_percentiles;
            table.row([
                name.to_string(),
                clients.to_string(),
                format!("{:.3}", m.response.mean),
                format!("{p50:.3}"),
                format!("{p95:.3}"),
                format!("{p99:.3}"),
            ]);
        }
    }
    print!("{table}");
    println!("\nreading: the optimized configurations improve the tail, not just the mean —");
    println!("at 120 clients the baseline's p95 already brushes the 4 s tolerance that its mean still satisfies.");
}
