//! **Fig. 3** — "Pl@ntNet Engine: user response time" versus the number of
//! simultaneous requests, with the production (baseline) configuration.
//! The paper's reference point: ≈3.86 ± 0.13 s at 120 simultaneous
//! requests; the 4-second tolerance bound is crossed shortly above 120.

use e2c_bench::spec;
use e2c_metrics::Table;
use plantnet::sim::Experiment;
use plantnet::PoolConfig;

fn main() {
    let reps = e2c_bench::reps();
    println!(
        "Fig. 3 — user response time vs simultaneous requests (baseline config, {} reps x {} s)\n",
        reps,
        e2c_bench::duration_secs()
    );
    let mut table = Table::new([
        "simultaneous_requests",
        "resp_mean(s)",
        "resp_std(s)",
        "over_4s",
    ]);
    let mut knee: Option<usize> = None;
    for clients in (40..=160).step_by(10) {
        let rep = Experiment::run_repeated(spec(PoolConfig::baseline(), clients), reps, 7);
        let over = rep.response.mean > 4.0;
        if over && knee.is_none() {
            knee = Some(clients);
        }
        table.row([
            clients.to_string(),
            format!("{:.3}", rep.response.mean),
            format!("{:.4}", rep.response.std),
            if over { "yes" } else { "" }.to_string(),
        ]);
    }
    print!("{table}");
    match knee {
        Some(k) => println!("\n4 s tolerance exceeded from {k} simultaneous requests"),
        None => println!("\n4 s tolerance never exceeded in the swept range"),
    }
    println!(
        "paper: 3.86 ± 0.13 s at 120 simultaneous requests; cannot serve more than ~120 within 4 s"
    );
}
