//! **Extension** — the paper's §IV remark, demonstrated: "changes in the
//! hardware configuration (e.g., size of GPU memory, number of CPU cores
//! ...) will require a new search for the thread pool sizes". The
//! chifflot nodes carry *two* V100s but the engine uses one. What happens
//! if the second GPU is enabled — does the old optimum still hold, and
//! what does the re-run find?

use e2c_bench::spec;
use e2c_metrics::Table;
use plantnet::model::EngineModel;
use plantnet::sim::Experiment;
use plantnet::PoolConfig;

fn main() {
    println!(
        "Extension — enabling the second V100 ({} s runs, workload 80)\n",
        e2c_bench::duration_secs()
    );

    // Sweep the extract pool under both hardware configurations, other
    // pools at the optimum's 54/54/53.
    let mut table = Table::new([
        "extract_threads",
        "1 GPU resp(s)",
        "1 GPU cpu%",
        "2 GPUs resp(s)",
        "2 GPUs cpu%",
    ]);
    let mut best: [(u32, f64); 2] = [(0, f64::INFINITY); 2];
    for extract in [4u32, 5, 6, 7, 8, 9, 10, 12, 14] {
        let cfg = PoolConfig {
            extract,
            ..PoolConfig::preliminary_optimum()
        };
        let mut row = vec![extract.to_string()];
        for (slot, gpus) in [1u32, 2].iter().enumerate() {
            let mut s = spec(cfg, 80);
            s.model = EngineModel {
                gpus: *gpus,
                ..EngineModel::default()
            };
            let m = Experiment::run(s, 42);
            if m.response.mean < best[slot].1 {
                best[slot] = (extract, m.response.mean);
            }
            row.push(format!("{:.3}", m.response.mean));
            row.push(format!("{:.0}", m.mean_cpu() * 100.0));
        }
        // Reorder: extract, r1, cpu1, r2, cpu2 — already in order.
        table.row(row);
    }
    print!("{table}");
    println!(
        "\nbest with 1 GPU: extract={} ({:.3} s); best with 2 GPUs: extract={} ({:.3} s)",
        best[0].0, best[0].1, best[1].0, best[1].1
    );
    println!(
        "\nreading: the second GPU shifts the optimal extract pool and buys some response time,"
    );
    println!(
        "but the 40-core CPU becomes the wall (feeding + simsearch): doubling GPU capacity does"
    );
    println!(
        "not double capacity — exactly why the paper insists hardware changes need a fresh search."
    );
}
