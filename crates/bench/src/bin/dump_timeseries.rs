//! Dump the raw 10-second monitoring series for one configuration and
//! workload as CSV — the data behind the paper's Fig. 9c–g time plots
//! (CPU %, GPU/system memory, pool busy fractions over the run). Pipe to
//! a file and plot with anything.
//!
//! ```sh
//! cargo run --release -p e2c-bench --bin dump_timeseries -- preliminary 80 > series.csv
//! ```

use e2c_bench::spec;
use plantnet::sim::Experiment;
use plantnet::PoolConfig;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config_name = args.first().map(|s| s.as_str()).unwrap_or("preliminary");
    let clients: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(80);
    let config = match config_name {
        "baseline" => PoolConfig::baseline(),
        "preliminary" => PoolConfig::preliminary_optimum(),
        "refined" => PoolConfig::refined_optimum(),
        other => {
            eprintln!("unknown config `{other}` (use baseline|preliminary|refined)");
            std::process::exit(2);
        }
    };
    eprintln!(
        "dumping series: {config_name} ({config}) at {clients} simultaneous requests, {} s",
        e2c_bench::duration_secs()
    );
    let metrics = Experiment::run(spec(config, clients), 42);
    metrics
        .registry
        .write_csv(std::io::stdout().lock())
        .expect("write CSV to stdout");
}
