//! Calibration probe: prints the model's behaviour at the paper's anchor
//! points so EngineModel constants can be tuned. Not a paper figure —
//! a development tool kept for transparency.

use e2c_bench::spec;
use e2c_metrics::Table;
use plantnet::monitor::names;
use plantnet::sim::Experiment;
use plantnet::PoolConfig;

fn main() {
    let reps = e2c_bench::reps();
    println!(
        "calibration probe ({} reps x {} s)\n",
        reps,
        e2c_bench::duration_secs()
    );

    let mut table = Table::new([
        "config",
        "clients",
        "resp(s)",
        "std",
        "X(req/s)",
        "cpu%",
        "extract_busy%",
        "ss_busy%",
        "wait-extract(ms)",
        "simsearch(ms)",
        "gpu_mem(GB)",
    ]);
    let configs = [
        ("baseline", PoolConfig::baseline()),
        ("preliminary", PoolConfig::preliminary_optimum()),
        ("refined", PoolConfig::refined_optimum()),
    ];
    for (name, cfg) in configs {
        for clients in [80usize, 120, 140] {
            let rep = Experiment::run_repeated(spec(cfg, clients), reps, 42);
            let cpu = rep.mean_of(|r| r.mean_cpu());
            let eb = rep.mean_of(|r| r.mean_busy(names::EXTRACT_BUSY));
            let sb = rep.mean_of(|r| r.mean_busy(names::SIMSEARCH_BUSY));
            let x = rep.mean_of(|r| r.throughput);
            let we = rep.task_mean("wait-extract") * 1e3;
            let ss = rep.task_mean("simsearch") * 1e3;
            let gpu = rep.runs[0].gpu_mem_gb;
            table.row([
                name.to_string(),
                clients.to_string(),
                format!("{:.3}", rep.response.mean),
                format!("{:.4}", rep.response.std),
                format!("{x:.1}"),
                format!("{:.0}", cpu * 100.0),
                format!("{:.0}", eb * 100.0),
                format!("{:.0}", sb * 100.0),
                format!("{we:.0}"),
                format!("{ss:.0}"),
                format!("{gpu:.1}"),
            ]);
        }
    }
    print!("{table}");
    println!(
        "\npaper anchors: baseline@80=2.657  baseline@120=3.86  prelim@80=2.484  refined@80=2.476"
    );

    // Extract OAT quick view at the preliminary optimum.
    println!("\nextract sweep at preliminary optimum (clients=80):");
    let mut sweep = Table::new(["extract", "resp(s)", "cpu%", "extract_busy%", "ss_busy%"]);
    for extract in 5..=9u32 {
        let cfg = PoolConfig {
            extract,
            ..PoolConfig::preliminary_optimum()
        };
        let rep = Experiment::run_repeated(spec(cfg, 80), reps, 42);
        sweep.row([
            extract.to_string(),
            format!("{:.3}", rep.response.mean),
            format!("{:.0}", rep.mean_of(|r| r.mean_cpu()) * 100.0),
            format!(
                "{:.0}",
                rep.mean_of(|r| r.mean_busy(names::EXTRACT_BUSY)) * 100.0
            ),
            format!(
                "{:.0}",
                rep.mean_of(|r| r.mean_busy(names::SIMSEARCH_BUSY)) * 100.0
            ),
        ]);
    }
    print!("{sweep}");
    println!("paper: min at extract=6 (-8.5% vs 7); cpu 100% at 8-9, 85-100% else");
}
