//! **Table IV and Fig. 11** — the three configurations (baseline,
//! preliminary optimum, refined optimum) compared head-to-head: Table IV at
//! 80 simultaneous requests, Fig. 11 across all workloads (80/120/140).
//! Paper gaps vs baseline: preliminary −6.9/−2.2/−6.7%, refined
//! −7.2/−6.3/−9.8%; plus 30% lower GPU memory for the refined optimum.

use e2c_bench::{pct, spec};
use e2c_metrics::Table;
use plantnet::sim::Experiment;
use plantnet::PoolConfig;

fn main() {
    let reps = e2c_bench::reps();
    println!(
        "Table IV + Fig. 11 — baseline vs preliminary vs refined ({} reps x {} s)\n",
        reps,
        e2c_bench::duration_secs()
    );
    let configs = [
        ("baseline", PoolConfig::baseline()),
        ("preliminary", PoolConfig::preliminary_optimum()),
        ("refined", PoolConfig::refined_optimum()),
    ];

    // Table IV: the configurations and their response at 80 requests.
    println!("Table IV (workload: 80 simultaneous requests)");
    let mut t4 = Table::new(["Thread pool", "baseline", "preliminary", "refined"]);
    t4.row([
        "HTTP".to_string(),
        configs[0].1.http.to_string(),
        configs[1].1.http.to_string(),
        configs[2].1.http.to_string(),
    ]);
    t4.row([
        "Download".to_string(),
        configs[0].1.download.to_string(),
        configs[1].1.download.to_string(),
        configs[2].1.download.to_string(),
    ]);
    t4.row([
        "Extract".to_string(),
        configs[0].1.extract.to_string(),
        configs[1].1.extract.to_string(),
        configs[2].1.extract.to_string(),
    ]);
    t4.row([
        "Simsearch".to_string(),
        configs[0].1.simsearch.to_string(),
        configs[1].1.simsearch.to_string(),
        configs[2].1.simsearch.to_string(),
    ]);
    let at80: Vec<_> = configs
        .iter()
        .map(|(_, cfg)| Experiment::run_repeated(spec(*cfg, 80), reps, 42))
        .collect();
    t4.row([
        "User response time".to_string(),
        format!("{}", at80[0].response),
        format!("{}", at80[1].response),
        format!("{}", at80[2].response),
    ]);
    print!("{t4}");
    println!("paper: 2.657(±0.0914) / 2.484(±0.0912) / 2.476(±0.0826)\n");

    // Fig. 11: all three configurations across all three workloads.
    println!("Fig. 11 (all workloads)");
    let mut f11 = Table::new([
        "simultaneous_requests",
        "baseline(s)",
        "preliminary(s)",
        "refined(s)",
        "prelim_vs_base",
        "refined_vs_base",
    ]);
    for clients in [80usize, 120, 140] {
        let runs: Vec<_> = configs
            .iter()
            .map(|(_, cfg)| Experiment::run_repeated(spec(*cfg, clients), reps, 42))
            .collect();
        f11.row([
            clients.to_string(),
            format!("{:.3}", runs[0].response.mean),
            format!("{:.3}", runs[1].response.mean),
            format!("{:.3}", runs[2].response.mean),
            pct(runs[1].response.mean, runs[0].response.mean),
            pct(runs[2].response.mean, runs[0].response.mean),
        ]);
    }
    print!("{f11}");
    println!("paper: prelim -6.9/-2.2/-6.7%, refined -7.2/-6.3/-9.8% vs baseline\n");

    // GPU memory claim of the conclusions.
    let gpu_base = at80[0].runs[0].gpu_mem_gb;
    let gpu_refined = at80[2].runs[0].gpu_mem_gb;
    println!(
        "GPU memory: baseline(extract=7) {:.1} GB vs refined(extract=6) {:.1} GB ({})",
        gpu_base,
        gpu_refined,
        pct(gpu_refined, gpu_base)
    );
    println!("paper: 30% less GPU memory (7 GB vs 10 GB) — our memory model is linear in the pool size; see EXPERIMENTS.md");
}
