//! **Extension** — the paper's §II question, answered directly: "How many
//! more users can the system serve if we find a better thread pool
//! configuration?" Binary-search the largest number of simultaneous
//! requests each configuration sustains within the 4-second tolerance.

use e2c_bench::spec;
use e2c_metrics::Table;
use plantnet::sim::Experiment;
use plantnet::PoolConfig;

/// Largest client count with mean response ≤ `bound`, by binary search
/// over [lo, hi] (response is monotone in the closed-loop population).
fn capacity(cfg: PoolConfig, bound: f64, seed: u64) -> usize {
    let (mut lo, mut hi) = (40usize, 400usize);
    // Establish the bracket.
    if Experiment::run(spec(cfg, hi), seed).response.mean <= bound {
        return hi;
    }
    while hi - lo > 1 {
        let mid = (lo + hi) / 2;
        let resp = Experiment::run(spec(cfg, mid), seed).response.mean;
        if resp <= bound {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

fn main() {
    println!(
        "Extension — capacity at the 4 s user tolerance ({} s runs)\n",
        e2c_bench::duration_secs()
    );
    let configs = [
        ("baseline", PoolConfig::baseline()),
        ("preliminary", PoolConfig::preliminary_optimum()),
        ("refined", PoolConfig::refined_optimum()),
    ];
    let base_cap = capacity(configs[0].1, 4.0, 42);
    let mut table = Table::new(["config", "max_simultaneous_requests_at_4s", "vs_baseline"]);
    for (name, cfg) in configs {
        let cap = capacity(cfg, 4.0, 42);
        table.row([
            name.to_string(),
            cap.to_string(),
            format!("{:+.0}%", (cap as f64 / base_cap as f64 - 1.0) * 100.0),
        ]);
    }
    print!("{table}");
    println!("\npaper context: Fig. 3 caps the baseline near 120 simultaneous requests (we measure 121).");
    println!(
        "note: the paper's '35% more simultaneous users' counts HTTP admission slots (54 vs 40);"
    );
    println!(
        "end-to-end capacity at the 4 s bound grows by the response-time gain (~7%) — admission"
    );
    println!("slots beyond the bottleneck's ability to serve them queue internally instead of externally.");
}
