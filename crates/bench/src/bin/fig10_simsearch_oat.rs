//! **Fig. 10 (a–d)** — impact of the *Simsearch* thread-pool size, varied
//! one-at-a-time (±3) around the preliminary optimum at 80 simultaneous
//! requests:
//!
//! * (a) user response time — the paper reads a ~4% improvement moving
//!   from 53 to 55 threads;
//! * (b) per-task processing times — the simsearch task time mirrors (a);
//! * (c) simsearch-pool busy time;
//! * (d) extract-pool busy time (explains the wait-extract variations).

use e2c_bench::{pct, spec};
use e2c_metrics::Table;
use e2c_optim::sensitivity::OatPlan;
use plantnet::monitor::names;
use plantnet::sim::Experiment;
use plantnet::PoolConfig;

fn main() {
    let reps = e2c_bench::reps();
    println!(
        "Fig. 10 — OAT on the Simsearch pool around the preliminary optimum ({} reps x {} s)\n",
        reps,
        e2c_bench::duration_secs()
    );
    let center = PoolConfig::preliminary_optimum();
    let space = PoolConfig::space();
    // Eq. 2 order: simsearch is dimension 2; the paper varies ±3.
    let plan = OatPlan::around(&space, &center.to_point(), &[(2, 3.0)]);
    let sweep = plan.sweep_of(2);

    let mut results = Vec::new();
    for (ss, point) in &sweep {
        let cfg = PoolConfig::from_point(point);
        let rep = Experiment::run_repeated(spec(cfg, 80), reps, 42);
        results.push((*ss as u32, rep));
    }
    let center_resp = results
        .iter()
        .find(|(s, _)| *s == center.simsearch)
        .expect("center in sweep")
        .1
        .response
        .mean;

    println!("(a) user response time / (b) task times / (c,d) pool busy");
    let mut table = Table::new([
        "simsearch_threads",
        "resp(s)",
        "vs_53",
        "simsearch_task(ms)",
        "wait-simsearch(ms)",
        "wait-extract(ms)",
        "simsearch_busy%",
        "extract_busy%",
    ]);
    for (s, rep) in &results {
        table.row([
            s.to_string(),
            format!("{}", rep.response),
            pct(rep.response.mean, center_resp),
            format!("{:.0}", rep.task_mean("simsearch") * 1e3),
            format!("{:.0}", rep.task_mean("wait-simsearch") * 1e3),
            format!("{:.0}", rep.task_mean("wait-extract") * 1e3),
            format!(
                "{:.0}",
                rep.mean_of(|r| r.mean_busy(names::SIMSEARCH_BUSY)) * 100.0
            ),
            format!(
                "{:.0}",
                rep.mean_of(|r| r.mean_busy(names::EXTRACT_BUSY)) * 100.0
            ),
        ]);
    }
    print!("{table}");
    let best = results
        .iter()
        .min_by(|a, b| {
            a.1.response
                .mean
                .partial_cmp(&b.1.response.mean)
                .expect("finite")
        })
        .expect("non-empty sweep");
    println!(
        "\nminimum at simsearch={} ({} vs 53)",
        best.0,
        pct(best.1.response.mean, center_resp)
    );
    println!("paper: ~-4% at 55 threads; busy ~90-100% at 52, <60% at 53-55, ~80% at 56.");
    println!("note: in our calibrated model the simsearch pool has headroom at 52-56 threads,");
    println!("so the response curve is nearly flat here — see EXPERIMENTS.md for the deviation discussion.");
}
