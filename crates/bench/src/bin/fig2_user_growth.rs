//! **Fig. 2** — "Exponential growth of new users every spring (peaks in
//! May–June)." Prints the synthetic monthly new-user trace, 2017–2021.

use e2c_metrics::Table;
use e2c_workload::seasonal::GrowthModel;

fn main() {
    println!("Fig. 2 — Pl@ntNet new users per month (synthetic trace)\n");
    let model = GrowthModel::default();
    let trace = model.trace(2017, 2021);
    let mut table = Table::new(["year", "month", "new_users"]);
    for s in &trace {
        table.row([
            s.year.to_string(),
            s.month.to_string(),
            format!("{:.0}", s.new_users),
        ]);
    }
    print!("{table}");

    println!("\nyearly spring peaks:");
    let mut peaks = Table::new(["year", "peak_month", "peak_new_users", "vs_prev_year"]);
    let mut prev: Option<f64> = None;
    for year in 2017..=2021 {
        let best = trace
            .iter()
            .filter(|s| s.year == year)
            .max_by(|a, b| a.new_users.partial_cmp(&b.new_users).expect("finite"))
            .expect("year present");
        let growth = prev
            .map(|p| format!("{:+.0}%", (best.new_users / p - 1.0) * 100.0))
            .unwrap_or_else(|| "-".to_string());
        peaks.row([
            year.to_string(),
            best.month.to_string(),
            format!("{:.0}", best.new_users),
            growth,
        ]);
        prev = Some(best.new_users);
    }
    print!("{peaks}");
    println!("\npaper shape: peaks every May–June, each spring larger than the last.");
}
