//! **Ablation (§III-B)** — initial-design choice. Phase II names Latin
//! Hypercube and low-discrepancy sampling as the candidate generators for
//! the surrogate's initial points; this bench compares random, LHS, Halton,
//! Sobol and grid on the Pl@ntNet objective under the same budget, plus a
//! design-quality metric (minimum pairwise distance in the unit cube —
//! larger is better spread).

use e2c_bench::spec;
use e2c_metrics::Table;
use e2c_optim::acquisition::Acquisition;
use e2c_optim::bayes::BayesOpt;
use e2c_optim::surrogate::SurrogateKind;
use e2c_optim::{InitialDesign, Space};
use plantnet::sim::Experiment;
use plantnet::PoolConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn min_pairwise_distance(space: &Space, pts: &[Vec<f64>]) -> f64 {
    let unit: Vec<Vec<f64>> = pts.iter().map(|p| space.to_unit(p)).collect();
    let mut best = f64::INFINITY;
    for i in 0..unit.len() {
        for j in i + 1..unit.len() {
            let d: f64 = unit[i]
                .iter()
                .zip(&unit[j])
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                .sqrt();
            best = best.min(d);
        }
    }
    best
}

fn main() {
    let budget = 30usize;
    let n_init = 12usize;
    println!(
        "Ablation — initial designs (budget {budget}, {n_init} initial points, workload 80)\n"
    );
    let designs = [
        InitialDesign::Random,
        InitialDesign::Lhs,
        InitialDesign::Halton,
        InitialDesign::Sobol,
        InitialDesign::Grid,
    ];
    let space = PoolConfig::space();
    let mut table = Table::new(["design", "min_pairwise_dist", "best_resp(s)"]);
    for design in designs {
        // Design-quality metric on the raw sample.
        let mut rng = StdRng::seed_from_u64(5);
        let sample = design.generate(&space, n_init, &mut rng);
        let spread = min_pairwise_distance(&space, &sample);

        let mut opt = BayesOpt::new(space.clone(), 13)
            .base_estimator(SurrogateKind::ExtraTrees)
            .acq_func(Acquisition::Ei)
            .initial_point_generator(design)
            .n_initial_points(n_init);
        for trial in 0..budget {
            let point = opt.ask();
            let cfg = PoolConfig::from_point(&point);
            let resp = Experiment::run(spec(cfg, 80), 900 + trial as u64)
                .response
                .mean;
            opt.tell(point, resp);
        }
        let (_, best) = opt.best().expect("non-empty run");
        table.row([
            format!("{design:?}"),
            format!("{spread:.3}"),
            format!("{best:.3}"),
        ]);
    }
    print!("{table}");
    println!("\npaper setting: LHS ('initial_point_generator=\"lhs\"')");
}
