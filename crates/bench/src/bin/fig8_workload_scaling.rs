//! **Fig. 8** — "User response time: baseline vs preliminary" across the
//! three workloads (80, 120, 140 simultaneous requests). The paper's gaps:
//! 6.9%, 2.2% and 6.7%.

use e2c_bench::{pct, spec};
use e2c_metrics::Table;
use plantnet::sim::Experiment;
use plantnet::PoolConfig;

fn main() {
    let reps = e2c_bench::reps();
    println!(
        "Fig. 8 — baseline vs preliminary optimum across workloads ({} reps x {} s)\n",
        reps,
        e2c_bench::duration_secs()
    );
    let baseline = PoolConfig::baseline();
    let preliminary = PoolConfig::preliminary_optimum();
    let mut table = Table::new([
        "simultaneous_requests",
        "baseline(s)",
        "preliminary(s)",
        "difference",
    ]);
    for clients in [80usize, 120, 140] {
        let base = Experiment::run_repeated(spec(baseline, clients), reps, 42);
        let prem = Experiment::run_repeated(spec(preliminary, clients), reps, 42);
        table.row([
            clients.to_string(),
            format!("{}", base.response),
            format!("{}", prem.response),
            pct(prem.response.mean, base.response.mean),
        ]);
    }
    print!("{table}");
    println!("\npaper: preliminary optimum wins at every workload; gaps -6.9% / -2.2% / -6.7%");
}
