//! **Ablation (§III-D)** — acquisition-function choice. Listing 1 sets
//! `acq_func="gp_hedge"`; this bench compares EI, PI, LCB and the hedge
//! portfolio on the Pl@ntNet objective under the same budget.

use e2c_bench::spec;
use e2c_metrics::Table;
use e2c_optim::acquisition::Acquisition;
use e2c_optim::bayes::BayesOpt;
use e2c_optim::surrogate::SurrogateKind;
use e2c_optim::InitialDesign;
use plantnet::sim::Experiment;
use plantnet::PoolConfig;

fn main() {
    let budget = 30usize;
    println!("Ablation — acquisition functions (budget {budget}, workload 80)\n");
    let acqs = [
        ("ei", Acquisition::Ei),
        ("pi", Acquisition::Pi),
        ("lcb", Acquisition::Lcb { kappa: 1.96 }),
        ("gp_hedge", Acquisition::GpHedge),
    ];
    let mut table = Table::new(["acq_func", "best_resp(s)", "best_config(http,dl,ss,ex)"]);
    for (name, acq) in acqs {
        let mut opt = BayesOpt::new(PoolConfig::space(), 31)
            .base_estimator(SurrogateKind::ExtraTrees)
            .acq_func(acq)
            .initial_point_generator(InitialDesign::Lhs)
            .n_initial_points(10);
        for trial in 0..budget {
            let point = opt.ask();
            let cfg = PoolConfig::from_point(&point);
            let resp = Experiment::run(spec(cfg, 80), 700 + trial as u64)
                .response
                .mean;
            opt.tell(point, resp);
        }
        let (bx, bv) = opt.best().expect("non-empty run");
        table.row([
            name.to_string(),
            format!("{bv:.3}"),
            format!("({},{},{},{})", bx[0], bx[1], bx[2], bx[3]),
        ]);
    }
    print!("{table}");
    println!("\npaper setting: gp_hedge (probability-matched EI/PI/LCB portfolio)");
}
