//! **Ablation (§III-B)** — surrogate-model choice. The paper lists
//! Gaussian processes, decision trees, random forests, GBRT, SVM and
//! polynomial regression as candidate surrogates and uses Extra Trees.
//! This bench runs the same Pl@ntNet optimization budget with each
//! surrogate family and reports the best response time found and the
//! convergence speed.

use e2c_bench::spec;
use e2c_metrics::Table;
use e2c_optim::acquisition::Acquisition;
use e2c_optim::bayes::BayesOpt;
use e2c_optim::surrogate::SurrogateKind;
use e2c_optim::InitialDesign;
use plantnet::sim::Experiment;
use plantnet::PoolConfig;

fn main() {
    let budget = 30usize;
    println!(
        "Ablation — surrogate families on the Pl@ntNet objective (budget {budget} evaluations, workload 80)\n"
    );
    let mut table = Table::new([
        "surrogate",
        "best_resp(s)",
        "best_config(http,dl,ss,ex)",
        "evals_to_within_2%",
    ]);
    for kind in SurrogateKind::all() {
        let mut opt = BayesOpt::new(PoolConfig::space(), 77)
            .base_estimator(kind)
            .acq_func(Acquisition::Ei)
            .initial_point_generator(InitialDesign::Lhs)
            .n_initial_points(10);
        let mut best_so_far = Vec::with_capacity(budget);
        for trial in 0..budget {
            let point = opt.ask();
            let cfg = PoolConfig::from_point(&point);
            let resp = Experiment::run(spec(cfg, 80), 500 + trial as u64)
                .response
                .mean;
            opt.tell(point, resp);
            let best = opt.best().expect("told at least once").1;
            best_so_far.push(best);
        }
        let (bx, bv) = opt.best().expect("non-empty run");
        let target = bv * 1.02;
        let evals_to = best_so_far
            .iter()
            .position(|&b| b <= target)
            .map(|i| (i + 1).to_string())
            .unwrap_or_else(|| "-".into());
        table.row([
            kind.name().to_string(),
            format!("{bv:.3}"),
            format!("({},{},{},{})", bx[0], bx[1], bx[2], bx[3]),
            evals_to,
        ]);
    }
    print!("{table}");
    println!("\npaper setting: Extra Trees ('ET'); any family finding http≫40 with extract 6-7 reproduces Table III's direction");
}
