//! **Table III** — Bayesian optimization of the four thread pools at a
//! workload of 80 simultaneous requests (§IV-A / Listing 1): Extra-Trees
//! surrogate, LHS initialization, `gp_hedge` acquisition, two concurrent
//! evaluations. Prints the baseline vs the found optimum, like the paper's
//! table.

use e2c_bench::spec;
use e2c_conf::parse;
use e2c_conf::schema::ExperimentConf;
use e2c_core::OptimizationManager;
use e2c_metrics::Table;
use plantnet::sim::Experiment;
use plantnet::PoolConfig;

/// The paper's optimizer_conf (Listing 1), as a configuration document.
/// `num_samples` is larger than the paper's 10 because our surrogate
/// starts from scratch (the paper seeds 45 LHS points into the model
/// before the 10 reported evaluations).
const OPTIMIZER_CONF: &str = r#"
name: plantnet
optimization:
  metric: user_resp_time
  mode: min
  name: plantnet_engine
  num_samples: 40
  max_concurrent: 2
  search:
    algo: extra_trees
    n_initial_points: 20
    initial_point_generator: lhs
    acq_func: gp_hedge
  config:
    - name: http
      type: randint
      bounds: [20, 60]
    - name: download
      type: randint
      bounds: [20, 60]
    - name: simsearch
      type: randint
      bounds: [20, 60]
    - name: extract
      type: randint
      bounds: [3, 9]
"#;

fn main() {
    let reps = e2c_bench::reps();
    let opt_reps = 1.max(reps / 3); // per-evaluation repetitions inside BO
    println!(
        "Table III — Bayesian optimization at 80 simultaneous requests ({} reps per final config)\n",
        reps
    );

    let conf = ExperimentConf::from_value(&parse(OPTIMIZER_CONF).expect("static conf parses"))
        .expect("static conf validates")
        .optimization
        .expect("optimization section present");
    let budget = conf.num_samples;
    let manager = OptimizationManager::new(conf).with_seed(2021);
    let summary = manager.run(|ctx| {
        // Eq. 2 order: (http, download, simsearch, extract).
        let cfg = PoolConfig::from_point(&ctx.point);
        Experiment::run_repeated(spec(cfg, 80), opt_reps, 1000 + ctx.trial_id)
            .response
            .mean
    });
    let summary = summary.expect("optimization run");
    println!("{}", summary.render());

    let optimum = PoolConfig::from_point(
        summary
            .best_point
            .as_ref()
            .expect("optimization produced a best point"),
    );
    let baseline = PoolConfig::baseline();

    // Re-measure both configurations with the full repetition protocol.
    let base = Experiment::run_repeated(spec(baseline, 80), reps, 42);
    let best = Experiment::run_repeated(spec(optimum, 80), reps, 42);

    let mut table = Table::new(["Thread pool", "baseline", "found optimum"]);
    table.row([
        "HTTP",
        &baseline.http.to_string(),
        &optimum.http.to_string(),
    ]);
    table.row([
        "Download",
        &baseline.download.to_string(),
        &optimum.download.to_string(),
    ]);
    table.row([
        "Extract",
        &baseline.extract.to_string(),
        &optimum.extract.to_string(),
    ]);
    table.row([
        "Simsearch",
        &baseline.simsearch.to_string(),
        &optimum.simsearch.to_string(),
    ]);
    table.row([
        "User response time".to_string(),
        format!("{}", base.response),
        format!("{}", best.response),
    ]);
    print!("{table}");
    println!(
        "\nimprovement: {} response time; admission capacity {} → {} HTTP slots ({}).",
        e2c_bench::pct(best.response.mean, base.response.mean),
        baseline.http,
        optimum.http,
        e2c_bench::pct(optimum.http as f64, baseline.http as f64)
    );
    println!(
        "evaluations spent: {} ({} BO budget)",
        summary.analysis.trials().len(),
        budget
    );
    println!("paper: baseline (40/40/7/40) 2.657±0.0914 vs preliminary optimum (54/54/7/53) 2.484±0.0912 (-7%), +35% simultaneous users");
}
