//! **Fig. 9 (a–g)** — impact of the *Extract* thread-pool size, varied
//! one-at-a-time (±2) around the preliminary optimum at 80 simultaneous
//! requests:
//!
//! * (a) user response time — the paper finds the minimum at **6** threads
//!   (−8.5% vs 7);
//! * (b) per-task processing times — wait-extract falls with more threads,
//!   simsearch time rises;
//! * (c) CPU usage — pinned at 100% with 8–9 threads, 85–100% otherwise;
//! * (d) GPU memory — grows with the pool, flat over time;
//! * (e) system memory — grows with the pool;
//! * (f) extract-pool busy time — ~100% at 5–7, 80–100% at 8–9;
//! * (g) simsearch-pool busy time — ~50/55/60% at 5/6/7, higher at 8–9.

use e2c_bench::{pct, spec};
use e2c_metrics::Table;
use e2c_optim::sensitivity::OatPlan;
use plantnet::monitor::names;
use plantnet::pipeline::Task;
use plantnet::sim::Experiment;
use plantnet::PoolConfig;

fn main() {
    let reps = e2c_bench::reps();
    println!(
        "Fig. 9 — OAT on the Extract pool around the preliminary optimum ({} reps x {} s)\n",
        reps,
        e2c_bench::duration_secs()
    );
    let center = PoolConfig::preliminary_optimum();
    let space = PoolConfig::space();
    // Eq. 2 order: (http, download, simsearch, extract); extract is dim 3.
    let plan = OatPlan::around(&space, &center.to_point(), &[(3, 2.0)]);
    let sweep = plan.sweep_of(3);

    let mut results = Vec::new();
    for (extract, point) in &sweep {
        let cfg = PoolConfig::from_point(point);
        let rep = Experiment::run_repeated(spec(cfg, 80), reps, 42);
        results.push((*extract as u32, rep));
    }

    // (a) user response time.
    println!("(a) user response time");
    let center_resp = results
        .iter()
        .find(|(e, _)| *e == center.extract)
        .expect("center in sweep")
        .1
        .response
        .mean;
    let mut ta = Table::new(["extract_threads", "resp(s)", "vs_extract_7"]);
    for (e, rep) in &results {
        ta.row([
            e.to_string(),
            format!("{}", rep.response),
            pct(rep.response.mean, center_resp),
        ]);
    }
    print!("{ta}");
    let best = results
        .iter()
        .min_by(|a, b| {
            a.1.response
                .mean
                .partial_cmp(&b.1.response.mean)
                .expect("finite")
        })
        .expect("non-empty sweep");
    println!(
        "minimum at extract={} | paper: minimum at 6 (-8.5% vs 7)\n",
        best.0
    );

    // (b) per-task processing times.
    println!("(b) identification processing time per task (ms)");
    let mut tb = Table::new([
        "extract_threads",
        "pre-process",
        "wait-download",
        "download",
        "wait-extract",
        "extract",
        "process",
        "wait-simsearch",
        "simsearch",
        "post-process",
    ]);
    for (e, rep) in &results {
        let mut row = vec![e.to_string()];
        for task in Task::ORDER {
            row.push(format!("{:.0}", rep.task_mean(task.label()) * 1e3));
        }
        tb.row(row);
    }
    print!("{tb}");
    println!("paper: wait-extract falls with more threads; simsearch time rises; extract time does not fall\n");

    // (c–g) resource usage.
    println!("(c-g) resource usage");
    let mut tc = Table::new([
        "extract_threads",
        "cpu_usage%",
        "gpu_mem(GB)",
        "sys_mem(GB)",
        "extract_busy%",
        "simsearch_busy%",
    ]);
    for (e, rep) in &results {
        tc.row([
            e.to_string(),
            format!("{:.0}", rep.mean_of(|r| r.mean_cpu()) * 100.0),
            format!("{:.1}", rep.runs[0].gpu_mem_gb),
            format!("{:.1}", rep.runs[0].sys_mem_gb),
            format!(
                "{:.0}",
                rep.mean_of(|r| r.mean_busy(names::EXTRACT_BUSY)) * 100.0
            ),
            format!(
                "{:.0}",
                rep.mean_of(|r| r.mean_busy(names::SIMSEARCH_BUSY)) * 100.0
            ),
        ]);
    }
    print!("{tc}");
    println!("paper: CPU 100% at 8-9; GPU/system memory grow with the pool; extract busy ~100% at 5-7; simsearch busy ~50-60% at 5-7");
}
