//! **Ablation (§V-B)** — sequential vs parallel optimization. The paper
//! claims parallel, asynchronous evaluation "helps to significantly reduce
//! the application optimization time from days to hours compared to a
//! sequential optimization approach". This bench runs the same budget with
//! 1, 2, 4 and 8 concurrent evaluations and reports wall-clock time and
//! the quality of the found optimum (asynchrony costs a little sample
//! efficiency; concurrency buys back wall-clock).

use e2c_bench::spec;
use e2c_conf::parse;
use e2c_conf::schema::ExperimentConf;
use e2c_core::OptimizationManager;
use e2c_metrics::Table;
use plantnet::sim::Experiment;
use plantnet::PoolConfig;
use std::time::Instant;

fn conf(max_concurrent: usize) -> e2c_conf::schema::OptimizationConf {
    let src = format!(
        r#"
name: parallel-ablation
optimization:
  metric: user_resp_time
  mode: min
  name: parallel-ablation
  num_samples: 24
  max_concurrent: {max_concurrent}
  search:
    algo: extra_trees
    n_initial_points: 8
    initial_point_generator: lhs
    acq_func: ei
  config:
    - name: http
      type: randint
      bounds: [20, 60]
    - name: download
      type: randint
      bounds: [20, 60]
    - name: simsearch
      type: randint
      bounds: [20, 60]
    - name: extract
      type: randint
      bounds: [3, 9]
"#
    );
    ExperimentConf::from_value(&parse(&src).expect("static conf parses"))
        .expect("static conf validates")
        .optimization
        .expect("optimization section present")
}

fn main() {
    println!("Ablation — optimization cycle concurrency (24 evaluations each)\n");
    let mut table = Table::new(["max_concurrent", "wall_clock(s)", "speedup", "best_resp(s)"]);
    let mut sequential_secs = None;
    for workers in [1usize, 2, 4, 8] {
        let manager = OptimizationManager::new(conf(workers)).with_seed(5);
        // detlint: allow(DET002) bench harness: measures real wall-clock speedup; timing is the output, not a decision input
        let started = Instant::now();
        let summary = manager.run(|ctx| {
            let cfg = PoolConfig::from_point(&ctx.point);
            Experiment::run(spec(cfg, 80), 300 + ctx.trial_id)
                .response
                .mean
        });
        let summary = summary.expect("optimization run");
        let secs = started.elapsed().as_secs_f64();
        let baseline = *sequential_secs.get_or_insert(secs);
        table.row([
            workers.to_string(),
            format!("{secs:.1}"),
            format!("{:.2}x", baseline / secs),
            format!("{:.3}", summary.best_value.expect("successful run")),
        ]);
    }
    print!("{table}");
    println!("\npaper claim: parallel asynchronous evaluation cuts optimization wall-clock near-linearly");
}
