//! # e2c-bench — benchmark API + experiment harness
//!
//! Two layers:
//!
//! 1. **The benchmark API** ([`harness`]): a public [`Benchmark`] trait, a
//!    builder-style [`BenchRegistry`], and stable [`BenchReport`]
//!    artifacts written as `BENCH_<name>.json`. The [`suite`] module
//!    registers one benchmark per load-bearing path (DES event loop, full
//!    Pl@ntNet run, Bayesian cycle, journal append/replay, wire codec,
//!    detlint throughput, worker-farm dispatch overhead);
//!    [`default_registry`] wires them up and `e2clab bench` runs them, so
//!    every PR can regenerate the performance trajectory.
//! 2. **The paper harness**: one binary per table/figure of the paper
//!    (see DESIGN.md §4 for the index). Binaries print the same
//!    rows/series the paper reports and honor two environment variables
//!    so CI can run them quickly:
//!    * `E2C_REPS` — repetitions per configuration (paper: 7);
//!    * `E2C_DURATION` — seconds per run (paper: 1380).
//!
//! The benchmark API honors `E2C_BENCH_WARMUP` / `E2C_BENCH_ITERS` the
//! same way (see [`BenchPolicy::from_env`]). `cargo bench -p e2c-bench`
//! additionally runs Criterion micro-benchmarks over the substrates.

pub mod harness;
pub mod suite;

pub use harness::{BenchError, BenchPolicy, BenchRegistry, BenchReport, Benchmark, WallStats};
pub use suite::{
    default_registry, BayesCycleBench, DesMm1Bench, JournalWalBench, JournalWireBench,
    PlantnetRunBench, WorkerFarmOverheadBench,
};

use e2c_des::SimTime;
use plantnet::sim::ExperimentSpec;
use plantnet::PoolConfig;

/// Repetitions per configuration (`E2C_REPS`, default 7 — the paper's
/// protocol).
pub fn reps() -> usize {
    std::env::var("E2C_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(7)
}

/// Run duration in seconds (`E2C_DURATION`, default 1380 s).
pub fn duration_secs() -> u64 {
    std::env::var("E2C_DURATION")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1380)
}

/// The paper's experiment spec with the env-var overrides applied.
pub fn spec(config: PoolConfig, clients: usize) -> ExperimentSpec {
    let mut s = ExperimentSpec::paper(config, clients);
    s.duration = SimTime::from_secs(duration_secs());
    // Keep the warm-up under 10% of the duration for short CI runs.
    s.warmup = SimTime::from_secs((duration_secs() / 10).min(60));
    s
}

/// Render a percentage difference `new vs base` with sign, e.g. `-6.9%`.
pub fn pct(new: f64, base: f64) -> String {
    format!("{:+.1}%", (new - base) / base * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_formats_signed() {
        assert_eq!(pct(93.1, 100.0), "-6.9%");
        assert_eq!(pct(110.0, 100.0), "+10.0%");
    }

    #[test]
    fn spec_honors_defaults() {
        let s = spec(PoolConfig::baseline(), 80);
        assert_eq!(s.clients, 80);
        assert!(s.duration.as_secs_f64() > 0.0);
        assert!(s.warmup < s.duration);
    }
}
