//! Smoke gate for the benchmark registry: every registered benchmark
//! must be selectable by the `smoke` tag, run at least one iteration,
//! and emit a `BENCH_<name>.json` report that parses back to the same
//! values. This is the test-level twin of CI's `bench-smoke` job.

use e2c_bench::{default_registry, BenchPolicy, BenchReport};

#[test]
fn every_registered_benchmark_runs_under_the_smoke_filter() {
    let dir = std::env::temp_dir().join(format!("e2c-bench-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let mut registry = default_registry()
        .with_seed(7)
        .with_filter("smoke")
        .with_policy(BenchPolicy::new(0, 1))
        .with_out_dir(dir.clone());
    // The `smoke` tag must select the full suite — a benchmark registered
    // without it would silently drop out of CI's bench-smoke job.
    let names = registry.selected();
    assert_eq!(
        names,
        vec![
            "des_mm1",
            "plantnet_600s",
            "bayes_cycle50",
            "journal_wal",
            "journal_wire",
            "detlint_workspace",
            "worker_farm_overhead",
            "serving_epoch"
        ]
    );

    let reports = registry.run().unwrap();
    assert_eq!(reports.len(), names.len());
    for report in &reports {
        assert!(report.iterations >= 1, "{}", report.name);
        assert!(report.units_per_iter > 0.0, "{} did no work", report.name);
        let text = std::fs::read_to_string(dir.join(report.file_name())).unwrap();
        let parsed = BenchReport::from_json(&text).unwrap();
        assert_eq!(&parsed, report);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn filter_narrows_to_a_single_benchmark() {
    let mut registry = default_registry()
        .with_filter("journal_wire")
        .with_policy(BenchPolicy::new(0, 1));
    assert_eq!(registry.selected(), vec!["journal_wire"]);
    let reports = registry.run().unwrap();
    assert_eq!(reports.len(), 1);
    assert_eq!(reports[0].name, "journal_wire");
}
