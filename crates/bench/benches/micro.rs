//! Criterion micro-benchmarks over the substrates: DES kernel throughput,
//! samplers, surrogate fit/predict, metaheuristic steps, and a full short
//! engine experiment. These guard the performance of the pieces the
//! experiment harness leans on (a full Table III reproduction runs ~10⁷
//! DES events through these paths).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use e2c_des::resources::{ProcShare, Tokens};
use e2c_des::{Dist, SimTime};
use e2c_optim::acquisition::Acquisition;
use e2c_optim::bayes::BayesOpt;
use e2c_optim::metaheuristics::{DifferentialEvolution, Metaheuristic};
use e2c_optim::sampling::InitialDesign;
use e2c_optim::space::Space;
use e2c_optim::surrogate::SurrogateKind;
use plantnet::sim::{Experiment, ExperimentSpec};
use plantnet::PoolConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_des_kernel(c: &mut Criterion) {
    c.bench_function("des/tokens_acquire_release", |b| {
        b.iter_batched(
            || Tokens::new(8),
            |mut pool| {
                let mut t = SimTime::ZERO;
                for id in 0..64u64 {
                    pool.try_acquire(t, id);
                    t += SimTime::from_micros(10);
                }
                for _ in 0..8 {
                    pool.release(t);
                    t += SimTime::from_micros(10);
                }
                pool
            },
            BatchSize::SmallInput,
        )
    });

    c.bench_function("des/procshare_churn_64_jobs", |b| {
        b.iter_batched(
            || ProcShare::cores(40.0),
            |mut cpu| {
                let mut now = SimTime::ZERO;
                for id in 0..64u64 {
                    cpu.start(now, id, 0.5, 1.0);
                    now += SimTime::from_micros(100);
                }
                while let Some((at, id)) = cpu.next_completion(now) {
                    now = at;
                    cpu.remove(now, id);
                }
                cpu
            },
            BatchSize::SmallInput,
        )
    });

    c.bench_function("des/engine_10s_80clients", |b| {
        let mut spec = ExperimentSpec::paper(PoolConfig::baseline(), 80);
        spec.duration = SimTime::from_secs(10);
        spec.warmup = SimTime::from_secs(1);
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            Experiment::run(spec, seed)
        })
    });
}

fn bench_samplers(c: &mut Criterion) {
    let space = PoolConfig::space();
    for design in [
        InitialDesign::Lhs,
        InitialDesign::Sobol,
        InitialDesign::Halton,
    ] {
        c.bench_function(&format!("sampling/{design:?}_256pts_4d"), |b| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| design.generate(&space, 256, &mut rng))
        });
    }
}

fn bench_surrogates(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let x: Vec<Vec<f64>> = (0..100)
        .map(|_| (0..4).map(|_| rng.gen::<f64>()).collect())
        .collect();
    let y: Vec<f64> = x
        .iter()
        .map(|p| p.iter().map(|v| (v - 0.5) * (v - 0.5)).sum())
        .collect();
    for kind in [
        SurrogateKind::ExtraTrees,
        SurrogateKind::GpRbf,
        SurrogateKind::Gbrt,
    ] {
        c.bench_function(&format!("surrogate/{}_fit100", kind.name()), |b| {
            b.iter(|| {
                let mut m = kind.build(3);
                m.fit(&x, &y);
                m
            })
        });
        let mut fitted = kind.build(3);
        fitted.fit(&x, &y);
        c.bench_function(&format!("surrogate/{}_predict", kind.name()), |b| {
            b.iter(|| fitted.predict(&[0.3, 0.7, 0.2, 0.9]))
        });
    }
}

fn bench_optimizers(c: &mut Criterion) {
    c.bench_function("bayes/ask_tell_cycle_after_20obs", |b| {
        b.iter_batched(
            || {
                let mut opt =
                    BayesOpt::new(Space::new().real("x", 0.0, 1.0).real("y", 0.0, 1.0), 4)
                        .acq_func(Acquisition::Ei)
                        .n_initial_points(5)
                        .n_candidate_points(128);
                for _ in 0..20 {
                    let p = opt.ask();
                    let v = (p[0] - 0.3).powi(2) + (p[1] - 0.6).powi(2);
                    opt.tell(p, v);
                }
                opt
            },
            |mut opt| {
                let p = opt.ask();
                let v = (p[0] - 0.3).powi(2) + (p[1] - 0.6).powi(2);
                opt.tell(p, v);
                opt
            },
            BatchSize::SmallInput,
        )
    });

    c.bench_function("metaheuristics/de_1000_evals_sphere", |b| {
        let space = Space::new().real("x", -5.0, 5.0).real("y", -5.0, 5.0);
        b.iter(|| {
            let mut de = DifferentialEvolution::new(9);
            let mut f = |p: &[f64]| p.iter().map(|v| v * v).sum::<f64>();
            de.minimize(&space, &mut f, 1000)
        })
    });
}

fn bench_dists(c: &mut Criterion) {
    c.bench_function("dist/lognormal_sample", |b| {
        let d = Dist::LogNormal {
            mean: 0.8,
            cv: 0.45,
        };
        let mut rng = StdRng::seed_from_u64(11);
        b.iter(|| d.sample(&mut rng))
    });
}

fn tuned() -> Criterion {
    // Keep `cargo bench --workspace` wall-clock modest: the full engine
    // runs inside some benches are the dominant cost.
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = tuned();
    targets = bench_des_kernel, bench_samplers, bench_surrogates, bench_optimizers, bench_dists
}
criterion_main!(benches);
