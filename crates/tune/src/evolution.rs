//! Ask/tell evolutionary search for short-running applications.
//!
//! §III-B2: applications whose evaluation takes only minutes "can use
//! other optimization techniques such as evolutionary algorithms". Batch
//! metaheuristics (e2c-optim's GA/DE/...) need the objective inline; this
//! adapter re-expresses a generational GA as a [`Searcher`] so the same
//! parallel trial runner (and its concurrency limiter / scheduler stack)
//! drives it.
//!
//! Protocol: asks serve individuals of the current generation; once every
//! individual of a generation has been observed, the next generation is
//! bred (tournament selection, blend crossover, Gaussian mutation,
//! elitism of one).

use crate::searcher::Searcher;
use e2c_optim::space::{Point, Space};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Generational GA behind the ask/tell interface.
pub struct EvolutionSearch {
    space: Space,
    rng: StdRng,
    pop_size: usize,
    mutation_rate: f64,
    mutation_sigma: f64,
    crossover_rate: f64,
    tournament: usize,
    /// Unit-coordinate individuals of the current generation.
    generation: Vec<Vec<f64>>,
    /// Fitness per individual (filled as observations arrive).
    fitness: Vec<Option<f64>>,
    /// Next individual to hand out.
    cursor: usize,
    /// trial id → generation slot.
    inflight: BTreeMap<u64, usize>,
    /// Best-ever individual (unit coords) and value, for elitism.
    best: Option<(Vec<f64>, f64)>,
}

impl EvolutionSearch {
    /// GA search over `space` with the given population size.
    pub fn new(space: Space, pop_size: usize, seed: u64) -> Self {
        assert!(pop_size >= 2, "population needs at least two individuals");
        let mut rng = StdRng::seed_from_u64(seed);
        let dims = space.len();
        let generation: Vec<Vec<f64>> = (0..pop_size)
            .map(|_| (0..dims).map(|_| rng.gen::<f64>()).collect())
            .collect();
        EvolutionSearch {
            space,
            rng,
            pop_size,
            mutation_rate: 0.15,
            mutation_sigma: 0.1,
            crossover_rate: 0.9,
            tournament: 3,
            fitness: vec![None; pop_size],
            generation,
            cursor: 0,
            inflight: BTreeMap::new(),
            best: None,
        }
    }

    /// Best observed point so far.
    pub fn best(&self) -> Option<(Point, f64)> {
        self.best
            .as_ref()
            .map(|(u, v)| (self.space.from_unit(u), *v))
    }

    fn tournament_pick(&mut self) -> usize {
        let n = self.pop_size;
        let mut best = self.rng.gen_range(0..n);
        for _ in 1..self.tournament {
            let c = self.rng.gen_range(0..n);
            let fc = self.fitness[c].expect("generation fully evaluated");
            let fb = self.fitness[best].expect("generation fully evaluated");
            if fc < fb {
                best = c;
            }
        }
        best
    }

    fn breed_next_generation(&mut self) {
        let dims = self.space.len();
        let mut next: Vec<Vec<f64>> = Vec::with_capacity(self.pop_size);
        // Elitism: re-inject the best-ever individual.
        if let Some((elite, _)) = &self.best {
            next.push(elite.clone());
        }
        while next.len() < self.pop_size {
            let p1 = self.tournament_pick();
            let p2 = self.tournament_pick();
            let mut child: Vec<f64> = if self.rng.gen::<f64>() < self.crossover_rate {
                (0..dims)
                    .map(|d| {
                        let w = self.rng.gen::<f64>();
                        self.generation[p1][d] * w + self.generation[p2][d] * (1.0 - w)
                    })
                    .collect()
            } else {
                self.generation[p1].clone()
            };
            for g in child.iter_mut() {
                if self.rng.gen::<f64>() < self.mutation_rate {
                    let step = self.mutation_sigma * 2.0 * (self.rng.gen::<f64>() - 0.5);
                    *g = (*g + step).clamp(0.0, 1.0);
                }
            }
            next.push(child);
        }
        self.generation = next;
        self.fitness = vec![None; self.pop_size];
        self.cursor = 0;
    }
}

impl Searcher for EvolutionSearch {
    fn suggest(&mut self, trial_id: u64) -> Option<Point> {
        if self.cursor >= self.pop_size {
            // Generation exhausted; breed once everything is observed.
            if self.fitness.iter().all(|f| f.is_some()) {
                self.breed_next_generation();
            } else {
                return None; // wait for stragglers
            }
        }
        let slot = self.cursor;
        self.cursor += 1;
        self.inflight.insert(trial_id, slot);
        Some(self.space.from_unit(&self.generation[slot]))
    }

    fn observe(&mut self, trial_id: u64, value: f64) {
        let slot = self
            .inflight
            .remove(&trial_id)
            .expect("observe for unknown trial");
        self.fitness[slot] = Some(value);
        let unit = self.generation[slot].clone();
        match &self.best {
            Some((_, bv)) if *bv <= value => {}
            _ => self.best = Some((unit, value)),
        }
    }

    fn space(&self) -> &Space {
        &self.space
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> Space {
        Space::new().int("x", 0, 40).real("y", 0.0, 1.0)
    }

    fn objective(p: &[f64]) -> f64 {
        (p[0] - 13.0).powi(2) + (p[1] - 0.7).powi(2) * 50.0
    }

    #[test]
    fn generational_protocol_improves() {
        let mut s = EvolutionSearch::new(space(), 10, 4);
        let mut first_gen_best = f64::INFINITY;
        let mut trial = 0u64;
        // Generation 0.
        for _ in 0..10 {
            let p = s.suggest(trial).expect("gen 0 individual");
            let v = objective(&p);
            first_gen_best = first_gen_best.min(v);
            s.observe(trial, v);
            trial += 1;
        }
        // Several more generations.
        for _ in 0..8 {
            for _ in 0..10 {
                let p = s.suggest(trial).expect("next generation");
                let v = objective(&p);
                s.observe(trial, v);
                trial += 1;
            }
        }
        let (bx, bv) = s.best().expect("observed");
        assert!(bv <= first_gen_best, "no improvement over gen 0");
        assert!(bv < 5.0, "best {bv} at {bx:?}");
        assert!(s.space().contains(&bx));
    }

    #[test]
    fn waits_for_stragglers_at_generation_boundary() {
        let mut s = EvolutionSearch::new(space(), 4, 1);
        let p: Vec<_> = (0..4).map(|id| s.suggest(id).expect("gen 0")).collect();
        // Only 3 of 4 observed: the searcher must hold the next generation.
        s.observe(0, objective(&p[0]));
        s.observe(1, objective(&p[1]));
        s.observe(2, objective(&p[2]));
        assert!(s.suggest(4).is_none(), "must wait for the straggler");
        s.observe(3, objective(&p[3]));
        assert!(s.suggest(5).is_some(), "new generation after last observe");
    }

    #[test]
    fn elitism_preserves_best() {
        let mut s = EvolutionSearch::new(space(), 6, 9);
        let mut trial = 0u64;
        for _ in 0..6 {
            let p = s.suggest(trial).expect("gen 0");
            s.observe(trial, objective(&p));
            trial += 1;
        }
        let (_, best_after_g0) = s.best().expect("observed");
        for _ in 0..5 {
            for _ in 0..6 {
                let p = s.suggest(trial).expect("individual");
                s.observe(trial, objective(&p));
                trial += 1;
            }
            let (_, best_now) = s.best().expect("observed");
            assert!(best_now <= best_after_g0, "elite lost");
        }
    }

    #[test]
    fn works_under_the_tuner() {
        use crate::scheduler::Fifo;
        use crate::tuner::{Mode, Tuner};
        use std::sync::Arc;
        let tuner = Tuner::new(60, 3, Mode::Min);
        let analysis = tuner.run(
            Box::new(EvolutionSearch::new(space(), 10, 5)),
            Arc::new(Fifo),
            |cfg, _| objective(cfg),
        );
        assert_eq!(analysis.trials().len(), 60);
        assert!(analysis.best_trial().unwrap().value().unwrap() < 10.0);
    }
}
