//! Experiment results.

use crate::trial::Trial;
use crate::tuner::Mode;

/// The outcome of a [`Tuner::run`](crate::tuner::Tuner::run): every trial,
/// plus helpers to find the best one and render a report.
#[derive(Debug, Clone)]
pub struct Analysis {
    name: String,
    metric: String,
    mode: Mode,
    trials: Vec<Trial>,
}

impl Analysis {
    /// Package finished trials.
    pub fn new(name: String, metric: String, mode: Mode, trials: Vec<Trial>) -> Self {
        Analysis {
            name,
            metric,
            mode,
            trials,
        }
    }

    /// Experiment name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Metric name.
    pub fn metric(&self) -> &str {
        &self.metric
    }

    /// Metric direction.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// All trials in id order.
    pub fn trials(&self) -> &[Trial] {
        &self.trials
    }

    /// The trial with the best final value (respecting the mode); `None`
    /// when every trial failed.
    pub fn best_trial(&self) -> Option<&Trial> {
        self.trials
            .iter()
            .filter_map(|t| t.value().map(|v| (t, v)))
            .min_by(|a, b| {
                let (ka, kb) = match self.mode {
                    Mode::Min => (a.1, b.1),
                    Mode::Max => (-a.1, -b.1),
                };
                ka.partial_cmp(&kb).expect("NaN metric in analysis")
            })
            .map(|(t, _)| t)
    }

    /// Best configuration (external units), if any trial succeeded.
    pub fn best_config(&self) -> Option<&[f64]> {
        self.best_trial().map(|t| t.config.as_slice())
    }

    /// Number of trials the scheduler stopped early.
    pub fn stopped_early_count(&self) -> usize {
        self.trials.iter().filter(|t| t.stopped_early()).count()
    }

    /// Cumulative best value after each finished trial (in id order) —
    /// the convergence curve of the optimization.
    pub fn convergence(&self) -> Vec<f64> {
        let mut best = match self.mode {
            Mode::Min => f64::INFINITY,
            Mode::Max => f64::NEG_INFINITY,
        };
        let mut curve = Vec::new();
        for t in &self.trials {
            if let Some(v) = t.value() {
                best = match self.mode {
                    Mode::Min => best.min(v),
                    Mode::Max => best.max(v),
                };
            }
            if best.is_finite() {
                curve.push(best);
            }
        }
        curve
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trial::TrialStatus;

    fn trial(id: u64, value: Option<f64>) -> Trial {
        let mut t = Trial::new(id, vec![id as f64]);
        t.status = match value {
            Some(v) => TrialStatus::Terminated(v),
            None => TrialStatus::Failed("x".into()),
        };
        t
    }

    #[test]
    fn best_trial_min_and_max() {
        let trials = vec![
            trial(0, Some(5.0)),
            trial(1, Some(2.0)),
            trial(2, Some(8.0)),
        ];
        let a = Analysis::new("e".into(), "m".into(), Mode::Min, trials.clone());
        assert_eq!(a.best_trial().unwrap().id, 1);
        let a = Analysis::new("e".into(), "m".into(), Mode::Max, trials);
        assert_eq!(a.best_trial().unwrap().id, 2);
    }

    #[test]
    fn failed_trials_excluded_from_best() {
        let trials = vec![trial(0, None), trial(1, Some(3.0))];
        let a = Analysis::new("e".into(), "m".into(), Mode::Min, trials);
        assert_eq!(a.best_trial().unwrap().id, 1);
        assert_eq!(a.best_config(), Some(&[1.0][..]));
    }

    #[test]
    fn all_failed_yields_none() {
        let a = Analysis::new("e".into(), "m".into(), Mode::Min, vec![trial(0, None)]);
        assert!(a.best_trial().is_none());
    }

    #[test]
    fn convergence_is_monotone() {
        let trials = vec![
            trial(0, Some(5.0)),
            trial(1, Some(7.0)),
            trial(2, Some(2.0)),
            trial(3, Some(4.0)),
        ];
        let a = Analysis::new("e".into(), "m".into(), Mode::Min, trials);
        assert_eq!(a.convergence(), vec![5.0, 5.0, 2.0, 2.0]);
    }
}
