//! The run journal: a typed write-ahead log of everything the tuner
//! decides, and the replay that rebuilds searcher/scheduler state after a
//! crash.
//!
//! Every state transition of a journaled run is appended (and fsync'd) to
//! an [`e2c_journal::Wal`] *after* it takes effect in memory. Appends
//! happen in the run's *canonical commit order*: asks are journaled in
//! id order as the sequencer admits them, and each trial's effects
//! (reports, attempts, tell) are journaled as one block when the trial
//! commits — so the journal's record order *is* the searcher/scheduler
//! op order, under any worker interleaving, and replay re-drives both to
//! the same state by simply walking the records.
//!
//! The wire format is versioned ([`WIRE_VERSION`], carried by the meta
//! record). Version 2 added the tell record's ask count — the ask/commit
//! permutation — letting replay verify that the interleaving it
//! reconstructs matches the one the live run journaled. Version 1
//! records (no meta version, 7-field tells) still parse.
//!
//! Field parsing is *strict and version-uniform*: integers must be
//! canonical decimals (no sign, no leading zeros, and the attempt index
//! must fit `u32`), floats must be the exact shortest-round-trip
//! `Display` spelling the encoder writes (`NaN`/`inf`/`-inf` round-trip;
//! `nan`, `+inf`, `infinity`, `1e6`, `007` are rejected), and escapes are
//! limited to the four the escaper emits. Consequently every *accepted*
//! record — v1 or v2 — re-encodes byte-identically, which is the
//! roundtrip property `e2clab fuzz --codec journal_wire` checks.
//!
//! * [`RunEvent::Meta`] — the wire version and a configuration
//!   fingerprint, written first; resume refuses a journal whose
//!   fingerprint does not match or whose version is newer than this
//!   build understands.
//! * [`RunEvent::Ask`] — the searcher suggested a configuration for a
//!   trial (the RNG stream advanced by one draw).
//! * [`RunEvent::Restart`] — a resumed run is re-executing a trial that
//!   was mid-flight at the crash; all earlier partial records of that
//!   trial are discarded by subsequent replays.
//! * [`RunEvent::Report`] — an intermediate metric report and the
//!   scheduler's rung decision for it.
//! * [`RunEvent::Attempt`] — one execution attempt's outcome (typed
//!   error, raw objective return when the objective actually ran).
//! * [`RunEvent::Tell`] — the searcher was fed the trial's final
//!   feedback; carries the trial's settled status and, when tracing, the
//!   `(events, virtual-time)` mark the trace can be truncated back to.
//! * [`RunEvent::Complete`] — the sample budget is spent.
//!
//! [`replay`] rebuilds state *by re-execution*: every journaled `Ask` is
//! re-asked against a freshly seeded searcher and the suggestion is
//! compared byte-for-byte against the journal — this restores the RNG
//! stream position implicitly and turns a mismatched seed, space or
//! search configuration into a hard error instead of silent divergence.
//! Scheduler decisions are re-derived and verified the same way.
//!
//! Trials that were asked but never told ("dangling") are returned as
//! pending work: the resumed run re-executes them from attempt 0 with the
//! journaled configuration, regenerating their scheduler reports, trace
//! events and archive rows exactly as an uninterrupted run would have.

use crate::scheduler::{Decision, Scheduler};
use crate::searcher::Searcher;
use crate::trial::{Attempt, Trial, TrialError, TrialStatus};
use crate::tuner::Mode;
use e2c_optim::space::Point;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Exit code of a `--crash-at` self-kill, distinct from ordinary failure
/// exits so the chaos harness can tell a scripted crash from a bug.
pub const CRASH_EXIT_CODE: i32 = 86;

/// Current journal wire version, carried by [`RunEvent::Meta`]. Version 2
/// added the meta version field itself and the tell record's ask count
/// (the ask/commit permutation). Replay accepts any version up to this
/// one and hard-errors on journals from a newer build.
pub const WIRE_VERSION: u64 = 2;

/// One journaled state transition. See the module docs for the protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum RunEvent {
    /// Wire version and configuration fingerprint (always the first
    /// record). Build with [`RunEvent::meta`]; `version` only differs
    /// from [`WIRE_VERSION`] when parsed back from an older journal.
    Meta { version: u64, fingerprint: String },
    /// The searcher proposed `config` for `trial`.
    Ask { trial: u64, config: Point },
    /// A resumed run is re-executing the dangling `trial` from scratch.
    Restart { trial: u64 },
    /// Intermediate report: the scheduler saw `normalized` at
    /// `iteration` and answered `stop`.
    Report {
        trial: u64,
        iteration: u64,
        normalized: f64,
        stop: bool,
    },
    /// One execution attempt finished. `raw` is the objective's return
    /// value when it was actually invoked and returned (even if the
    /// attempt was then classified as failed), `None` when the objective
    /// never ran or panicked.
    Attempt {
        trial: u64,
        index: u32,
        secs: f64,
        raw: Option<f64>,
        error: Option<TrialError>,
    },
    /// The searcher was fed `feedback` for the settled `trial`.
    /// `status`/`value` settle the trial record; `trace_mark` is the
    /// tracer's `(event count, virtual time)` right after the tell event.
    /// `asks` is the number of `Ask` records journaled before this tell —
    /// the run's ask/commit permutation, one point per commit — which
    /// replay verifies against its own running count (`None` only in
    /// version-1 journals, which were strictly sequential).
    Tell {
        trial: u64,
        feedback: f64,
        status: String,
        value: Option<f64>,
        trace_mark: Option<(u64, u64)>,
        asks: Option<u64>,
    },
    /// The sample budget is spent; artifacts may be (re)written.
    Complete,
}

// The field spelling — escaping, canonical integers and floats — is the
// shared `e2c_journal::wire` dialect, factored out so the worker-farm
// protocol (`crate::worker`) cannot drift from the journal's. The rules
// are the same for version-1 and version-2 records.
use e2c_journal::wire::{escape, parse_f64, parse_opt_f64, parse_u32, parse_u64, unescape};

impl RunEvent {
    /// A meta record at the current [`WIRE_VERSION`].
    pub fn meta(fingerprint: impl Into<String>) -> RunEvent {
        RunEvent::Meta {
            version: WIRE_VERSION,
            fingerprint: fingerprint.into(),
        }
    }

    /// Serialize as one tab-separated line. `f64` fields use Rust's
    /// shortest-round-trip `Display`, so parsing back is exact. The line
    /// is assembled in a single buffer — no per-field allocations — which
    /// matters because every journaled state transition encodes through
    /// here before its fsync'd append.
    pub fn to_line(&self) -> String {
        use std::fmt::Write;
        let mut line = String::with_capacity(48);
        // Writing to a String cannot fail; the results are discarded with
        // `let _ =` instead of unwrapped so the encode path — which runs
        // inside the commit sequence of every journaled transition —
        // carries no panic sites.
        match self {
            // Version-1 metas re-serialize in their original 2-field
            // form, so appending to an old journal never rewrites it.
            RunEvent::Meta {
                version: 1,
                fingerprint,
            } => {
                let _ = write!(line, "meta\t{}", escape(fingerprint));
            }
            RunEvent::Meta {
                version,
                fingerprint,
            } => {
                let _ = write!(line, "meta\t{version}\t{}", escape(fingerprint));
            }
            RunEvent::Ask { trial, config } => {
                let _ = write!(line, "ask\t{trial}\t");
                for (i, v) in config.iter().enumerate() {
                    if i > 0 {
                        line.push(',');
                    }
                    let _ = write!(line, "{v}");
                }
            }
            RunEvent::Restart { trial } => {
                let _ = write!(line, "restart\t{trial}");
            }
            RunEvent::Report {
                trial,
                iteration,
                normalized,
                stop,
            } => {
                let _ = write!(
                    line,
                    "report\t{trial}\t{iteration}\t{normalized}\t{}",
                    if *stop { "stop" } else { "continue" }
                );
            }
            RunEvent::Attempt {
                trial,
                index,
                secs,
                raw,
                error,
            } => {
                let _ = write!(line, "attempt\t{trial}\t{index}\t{secs}\t");
                match raw {
                    Some(r) => {
                        let _ = write!(line, "{r}");
                    }
                    None => line.push('-'),
                }
                match error {
                    Some(e) => {
                        let _ = write!(line, "\t{}\t{}", e.kind(), escape(e.payload()));
                    }
                    None => line.push_str("\t-\t"),
                }
            }
            RunEvent::Tell {
                trial,
                feedback,
                status,
                value,
                trace_mark,
                asks,
            } => {
                let _ = write!(line, "tell\t{trial}\t{feedback}\t{status}\t");
                match value {
                    Some(v) => {
                        let _ = write!(line, "{v}");
                    }
                    None => line.push('-'),
                }
                match trace_mark {
                    Some((e, v)) => {
                        let _ = write!(line, "\t{e}\t{v}");
                    }
                    None => line.push_str("\t-\t-"),
                }
                // The ask count is the 8th field, appended only when
                // present — a version-1 tell stays 7 fields.
                if let Some(a) = asks {
                    let _ = write!(line, "\t{a}");
                }
            }
            RunEvent::Complete => line.push_str("complete"),
        }
        line
    }

    /// Parse a line produced by [`RunEvent::to_line`]. Matching on field
    /// *slices* (not positional indexing) makes every arity check part of
    /// the pattern, so a short record is a typed error, never a panic —
    /// this is journal-recovery code, and a corrupt record must surface
    /// as `Err`, not tear the resuming process down.
    pub fn parse(line: &str) -> Result<RunEvent, String> {
        let fields: Vec<&str> = line.split('\t').collect();
        let int = parse_u64;
        match fields.as_slice() {
            // 2 fields: legacy version-1 form; 3 fields: versioned.
            ["meta", fingerprint] => Ok(RunEvent::Meta {
                version: 1,
                fingerprint: unescape(fingerprint)?,
            }),
            ["meta", version, fingerprint] => {
                let version = int(version)?;
                // A version-1 meta is *defined* as the 2-field form; a
                // 3-field `meta\t1\t...` would re-encode as 2 fields and
                // lose byte identity.
                if version == 1 {
                    return Err("3-field meta claims version 1 (the 2-field form)".to_string());
                }
                Ok(RunEvent::Meta {
                    version,
                    fingerprint: unescape(fingerprint)?,
                })
            }
            ["meta", ..] => Err(format!(
                "journal record `meta...`: expected 2 or 3 fields, got {}",
                fields.len()
            )),
            ["ask", trial, config] => {
                let config = if config.is_empty() {
                    Vec::new()
                } else {
                    config.split(',').map(parse_f64).collect::<Result<_, _>>()?
                };
                Ok(RunEvent::Ask {
                    trial: int(trial)?,
                    config,
                })
            }
            ["restart", trial] => Ok(RunEvent::Restart { trial: int(trial)? }),
            ["report", trial, iteration, normalized, decision] => {
                let stop = match *decision {
                    "stop" => true,
                    "continue" => false,
                    other => return Err(format!("bad decision `{other}`")),
                };
                Ok(RunEvent::Report {
                    trial: int(trial)?,
                    iteration: int(iteration)?,
                    normalized: parse_f64(normalized)?,
                    stop,
                })
            }
            ["attempt", trial, index, secs, raw, kind, payload] => {
                let error = if *kind == "-" {
                    // The no-error form writes an empty payload field;
                    // accepting a non-empty one here would drop it on
                    // re-encode.
                    if !payload.is_empty() {
                        return Err(format!(
                            "attempt without error carries a payload `{payload}`"
                        ));
                    }
                    None
                } else {
                    Some(TrialError::from_parts(kind, &unescape(payload)?)?)
                };
                Ok(RunEvent::Attempt {
                    trial: int(trial)?,
                    index: parse_u32(index)?,
                    secs: parse_f64(secs)?,
                    raw: parse_opt_f64(raw)?,
                    error,
                })
            }
            // 7 fields: version-1 form (no ask count); 8: versioned.
            ["tell", trial, feedback, status, value, mark_events, mark_vt] => {
                Self::parse_tell(trial, feedback, status, value, mark_events, mark_vt, None)
            }
            ["tell", trial, feedback, status, value, mark_events, mark_vt, asks] => {
                Self::parse_tell(
                    trial,
                    feedback,
                    status,
                    value,
                    mark_events,
                    mark_vt,
                    Some(int(asks)?),
                )
            }
            ["tell", ..] => Err(format!(
                "journal record `tell...`: expected 7 or 8 fields, got {}",
                fields.len()
            )),
            ["complete"] => Ok(RunEvent::Complete),
            [kind, ..]
                if matches!(*kind, "ask" | "restart" | "report" | "attempt" | "complete") =>
            {
                Err(format!(
                    "journal record `{kind}...`: wrong field count ({})",
                    fields.len()
                ))
            }
            [other, ..] => Err(format!("unknown journal record `{other}`")),
            [] => Err("empty journal record".to_string()),
        }
    }

    /// Shared body of the two tell arities.
    #[allow(clippy::too_many_arguments)]
    fn parse_tell(
        trial: &str,
        feedback: &str,
        status: &str,
        value: &str,
        mark_events: &str,
        mark_vt: &str,
        asks: Option<u64>,
    ) -> Result<RunEvent, String> {
        let trace_mark = match (mark_events, mark_vt) {
            ("-", "-") => None,
            (e, v) => Some((parse_u64(e)?, parse_u64(v)?)),
        };
        Ok(RunEvent::Tell {
            trial: parse_u64(trial)?,
            feedback: parse_f64(feedback)?,
            status: status.to_string(),
            value: parse_opt_f64(value)?,
            trace_mark,
            asks,
        })
    }
}

struct JournalInner {
    wal: Mutex<e2c_journal::Wal>,
    /// Records appended *by this process* (replayed records don't count):
    /// the `--crash-at` boundary index is per-process.
    appended: AtomicU64,
    crash_after: Option<u64>,
}

/// Shared, cheap-to-clone handle onto the run's write-ahead log.
///
/// Appends never fail softly: a journal that cannot persist invalidates
/// every crash-safety promise, so an append error aborts the process
/// (exit 1) rather than continuing with an unprotected run.
#[derive(Clone)]
pub struct RunJournal {
    inner: Arc<JournalInner>,
}

impl RunJournal {
    /// Wrap an open WAL. `crash_after` arms the chaos knob: the process
    /// exits with [`CRASH_EXIT_CODE`] immediately after the Nth record
    /// (1-based, counted in this process) is durably appended.
    pub fn new(wal: e2c_journal::Wal, crash_after: Option<u64>) -> Self {
        RunJournal {
            inner: Arc::new(JournalInner {
                wal: Mutex::new(wal),
                appended: AtomicU64::new(0),
                crash_after,
            }),
        }
    }

    /// Append one event; fsync'd before returning. May exit the process
    /// (see [`RunJournal::new`] and the type docs).
    pub fn append(&self, event: &RunEvent) {
        let line = event.to_line();
        {
            let mut wal = self.inner.wal.lock();
            // detlint: allow(LOCK001) the WAL mutex IS the append serialization point — every holder is doing exactly this fsync'd append, there is no faster work being starved
            if let Err(e) = wal.append(line.as_bytes()) {
                eprintln!("journal: append to {} failed: {e}", wal.path().display());
                std::process::exit(1);
            }
        }
        let n = self.inner.appended.fetch_add(1, Ordering::SeqCst) + 1;
        if self.inner.crash_after == Some(n) {
            eprintln!("journal: --crash-at {n}: simulated crash after record boundary");
            std::process::exit(CRASH_EXIT_CODE);
        }
    }

    /// Records appended by this process so far.
    pub fn appended(&self) -> u64 {
        self.inner.appended.load(Ordering::SeqCst)
    }
}

/// Everything [`replay`] recovered from the journal: the tuner continues
/// a run from this instead of starting fresh.
#[derive(Debug, Clone, Default)]
pub struct ResumeState {
    /// Settled trials, in tell order (re-sorted by id for the analysis).
    pub trials: Vec<Trial>,
    /// Dangling trials to re-execute, in ask order: `(id, config)`.
    pub pending: Vec<(u64, Point)>,
    /// Next fresh trial id (all smaller ids are settled or pending).
    pub next_id: u64,
    /// Running maximum of normalized successful values (feeds the
    /// failure penalty).
    pub worst_seen: f64,
    /// Whether the journal already holds a [`RunEvent::Complete`].
    pub complete: bool,
    /// Latest trace mark among tells: truncate the streamed trace to
    /// this many events and restore the virtual clock to this tick.
    pub trace_mark: Option<(u64, u64)>,
    /// Ask count recorded by the tell that [`ResumeState::trace_mark`]
    /// came from: asks with an index at or past this were journaled
    /// *after* the mark, so their trace points are truncated away with
    /// the pre-crash suffix and must be re-emitted when the dangling
    /// trial re-dispatches. `None` (version-1 journal, or no marked tell
    /// yet) means re-emit, matching strictly sequential behaviour.
    pub asks_at_mark: Option<u64>,
}

impl ResumeState {
    /// A state equivalent to "nothing happened yet".
    pub fn empty() -> Self {
        ResumeState {
            worst_seen: f64::NEG_INFINITY,
            ..Default::default()
        }
    }
}

/// Read a journal's records back as parsed events.
pub fn load_events(path: &Path) -> Result<Vec<RunEvent>, String> {
    let records =
        e2c_journal::read_records(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    records
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let line = std::str::from_utf8(r)
                .map_err(|e| format!("journal record {i}: not UTF-8: {e}"))?;
            RunEvent::parse(line).map_err(|e| format!("journal record {i}: {e}"))
        })
        .collect()
}

/// Rebuild run state by re-executing the journal against freshly seeded
/// components. `searcher` and `scheduler` must be constructed exactly as
/// for the original run; every re-derived suggestion and scheduler
/// decision is verified against the journal and a divergence (different
/// seed, space, search or scheduler configuration) is a hard error.
pub fn replay(
    events: &[RunEvent],
    searcher: &mut dyn Searcher,
    scheduler: &dyn Scheduler,
    mode: Mode,
) -> Result<ResumeState, String> {
    // Pass 1: which trials settled, where each trial's canonical timeline
    // starts (after its last restart), and the latest trace mark.
    let mut last_restart: BTreeMap<u64, usize> = BTreeMap::new();
    let mut settled: BTreeMap<u64, usize> = BTreeMap::new();
    let mut complete = false;
    let mut trace_mark: Option<(u64, u64)> = None;
    let mut asks_at_mark: Option<u64> = None;
    for (i, ev) in events.iter().enumerate() {
        match ev {
            RunEvent::Restart { trial } => {
                last_restart.insert(*trial, i);
            }
            RunEvent::Tell {
                trial,
                trace_mark: mark,
                asks,
                ..
            } => {
                if settled.insert(*trial, i).is_some() {
                    return Err(format!("journal tells trial {trial} twice"));
                }
                if let Some(m) = mark {
                    if trace_mark.is_none_or(|t| m.0 > t.0) {
                        trace_mark = Some(*m);
                        asks_at_mark = *asks;
                    }
                }
            }
            RunEvent::Complete => complete = true,
            _ => {}
        }
    }
    // A record is part of a trial's canonical timeline only after the
    // trial's last restart — everything before was abandoned mid-flight.
    let canonical = |trial: u64, i: usize| last_restart.get(&trial).is_none_or(|r| i > *r);

    // Pass 2: re-execute in order.
    let mut asked: Vec<(u64, Point)> = Vec::new();
    let mut configs: BTreeMap<u64, Point> = BTreeMap::new();
    let mut cur_attempts: BTreeMap<u64, Vec<Attempt>> = BTreeMap::new();
    let mut cur_reports: BTreeMap<u64, Vec<(u64, f64)>> = BTreeMap::new();
    let mut last_reports: BTreeMap<u64, Vec<(u64, f64)>> = BTreeMap::new();
    let mut state = ResumeState::empty();
    state.complete = complete;
    state.trace_mark = trace_mark;
    state.asks_at_mark = asks_at_mark;
    let mut asks_seen: u64 = 0;
    for (i, ev) in events.iter().enumerate() {
        match ev {
            RunEvent::Meta { version, .. } => {
                if i != 0 {
                    return Err("journal meta record is not first".to_string());
                }
                if *version > WIRE_VERSION {
                    return Err(format!(
                        "journal wire version {version} is newer than this build \
                         understands (max {WIRE_VERSION})"
                    ));
                }
            }
            RunEvent::Ask { trial, config } => {
                let suggested = searcher.suggest(*trial).ok_or_else(|| {
                    format!("searcher refused to re-suggest trial {trial} during replay — the journal does not match this configuration")
                })?;
                if suggested != *config {
                    return Err(format!(
                        "replayed suggestion for trial {trial} diverges from the journal \
                         (got {suggested:?}, journal has {config:?}) — the journal was \
                         recorded with a different seed or search configuration"
                    ));
                }
                asked.push((*trial, config.clone()));
                configs.insert(*trial, config.clone());
                state.next_id = state.next_id.max(trial + 1);
                asks_seen += 1;
            }
            RunEvent::Restart { trial } => {
                // Discard the pre-crash partial state of the trial; the
                // records that follow are its canonical timeline.
                cur_attempts.remove(trial);
                cur_reports.remove(trial);
                last_reports.remove(trial);
            }
            RunEvent::Report {
                trial,
                iteration,
                normalized,
                stop,
            } => {
                if !(settled.contains_key(trial) && canonical(*trial, i)) {
                    continue; // the re-run will regenerate this report
                }
                let decision = scheduler.on_report(*trial, *iteration, *normalized);
                let expect = if *stop {
                    Decision::Stop
                } else {
                    Decision::Continue
                };
                if decision != expect {
                    return Err(format!(
                        "replayed scheduler decision for trial {trial} iteration {iteration} \
                         diverges from the journal — the journal was recorded with a \
                         different scheduler configuration"
                    ));
                }
                let value = match mode {
                    Mode::Min => *normalized,
                    Mode::Max => -*normalized,
                };
                cur_reports
                    .entry(*trial)
                    .or_default()
                    .push((*iteration, value));
            }
            RunEvent::Attempt {
                trial,
                index,
                secs,
                raw,
                error,
            } => {
                if !(settled.contains_key(trial) && canonical(*trial, i)) {
                    continue;
                }
                cur_attempts.entry(*trial).or_default().push(Attempt {
                    index: *index,
                    error: error.clone(),
                    secs: *secs,
                    raw: *raw,
                });
                last_reports.insert(*trial, cur_reports.remove(trial).unwrap_or_default());
            }
            RunEvent::Tell {
                trial,
                feedback,
                status,
                value,
                asks,
                ..
            } => {
                if let Some(a) = asks {
                    if *a != asks_seen {
                        return Err(format!(
                            "ask/commit permutation diverges at trial {trial}: the \
                             journal committed it after {a} asks but replay has \
                             re-driven {asks_seen} — the journal was recorded with \
                             a different concurrency or is corrupt"
                        ));
                    }
                }
                searcher.observe(*trial, *feedback);
                let attempts = cur_attempts.remove(trial).unwrap_or_default();
                let reports = last_reports.remove(trial).unwrap_or_default();
                let config = configs
                    .get(trial)
                    .cloned()
                    .ok_or_else(|| format!("journal tells trial {trial} before asking it"))?;
                let need_value = || {
                    value.ok_or_else(|| {
                        format!("journal tell for trial {trial} is missing its value")
                    })
                };
                let status = match status.as_str() {
                    "terminated" => TrialStatus::Terminated(need_value()?),
                    "stopped_early" => TrialStatus::StoppedEarly(need_value()?),
                    "failed" => {
                        let reason = attempts
                            .last()
                            .and_then(|a| a.error.as_ref())
                            .map(|e| e.to_string())
                            .unwrap_or_default();
                        TrialStatus::Failed(reason)
                    }
                    other => return Err(format!("unknown journal status `{other}`")),
                };
                if !matches!(status, TrialStatus::Failed(_)) {
                    state.worst_seen = state.worst_seen.max(*feedback);
                }
                state.trials.push(Trial {
                    id: *trial,
                    config,
                    status,
                    reports,
                    attempts,
                });
            }
            RunEvent::Complete => {}
        }
    }
    state.pending = asked
        .into_iter()
        .filter(|(id, _)| !settled.contains_key(id))
        .collect();
    state.trials.sort_by_key(|t| t.id);
    Ok(state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::Fifo;
    use crate::searcher::{ConcurrencyLimiter, RandomSearch};
    use e2c_optim::space::Space;

    fn space() -> Space {
        Space::new().int("x", 0, 20)
    }

    #[test]
    fn events_round_trip_through_the_wire_format() {
        let events = vec![
            RunEvent::meta("name: x\nseed: 7\ttabbed"),
            RunEvent::Meta {
                version: 1,
                fingerprint: "legacy".into(),
            },
            RunEvent::Ask {
                trial: 0,
                config: vec![4.0, -0.5],
            },
            RunEvent::Restart { trial: 3 },
            RunEvent::Report {
                trial: 1,
                iteration: 2,
                normalized: 0.1,
                stop: true,
            },
            RunEvent::Attempt {
                trial: 1,
                index: 0,
                secs: 0.25,
                raw: Some(f64::NAN),
                error: Some(TrialError::NonFinite("NaN".into())),
            },
            RunEvent::Attempt {
                trial: 1,
                index: 1,
                secs: 0.5,
                raw: None,
                error: Some(TrialError::Panicked("boom\nnewline \\ tab\t".into())),
            },
            RunEvent::Tell {
                trial: 1,
                feedback: 2.5,
                status: "terminated".into(),
                value: Some(2.5),
                trace_mark: Some((17, 42)),
                asks: Some(3),
            },
            RunEvent::Tell {
                trial: 2,
                feedback: 1e6,
                status: "failed".into(),
                value: None,
                trace_mark: None,
                asks: None,
            },
            RunEvent::Complete,
        ];
        for ev in events {
            let line = ev.to_line();
            let back = RunEvent::parse(&line).unwrap();
            // NaN breaks PartialEq; compare the canonical wire form.
            assert_eq!(back.to_line(), line, "{ev:?}");
        }
    }

    #[test]
    fn parse_rejects_malformed_records() {
        assert!(RunEvent::parse("bogus\t1").is_err());
        assert!(RunEvent::parse("ask\t1").is_err());
        assert!(RunEvent::parse("report\t1\t2\tx\tcontinue").is_err());
        assert!(RunEvent::parse("attempt\t1\t0\t0.1\t-\tweird\t").is_err());
        assert!(RunEvent::parse("meta\t2\tfp\textra").is_err());
        assert!(RunEvent::parse("tell\t0\t1\tterminated\t1\t-\t-\t3\textra").is_err());
    }

    /// The explicit field rejection rules (uniform across wire versions):
    /// canonical decimals, canonical `Display` floats, known escapes only.
    /// Every spelling here was *accepted* before this was pinned — the
    /// integer ones silently misparsing (`+5` → 5, index 2³² → 0).
    #[test]
    fn non_canonical_fields_are_rejected() {
        // Integers: sign, leading zeros, whitespace, overflow.
        for bad in ["+5", "07", " 5", "5 ", "-1", ""] {
            assert!(
                RunEvent::parse(&format!("restart\t{bad}")).is_err(),
                "{bad:?}"
            );
        }
        // Attempt index must fit u32 — 2³² used to truncate to index 0.
        assert!(RunEvent::parse("attempt\t1\t4294967296\t0.1\t-\t-\t").is_err());
        assert!(RunEvent::parse("attempt\t1\t4294967295\t0.1\t-\t-\t").is_ok());
        // Floats: only the canonical shortest-round-trip Display form.
        for bad in [
            "nan", "+inf", "infinity", "Infinity", "1e6", "00.5", "1.50", "+1",
        ] {
            let line = format!("report\t1\t2\t{bad}\tcontinue");
            assert!(RunEvent::parse(&line).is_err(), "{bad:?}");
        }
        for good in ["NaN", "inf", "-inf", "-0", "0.1", "1000000"] {
            let line = format!("report\t1\t2\t{good}\tcontinue");
            let ev = RunEvent::parse(&line).unwrap();
            // Accepted fields re-encode byte-identically.
            assert_eq!(ev.to_line(), line, "{good:?}");
        }
        // Escapes: only the four the escaper writes; `\q` used to decode
        // as `q`, making decode → encode lossy.
        assert!(RunEvent::parse("meta\t2\ta\\qb").is_err());
        assert!(RunEvent::parse("meta\t2\ttrailing\\").is_err());
        assert_eq!(
            RunEvent::parse("meta\t2\ta\\tb").unwrap(),
            RunEvent::Meta {
                version: 2,
                fingerprint: "a\tb".into()
            }
        );
        // Raw control characters in an escaped field can never re-encode
        // to the same bytes (the escaper writes `\n`), so they are
        // corruption, not content.
        assert!(RunEvent::parse("meta\t2\ttwo\nlines").is_err());
        assert!(RunEvent::parse("meta\t2\tcr\rhere").is_err());
        // A no-error attempt writes an empty payload field; a non-empty
        // one would silently vanish on re-encode.
        assert!(RunEvent::parse("attempt\t1\t0\t0.5\t-\t-\tstray").is_err());
        assert!(RunEvent::parse("attempt\t1\t0\t0.5\t-\t-\t").is_ok());
        // A 3-field meta claiming version 1 re-encodes as 2 fields.
        assert!(RunEvent::parse("meta\t1\tfp").is_err());
        assert!(RunEvent::parse("meta\t2\tfp").is_ok());
    }

    /// Decode → encode is the identity on every accepted line (parse is
    /// strict enough that nothing normalizes).
    #[test]
    fn accepted_lines_reencode_byte_identically() {
        for line in [
            "meta\tfp",
            "meta\t2\tfp\\n2",
            "ask\t3\t",
            "ask\t3\t1,2.5,NaN,-inf",
            "restart\t7",
            "report\t1\t2\t0.25\tstop",
            "attempt\t1\t0\t0.5\tNaN\tnonfinite\tNaN",
            "tell\t0\t1.5\tterminated\t1.5\t-\t-",
            "tell\t0\t1.5\tterminated\t1.5\t17\t42\t3",
            "complete",
        ] {
            let ev = RunEvent::parse(line).unwrap();
            assert_eq!(ev.to_line(), line);
        }
    }

    /// Version-1 journals (unversioned meta, 7-field tells) still parse,
    /// as the legacy variants.
    #[test]
    fn legacy_version_1_records_still_parse() {
        assert_eq!(
            RunEvent::parse("meta\tfp").unwrap(),
            RunEvent::Meta {
                version: 1,
                fingerprint: "fp".into()
            }
        );
        assert_eq!(
            RunEvent::parse("tell\t0\t1.5\tterminated\t1.5\t-\t-").unwrap(),
            RunEvent::Tell {
                trial: 0,
                feedback: 1.5,
                status: "terminated".into(),
                value: Some(1.5),
                trace_mark: None,
                asks: None,
            }
        );
    }

    #[test]
    fn replay_refuses_a_newer_wire_version() {
        let events = vec![RunEvent::Meta {
            version: WIRE_VERSION + 1,
            fingerprint: "f".into(),
        }];
        let mut fresh = RandomSearch::new(space(), 5);
        let err = replay(&events, &mut fresh, &Fifo, Mode::Min).unwrap_err();
        assert!(err.contains("newer than this build"), "{err}");
    }

    #[test]
    fn replay_hard_errors_on_a_divergent_ask_count() {
        let mut live = RandomSearch::new(space(), 5);
        let p0 = live.suggest(0).unwrap();
        let p1 = live.suggest(1).unwrap();
        let events = vec![
            RunEvent::meta("f"),
            RunEvent::Ask {
                trial: 0,
                config: p0.clone(),
            },
            RunEvent::Ask {
                trial: 1,
                config: p1,
            },
            RunEvent::Attempt {
                trial: 0,
                index: 0,
                secs: 0.1,
                raw: Some(p0[0]),
                error: None,
            },
            RunEvent::Tell {
                trial: 0,
                feedback: p0[0],
                status: "terminated".into(),
                value: Some(p0[0]),
                trace_mark: None,
                // The live run claims trial 0 committed after a single
                // ask, but the journal holds two — a corrupted or
                // misordered permutation record.
                asks: Some(1),
            },
        ];
        let mut fresh = RandomSearch::new(space(), 5);
        let err = replay(&events, &mut fresh, &Fifo, Mode::Min).unwrap_err();
        assert!(err.contains("ask/commit permutation diverges"), "{err}");
    }

    /// Drive a seeded searcher, journal its decisions by hand, then
    /// replay a prefix against a fresh instance and check the rebuilt
    /// state.
    #[test]
    fn replay_rebuilds_searcher_state_and_pending_work() {
        let mut live = ConcurrencyLimiter::new(RandomSearch::new(space(), 5), 1);
        let mut events = vec![RunEvent::meta("f")];
        let mut asked = Vec::new();
        for id in 0..3u64 {
            let p = live.suggest(id).unwrap();
            asked.push(p.clone());
            events.push(RunEvent::Ask {
                trial: id,
                config: p.clone(),
            });
            if id < 2 {
                events.push(RunEvent::Attempt {
                    trial: id,
                    index: 0,
                    secs: 0.1,
                    raw: Some(p[0]),
                    error: None,
                });
                live.observe(id, p[0]);
                events.push(RunEvent::Tell {
                    trial: id,
                    feedback: p[0],
                    status: "terminated".into(),
                    value: Some(p[0]),
                    trace_mark: None,
                    asks: Some(id + 1),
                });
            }
        }
        // Trial 2 dangles (asked, attempted nothing journaled, no tell).
        let mut fresh = ConcurrencyLimiter::new(RandomSearch::new(space(), 5), 1);
        let state = replay(&events, &mut fresh, &Fifo, Mode::Min).unwrap();
        assert_eq!(state.trials.len(), 2);
        assert_eq!(state.pending, vec![(2, asked[2].clone())]);
        assert_eq!(state.next_id, 3);
        assert!(!state.complete);
        // Raw objective returns ride on the rebuilt attempts (the traced
        // cycle re-feeds its observation histogram from these).
        assert_eq!(state.trials[0].attempts[0].raw, Some(asked[0][0]));
        assert_eq!(state.trials[1].attempts[0].raw, Some(asked[1][0]));
        assert_eq!(state.worst_seen, asked[0][0].max(asked[1][0]));
        // The limiter still accounts the dangling trial as in flight, and
        // the RNG stream continues exactly where the live searcher's did.
        assert_eq!(fresh.inflight(), 1);
        fresh.observe(2, 1.0);
        live.observe(2, 1.0);
        let next_live = live.suggest(3).unwrap();
        let next_fresh = fresh.suggest(3).unwrap();
        assert_eq!(next_live, next_fresh);
    }

    #[test]
    fn replay_discards_partial_records_before_a_restart() {
        let mut live = RandomSearch::new(space(), 9);
        let p0 = live.suggest(0).unwrap();
        let events = vec![
            RunEvent::meta("f"),
            RunEvent::Ask {
                trial: 0,
                config: p0.clone(),
            },
            // Pre-crash partial attempt, then the resumed run's restart
            // and canonical timeline.
            RunEvent::Attempt {
                trial: 0,
                index: 0,
                secs: 0.1,
                raw: Some(1.0),
                error: Some(TrialError::Panicked("pre-crash".into())),
            },
            RunEvent::Restart { trial: 0 },
            RunEvent::Attempt {
                trial: 0,
                index: 0,
                secs: 0.1,
                raw: Some(1.0),
                error: Some(TrialError::Panicked("canonical".into())),
            },
            RunEvent::Attempt {
                trial: 0,
                index: 1,
                secs: 0.1,
                raw: Some(2.0),
                error: None,
            },
            RunEvent::Tell {
                trial: 0,
                feedback: 2.0,
                status: "terminated".into(),
                value: Some(2.0),
                trace_mark: None,
                asks: Some(1),
            },
        ];
        let mut fresh = RandomSearch::new(space(), 9);
        let state = replay(&events, &mut fresh, &Fifo, Mode::Min).unwrap();
        let t = &state.trials[0];
        assert_eq!(t.attempts.len(), 2);
        assert_eq!(
            t.attempts[0].error,
            Some(TrialError::Panicked("canonical".into()))
        );
        // Only canonical attempts (with their raws) survive the replay.
        assert_eq!(t.attempts[0].raw, Some(1.0));
        assert_eq!(t.attempts[1].raw, Some(2.0));
    }

    #[test]
    fn replay_hard_errors_on_mismatched_seed() {
        let mut live = RandomSearch::new(space(), 5);
        let p = live.suggest(0).unwrap();
        let events = vec![
            RunEvent::meta("f"),
            RunEvent::Ask {
                trial: 0,
                config: p,
            },
        ];
        // Different seed ⇒ different RNG stream ⇒ divergent suggestion.
        let mut fresh = RandomSearch::new(space(), 6);
        let err = replay(&events, &mut fresh, &Fifo, Mode::Min).unwrap_err();
        assert!(err.contains("diverges"), "{err}");
    }

    #[test]
    fn replay_hard_errors_on_divergent_scheduler() {
        use crate::scheduler::Scheduler;
        struct AlwaysStop;
        impl Scheduler for AlwaysStop {
            fn on_report(&self, _: u64, _: u64, _: f64) -> Decision {
                Decision::Stop
            }
        }
        let mut live = RandomSearch::new(space(), 5);
        let p = live.suggest(0).unwrap();
        let events = vec![
            RunEvent::meta("f"),
            RunEvent::Ask {
                trial: 0,
                config: p.clone(),
            },
            RunEvent::Report {
                trial: 0,
                iteration: 1,
                normalized: 1.0,
                stop: false, // journaled Continue, scheduler says Stop
            },
            RunEvent::Attempt {
                trial: 0,
                index: 0,
                secs: 0.1,
                raw: Some(1.0),
                error: None,
            },
            RunEvent::Tell {
                trial: 0,
                feedback: 1.0,
                status: "terminated".into(),
                value: Some(1.0),
                trace_mark: None,
                asks: Some(1),
            },
        ];
        let mut fresh = RandomSearch::new(space(), 5);
        let err = replay(&events, &mut fresh, &AlwaysStop, Mode::Min).unwrap_err();
        assert!(err.contains("scheduler decision"), "{err}");
    }

    #[test]
    fn journal_appends_are_recovered_in_order() {
        let dir = std::env::temp_dir().join(format!("e2c-runjournal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("run.wal");
        let wal = e2c_journal::Wal::create(&path).unwrap();
        let j = RunJournal::new(wal, None);
        j.append(&RunEvent::meta("fp"));
        j.append(&RunEvent::Ask {
            trial: 0,
            config: vec![3.0],
        });
        j.append(&RunEvent::Complete);
        assert_eq!(j.appended(), 3);
        let events = load_events(&path).unwrap();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0], RunEvent::meta("fp"));
        assert_eq!(events[2], RunEvent::Complete);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
