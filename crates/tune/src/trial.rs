//! Trial records.

use e2c_optim::space::Point;

/// Lifecycle state of a trial.
#[derive(Debug, Clone, PartialEq)]
pub enum TrialStatus {
    /// Asked but not started.
    Pending,
    /// Objective running.
    Running,
    /// Finished normally with a final metric value.
    Terminated(f64),
    /// Stopped early by the scheduler; the last reported value is kept.
    StoppedEarly(f64),
    /// The objective panicked or returned a non-finite value.
    Failed(String),
}

impl TrialStatus {
    /// Final metric value, if the trial produced one.
    pub fn value(&self) -> Option<f64> {
        match self {
            TrialStatus::Terminated(v) | TrialStatus::StoppedEarly(v) => Some(*v),
            _ => None,
        }
    }

    /// Whether the trial ended (in any way).
    pub fn is_finished(&self) -> bool {
        !matches!(self, TrialStatus::Pending | TrialStatus::Running)
    }
}

/// One trial: a configuration and everything that happened to it.
#[derive(Debug, Clone)]
pub struct Trial {
    /// Trial identifier (dense, starting at 0).
    pub id: u64,
    /// The evaluated configuration (external units).
    pub config: Point,
    /// Lifecycle state.
    pub status: TrialStatus,
    /// Intermediate `(iteration, value)` reports, in order.
    pub reports: Vec<(u64, f64)>,
}

impl Trial {
    /// A fresh pending trial.
    pub fn new(id: u64, config: Point) -> Self {
        Trial {
            id,
            config,
            status: TrialStatus::Pending,
            reports: Vec::new(),
        }
    }

    /// Final value if finished successfully.
    pub fn value(&self) -> Option<f64> {
        self.status.value()
    }

    /// Number of intermediate reports.
    pub fn iterations(&self) -> usize {
        self.reports.len()
    }

    /// Whether the scheduler cut this trial short.
    pub fn stopped_early(&self) -> bool {
        matches!(self.status, TrialStatus::StoppedEarly(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_values() {
        assert_eq!(TrialStatus::Terminated(2.5).value(), Some(2.5));
        assert_eq!(TrialStatus::StoppedEarly(3.0).value(), Some(3.0));
        assert_eq!(TrialStatus::Pending.value(), None);
        assert_eq!(TrialStatus::Failed("x".into()).value(), None);
        assert!(TrialStatus::Terminated(0.0).is_finished());
        assert!(TrialStatus::Failed("x".into()).is_finished());
        assert!(!TrialStatus::Running.is_finished());
    }

    #[test]
    fn trial_lifecycle_fields() {
        let mut t = Trial::new(3, vec![1.0, 2.0]);
        assert_eq!(t.id, 3);
        assert_eq!(t.value(), None);
        t.reports.push((1, 5.0));
        t.reports.push((2, 4.0));
        t.status = TrialStatus::StoppedEarly(4.0);
        assert_eq!(t.iterations(), 2);
        assert!(t.stopped_early());
        assert_eq!(t.value(), Some(4.0));
    }
}
