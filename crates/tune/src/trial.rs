//! Trial records.

use e2c_optim::space::Point;
use std::fmt;

/// Why one execution attempt failed — typed, so the journal can replay a
/// failure exactly and callers can distinguish a worker panic from an
/// overrun deadline without string matching.
///
/// `Display` renders the exact failure strings the untyped layer used
/// (raw panic payloads, `non-finite metric <v>`, `deadline exceeded`),
/// which keeps `evaluations.csv` / `trials.jsonl` byte-stable.
#[derive(Debug, Clone, PartialEq)]
pub enum TrialError {
    /// The objective (or a worker-side component) panicked; the payload
    /// rides along verbatim.
    Panicked(String),
    /// The objective returned a non-finite metric; the rendered value
    /// (`NaN`, `inf`, ...) rides along.
    NonFinite(String),
    /// The attempt overran its wall-clock budget.
    DeadlineExceeded,
    /// A scripted [`FaultPlan`](crate::fault::FaultPlan) fault failed the
    /// attempt; the full injected message rides along.
    Injected(String),
    /// The worker process executing this attempt died, hung past its
    /// heartbeat deadline, or spoke protocol garbage — and the farm's
    /// re-dispatch budget was spent (transparent re-dispatch to a healthy
    /// worker hides isolated deaths from the attempt record). The payload
    /// describes what was lost.
    WorkerLost(String),
}

impl TrialError {
    /// Stable token for the journal wire format.
    pub fn kind(&self) -> &'static str {
        match self {
            TrialError::Panicked(_) => "panicked",
            TrialError::NonFinite(_) => "nonfinite",
            TrialError::DeadlineExceeded => "deadline",
            TrialError::Injected(_) => "injected",
            TrialError::WorkerLost(_) => "workerlost",
        }
    }

    /// The variant's payload ("" for payload-free variants).
    pub fn payload(&self) -> &str {
        match self {
            TrialError::Panicked(s)
            | TrialError::NonFinite(s)
            | TrialError::Injected(s)
            | TrialError::WorkerLost(s) => s,
            TrialError::DeadlineExceeded => "",
        }
    }

    /// Rebuild from the journal wire format.
    pub fn from_parts(kind: &str, payload: &str) -> Result<TrialError, String> {
        match kind {
            "panicked" => Ok(TrialError::Panicked(payload.to_string())),
            "nonfinite" => Ok(TrialError::NonFinite(payload.to_string())),
            "deadline" => Ok(TrialError::DeadlineExceeded),
            "injected" => Ok(TrialError::Injected(payload.to_string())),
            "workerlost" => Ok(TrialError::WorkerLost(payload.to_string())),
            other => Err(format!("unknown trial error kind `{other}`")),
        }
    }
}

impl fmt::Display for TrialError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrialError::Panicked(s) | TrialError::Injected(s) | TrialError::WorkerLost(s) => {
                f.write_str(s)
            }
            TrialError::NonFinite(v) => write!(f, "non-finite metric {v}"),
            TrialError::DeadlineExceeded => f.write_str("deadline exceeded"),
        }
    }
}

/// Lifecycle state of a trial.
#[derive(Debug, Clone, PartialEq)]
pub enum TrialStatus {
    /// Asked but not started.
    Pending,
    /// Objective running.
    Running,
    /// Finished normally with a final metric value.
    Terminated(f64),
    /// Stopped early by the scheduler; the last reported value is kept.
    StoppedEarly(f64),
    /// Every attempt panicked, returned a non-finite value, or overran
    /// its deadline; the string is the last failure reason.
    Failed(String),
}

impl TrialStatus {
    /// Final metric value, if the trial produced one.
    pub fn value(&self) -> Option<f64> {
        match self {
            TrialStatus::Terminated(v) | TrialStatus::StoppedEarly(v) => Some(*v),
            _ => None,
        }
    }

    /// Whether the trial ended (in any way).
    pub fn is_finished(&self) -> bool {
        !matches!(self, TrialStatus::Pending | TrialStatus::Running)
    }

    /// The failure reason, if the trial failed.
    pub fn failure(&self) -> Option<&str> {
        match self {
            TrialStatus::Failed(reason) => Some(reason),
            _ => None,
        }
    }
}

/// Record of one execution attempt of a trial (the retry layer's
/// bookkeeping — every attempt lands in the trial log and the archive).
#[derive(Debug, Clone, PartialEq)]
pub struct Attempt {
    /// 0-based attempt index.
    pub index: u32,
    /// `None` on success; the typed failure otherwise.
    pub error: Option<TrialError>,
    /// Wall-clock duration of the attempt, in seconds.
    pub secs: f64,
    /// The objective's raw return value when it was actually invoked and
    /// returned (even if the attempt was then classified as failed, e.g.
    /// a non-finite metric); `None` when the objective never ran or
    /// panicked. Feeds the observation histogram in canonical commit
    /// order — and survives crash-resume, because the journal carries it.
    pub raw: Option<f64>,
}

impl Attempt {
    /// Whether this attempt produced a usable metric.
    pub fn succeeded(&self) -> bool {
        self.error.is_none()
    }
}

/// One trial: a configuration and everything that happened to it.
#[derive(Debug, Clone)]
pub struct Trial {
    /// Trial identifier (dense, starting at 0).
    pub id: u64,
    /// The evaluated configuration (external units).
    pub config: Point,
    /// Lifecycle state.
    pub status: TrialStatus,
    /// Intermediate `(iteration, value)` reports of the last attempt, in
    /// order.
    pub reports: Vec<(u64, f64)>,
    /// Every execution attempt, in order (empty only before the trial
    /// first runs).
    pub attempts: Vec<Attempt>,
}

impl Trial {
    /// A fresh pending trial.
    pub fn new(id: u64, config: Point) -> Self {
        Trial {
            id,
            config,
            status: TrialStatus::Pending,
            reports: Vec::new(),
            attempts: Vec::new(),
        }
    }

    /// Final value if finished successfully.
    pub fn value(&self) -> Option<f64> {
        self.status.value()
    }

    /// Number of intermediate reports.
    pub fn iterations(&self) -> usize {
        self.reports.len()
    }

    /// Whether the scheduler cut this trial short.
    pub fn stopped_early(&self) -> bool {
        matches!(self.status, TrialStatus::StoppedEarly(_))
    }

    /// How many times the trial was executed (at least 1 once finished).
    pub fn attempt_count(&self) -> u32 {
        (self.attempts.len() as u32).max(1)
    }

    /// How many re-attempts the retry layer spent on this trial.
    pub fn retries(&self) -> u32 {
        (self.attempts.len() as u32).saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_values() {
        assert_eq!(TrialStatus::Terminated(2.5).value(), Some(2.5));
        assert_eq!(TrialStatus::StoppedEarly(3.0).value(), Some(3.0));
        assert_eq!(TrialStatus::Pending.value(), None);
        assert_eq!(TrialStatus::Failed("x".into()).value(), None);
        assert!(TrialStatus::Terminated(0.0).is_finished());
        assert!(TrialStatus::Failed("x".into()).is_finished());
        assert!(!TrialStatus::Running.is_finished());
    }

    #[test]
    fn trial_lifecycle_fields() {
        let mut t = Trial::new(3, vec![1.0, 2.0]);
        assert_eq!(t.id, 3);
        assert_eq!(t.value(), None);
        t.reports.push((1, 5.0));
        t.reports.push((2, 4.0));
        t.status = TrialStatus::StoppedEarly(4.0);
        assert_eq!(t.iterations(), 2);
        assert!(t.stopped_early());
        assert_eq!(t.value(), Some(4.0));
    }

    #[test]
    fn attempt_bookkeeping() {
        let mut t = Trial::new(0, vec![1.0]);
        assert_eq!(t.attempt_count(), 1, "unstarted trials count one attempt");
        assert_eq!(t.retries(), 0);
        t.attempts.push(Attempt {
            index: 0,
            error: Some(TrialError::Panicked("boom".into())),
            secs: 0.1,
            raw: None,
        });
        t.attempts.push(Attempt {
            index: 1,
            error: None,
            secs: 0.2,
            raw: Some(3.0),
        });
        t.status = TrialStatus::Terminated(3.0);
        assert_eq!(t.attempt_count(), 2);
        assert_eq!(t.retries(), 1);
        assert!(!t.attempts[0].succeeded());
        assert!(t.attempts[1].succeeded());
        assert_eq!(TrialStatus::Failed("x".into()).failure(), Some("x"));
        assert_eq!(t.status.failure(), None);
    }

    #[test]
    fn trial_error_display_is_byte_stable() {
        assert_eq!(
            TrialError::Panicked("boom at 3".into()).to_string(),
            "boom at 3"
        );
        assert_eq!(
            TrialError::NonFinite("NaN".into()).to_string(),
            "non-finite metric NaN"
        );
        assert_eq!(
            TrialError::DeadlineExceeded.to_string(),
            "deadline exceeded"
        );
        assert_eq!(
            TrialError::Injected("injected fault: fail (attempt 0)".into()).to_string(),
            "injected fault: fail (attempt 0)"
        );
    }

    #[test]
    fn trial_error_round_trips_through_parts() {
        for e in [
            TrialError::Panicked("p".into()),
            TrialError::NonFinite("inf".into()),
            TrialError::DeadlineExceeded,
            TrialError::Injected("i".into()),
            TrialError::WorkerLost("worker 2 died mid-trial".into()),
        ] {
            assert_eq!(TrialError::from_parts(e.kind(), e.payload()).unwrap(), e);
        }
        assert!(TrialError::from_parts("bogus", "").is_err());
    }
}
