//! Fault-tolerant trial execution: retry policies and failure injection.
//!
//! On 42 real Grid'5000 nodes trial failures are the norm, not the
//! exception — deployments error out, services crash, stragglers overrun.
//! This module provides the two deterministic building blocks the
//! [`Tuner`](crate::tuner::Tuner) uses to tolerate (and to *test*
//! tolerating) them:
//!
//! * [`RetryPolicy`] — how many times a failed attempt is re-executed and
//!   how long to back off in between. The backoff jitter is drawn from the
//!   experiment seed, so a retried cycle replays bit-exactly;
//! * [`FaultPlan`] — a scripted set of injected faults ("fail trial 3 on
//!   attempt 0", "trial 2 returns NaN", "delay trial 1 by 250 ms") usable
//!   from tests and from the `e2clab optimize --faults` knob, so the
//!   robustness layer is itself testable.

use std::time::Duration;

/// Retry policy for failed trial attempts: exponential backoff with
/// seed-deterministic jitter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Re-attempts after the first failure (0 = fail immediately).
    pub max_retries: u32,
    /// Delay before the first retry.
    pub base_delay: Duration,
    /// Multiplier applied per further retry (>= 1).
    pub factor: f64,
    /// Upper bound on any single delay.
    pub max_delay: Duration,
    /// Jitter fraction in `[0, 1]`: each delay is scaled by a factor drawn
    /// deterministically from `(seed, trial, attempt)` in
    /// `[1 - jitter, 1 + jitter]`.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::none()
    }
}

impl RetryPolicy {
    /// No retries: a failed attempt fails the trial (the pre-existing
    /// behaviour).
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            base_delay: Duration::ZERO,
            factor: 1.0,
            max_delay: Duration::ZERO,
            jitter: 0.0,
        }
    }

    /// `max_retries` re-attempts with a 100 ms base delay doubling up to
    /// 10 s, 10 % jitter.
    pub fn retries(max_retries: u32) -> Self {
        RetryPolicy {
            max_retries,
            base_delay: Duration::from_millis(100),
            factor: 2.0,
            max_delay: Duration::from_secs(10),
            jitter: 0.1,
        }
    }

    /// Set the base delay.
    pub fn base_delay(mut self, d: Duration) -> Self {
        self.base_delay = d;
        self
    }

    /// Set the backoff multiplier (clamped to >= 1).
    pub fn factor(mut self, f: f64) -> Self {
        self.factor = f.max(1.0);
        self
    }

    /// Set the delay cap.
    pub fn max_delay(mut self, d: Duration) -> Self {
        self.max_delay = d;
        self
    }

    /// Set the jitter fraction (clamped to `[0, 1]`).
    pub fn jitter(mut self, j: f64) -> Self {
        self.jitter = j.clamp(0.0, 1.0);
        self
    }

    /// Total number of attempts a trial may consume.
    pub fn max_attempts(&self) -> u32 {
        self.max_retries + 1
    }

    /// The un-jittered delay before re-attempting after failed attempt
    /// number `attempt` (0-based): `base * factor^attempt`, capped.
    pub fn raw_backoff(&self, attempt: u32) -> Duration {
        let scale = self.factor.powi(attempt.min(64) as i32);
        let secs = self.base_delay.as_secs_f64() * scale;
        Duration::from_secs_f64(secs.min(self.max_delay.as_secs_f64().max(0.0)))
    }

    /// The delay before re-attempting after failed attempt number
    /// `attempt` (0-based), jittered deterministically from
    /// `(seed, trial, attempt)` — the same inputs always yield the same
    /// delay, preserving reproducible cycles.
    pub fn backoff(&self, seed: u64, trial: u64, attempt: u32) -> Duration {
        let raw = self.raw_backoff(attempt).as_secs_f64();
        if self.jitter <= 0.0 || raw == 0.0 {
            return Duration::from_secs_f64(raw);
        }
        // splitmix64 over the (seed, trial, attempt) triple → u in [0, 1).
        let mut x = seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(trial)
            .wrapping_mul(0xBF58_476D_1CE4_E5B9)
            .wrapping_add(attempt as u64 + 1);
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        let u = (x >> 11) as f64 / (1u64 << 53) as f64;
        let scale = 1.0 - self.jitter + 2.0 * self.jitter * u;
        Duration::from_secs_f64(raw * scale)
    }
}

/// What an injected fault does to one attempt of one trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// The objective panics (a crashed deployment).
    Fail,
    /// The objective returns NaN (a corrupted metric).
    Nan,
    /// The attempt is delayed by this long before the objective runs
    /// (a straggler; combined with a deadline this overruns the budget).
    Delay(Duration),
    /// The worker process executing the attempt is reported crashed
    /// (SIGKILL mid-trial, with the farm's re-dispatch budget spent): the
    /// attempt fails with a typed
    /// [`TrialError::WorkerLost`](crate::trial::TrialError::WorkerLost)
    /// without invoking the objective. Injected tuner-side so the record
    /// is byte-identical whether or not a real farm is attached.
    WorkerCrash,
    /// Like [`FaultAction::WorkerCrash`] but modelling a hang: the worker
    /// missed its heartbeat deadline and was declared lost.
    WorkerStall,
}

/// One scripted fault: which trial, which attempt, what happens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Target trial id.
    pub trial: u64,
    /// Target attempt (0-based); `None` hits every attempt.
    pub attempt: Option<u32>,
    /// The injected behaviour.
    pub action: FaultAction,
}

/// A deterministic failure-injection plan: a scripted set of
/// [`FaultSpec`]s the tuner consults before every attempt.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// The empty plan (no injected faults).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Whether the plan injects anything at all.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// The scripted faults.
    pub fn specs(&self) -> &[FaultSpec] {
        &self.specs
    }

    /// Panic trial `trial` on attempt `attempt`.
    pub fn fail(mut self, trial: u64, attempt: u32) -> Self {
        self.specs.push(FaultSpec {
            trial,
            attempt: Some(attempt),
            action: FaultAction::Fail,
        });
        self
    }

    /// Panic trial `trial` on every attempt.
    pub fn fail_always(mut self, trial: u64) -> Self {
        self.specs.push(FaultSpec {
            trial,
            attempt: None,
            action: FaultAction::Fail,
        });
        self
    }

    /// Make trial `trial` return NaN on attempt `attempt`.
    pub fn nan(mut self, trial: u64, attempt: u32) -> Self {
        self.specs.push(FaultSpec {
            trial,
            attempt: Some(attempt),
            action: FaultAction::Nan,
        });
        self
    }

    /// Delay trial `trial` by `delay` on attempt `attempt`.
    pub fn delay(mut self, trial: u64, attempt: u32, delay: Duration) -> Self {
        self.specs.push(FaultSpec {
            trial,
            attempt: Some(attempt),
            action: FaultAction::Delay(delay),
        });
        self
    }

    /// Report the worker running trial `trial` crashed on attempt
    /// `attempt`.
    pub fn worker_crash(mut self, trial: u64, attempt: u32) -> Self {
        self.specs.push(FaultSpec {
            trial,
            attempt: Some(attempt),
            action: FaultAction::WorkerCrash,
        });
        self
    }

    /// Report the worker running trial `trial` hung past its heartbeat
    /// deadline on attempt `attempt`.
    pub fn worker_stall(mut self, trial: u64, attempt: u32) -> Self {
        self.specs.push(FaultSpec {
            trial,
            attempt: Some(attempt),
            action: FaultAction::WorkerStall,
        });
        self
    }

    /// The action scripted for `(trial, attempt)`, if any. The most
    /// recently added matching spec wins, letting narrower rules override
    /// `attempt: None` catch-alls.
    pub fn lookup(&self, trial: u64, attempt: u32) -> Option<FaultAction> {
        self.specs
            .iter()
            .rev()
            .find(|s| s.trial == trial && s.attempt.is_none_or(|a| a == attempt))
            .map(|s| s.action)
    }

    /// Parse the `--faults` knob: entries separated by `;` or `,`, each
    /// `fail:TRIAL[@ATTEMPT]`, `nan:TRIAL[@ATTEMPT]`,
    /// `delay:TRIAL[@ATTEMPT]:MILLIS`, `worker-crash:TRIAL[@ATTEMPT]` or
    /// `worker-stall:TRIAL[@ATTEMPT]`. Omitting `@ATTEMPT` hits every
    /// attempt of the trial.
    ///
    /// ```
    /// use e2c_tune::fault::{FaultAction, FaultPlan};
    /// let plan = FaultPlan::parse("fail:3@0;nan:2;delay:1@1:250").unwrap();
    /// assert_eq!(plan.lookup(3, 0), Some(FaultAction::Fail));
    /// assert_eq!(plan.lookup(3, 1), None);
    /// assert_eq!(plan.lookup(2, 7), Some(FaultAction::Nan));
    /// ```
    pub fn parse(text: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::new();
        for entry in text
            .split([';', ','])
            .map(str::trim)
            .filter(|e| !e.is_empty())
        {
            let mut parts = entry.split(':');
            let kind = parts.next().unwrap_or_default();
            let target = parts
                .next()
                .ok_or_else(|| format!("`{entry}`: missing trial id"))?;
            let (trial, attempt) = parse_target(target).map_err(|e| format!("`{entry}`: {e}"))?;
            let action = match kind {
                "fail" => FaultAction::Fail,
                "nan" => FaultAction::Nan,
                "delay" => {
                    let ms: u64 = parts
                        .next()
                        .ok_or_else(|| format!("`{entry}`: delay needs `:MILLIS`"))?
                        .parse()
                        .map_err(|e| format!("`{entry}`: bad millis ({e})"))?;
                    FaultAction::Delay(Duration::from_millis(ms))
                }
                "worker-crash" => FaultAction::WorkerCrash,
                "worker-stall" => FaultAction::WorkerStall,
                other => {
                    return Err(format!(
                        "`{entry}`: unknown fault kind `{other}` (expected fail, nan, delay, \
                         worker-crash or worker-stall)"
                    ))
                }
            };
            if parts.next().is_some() {
                return Err(format!("`{entry}`: trailing fields"));
            }
            plan.specs.push(FaultSpec {
                trial,
                attempt,
                action,
            });
        }
        Ok(plan)
    }
}

fn parse_target(target: &str) -> Result<(u64, Option<u32>), String> {
    match target.split_once('@') {
        Some((t, a)) => {
            let trial = t.parse().map_err(|e| format!("bad trial id ({e})"))?;
            let attempt = a.parse().map_err(|e| format!("bad attempt ({e})"))?;
            Ok((trial, Some(attempt)))
        }
        None => Ok((
            target.parse().map_err(|e| format!("bad trial id ({e})"))?,
            None,
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn none_policy_allows_one_attempt() {
        let p = RetryPolicy::none();
        assert_eq!(p.max_attempts(), 1);
        assert_eq!(p.backoff(1, 2, 0), Duration::ZERO);
    }

    #[test]
    fn raw_backoff_grows_and_caps() {
        let p = RetryPolicy::retries(8)
            .base_delay(Duration::from_millis(100))
            .factor(2.0)
            .max_delay(Duration::from_millis(500));
        assert_eq!(p.raw_backoff(0), Duration::from_millis(100));
        assert_eq!(p.raw_backoff(1), Duration::from_millis(200));
        assert_eq!(p.raw_backoff(2), Duration::from_millis(400));
        assert_eq!(p.raw_backoff(3), Duration::from_millis(500)); // capped
        assert_eq!(p.raw_backoff(30), Duration::from_millis(500));
    }

    #[test]
    fn jittered_backoff_is_deterministic() {
        let p = RetryPolicy::retries(3).jitter(0.5);
        for trial in 0..10u64 {
            for attempt in 0..4u32 {
                assert_eq!(
                    p.backoff(42, trial, attempt),
                    p.backoff(42, trial, attempt),
                    "same inputs must give the same delay"
                );
            }
        }
        // A different seed perturbs at least one delay.
        let differs = (0..10u64).any(|trial| p.backoff(1, trial, 0) != p.backoff(2, trial, 0));
        assert!(differs, "jitter ignored the seed");
    }

    #[test]
    fn plan_lookup_most_recent_wins() {
        let plan = FaultPlan::new().fail_always(4).nan(4, 1);
        assert_eq!(plan.lookup(4, 0), Some(FaultAction::Fail));
        assert_eq!(plan.lookup(4, 1), Some(FaultAction::Nan));
        assert_eq!(plan.lookup(5, 0), None);
    }

    #[test]
    fn plan_parses_the_cli_grammar() {
        let plan = FaultPlan::parse("fail:3@0; nan:2, delay:1@1:250").unwrap();
        assert_eq!(plan.specs().len(), 3);
        assert_eq!(plan.lookup(3, 0), Some(FaultAction::Fail));
        assert_eq!(plan.lookup(3, 1), None);
        assert_eq!(plan.lookup(2, 9), Some(FaultAction::Nan));
        assert_eq!(
            plan.lookup(1, 1),
            Some(FaultAction::Delay(Duration::from_millis(250)))
        );
        assert!(FaultPlan::parse("").unwrap().is_empty());
    }

    #[test]
    fn plan_parses_worker_fault_kinds() {
        let plan = FaultPlan::parse("worker-crash:2@0; worker-stall:3").unwrap();
        assert_eq!(plan.lookup(2, 0), Some(FaultAction::WorkerCrash));
        assert_eq!(plan.lookup(2, 1), None);
        assert_eq!(plan.lookup(3, 5), Some(FaultAction::WorkerStall));
        // Builders mirror the grammar.
        let built = FaultPlan::new().worker_crash(2, 0).worker_stall(1, 1);
        assert_eq!(built.lookup(2, 0), Some(FaultAction::WorkerCrash));
        assert_eq!(built.lookup(1, 1), Some(FaultAction::WorkerStall));
    }

    #[test]
    fn plan_rejects_bad_specs() {
        assert!(FaultPlan::parse("explode:1").is_err());
        assert!(FaultPlan::parse("fail").is_err());
        assert!(FaultPlan::parse("fail:x").is_err());
        assert!(FaultPlan::parse("delay:1@0").is_err()); // missing millis
        assert!(FaultPlan::parse("fail:1@0:9").is_err()); // trailing field
    }

    proptest! {
        /// The un-jittered schedule is monotone non-decreasing in the
        /// attempt number.
        #[test]
        fn raw_backoff_is_monotone(
            base_ms in 0u64..1_000,
            factor in 1.0f64..4.0,
            cap_ms in 0u64..60_000,
            attempt in 0u32..20,
        ) {
            let p = RetryPolicy::retries(20)
                .base_delay(Duration::from_millis(base_ms))
                .factor(factor)
                .max_delay(Duration::from_millis(cap_ms));
            prop_assert!(p.raw_backoff(attempt + 1) >= p.raw_backoff(attempt));
        }

        /// Jitter stays inside the `[1 - j, 1 + j]` band around the raw
        /// delay and never exceeds the cap by more than the band allows.
        #[test]
        fn jitter_stays_in_band(
            seed in any::<u64>(),
            trial in 0u64..1_000,
            attempt in 0u32..10,
            jitter in 0.0f64..1.0,
        ) {
            let p = RetryPolicy::retries(10)
                .base_delay(Duration::from_millis(50))
                .factor(2.0)
                .max_delay(Duration::from_secs(5))
                .jitter(jitter);
            let raw = p.raw_backoff(attempt).as_secs_f64();
            let got = p.backoff(seed, trial, attempt).as_secs_f64();
            prop_assert!(got >= raw * (1.0 - jitter) - 1e-9);
            prop_assert!(got <= raw * (1.0 + jitter) + 1e-9);
        }

        /// The attempt cap is exactly `max_retries + 1`.
        #[test]
        fn attempt_cap_honored(retries in 0u32..100) {
            prop_assert_eq!(RetryPolicy::retries(retries).max_attempts(), retries + 1);
        }
    }
}
