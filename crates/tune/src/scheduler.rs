//! Trial schedulers: FIFO and AsyncHyperBand (ASHA).

use parking_lot::Mutex;
use std::collections::BTreeMap;

/// Verdict for an intermediate report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Keep running.
    Continue,
    /// Terminate the trial now (its last report becomes its result).
    Stop,
}

/// Reacts to intermediate metric reports. Metric values arrive
/// sign-normalized (smaller = better).
pub trait Scheduler: Send + Sync {
    /// A trial reported `value` at iteration `iteration` (1-based).
    fn on_report(&self, trial_id: u64, iteration: u64, value: f64) -> Decision;
}

/// Never stops anything.
#[derive(Debug, Default)]
pub struct Fifo;

impl Scheduler for Fifo {
    fn on_report(&self, _trial_id: u64, _iteration: u64, _value: f64) -> Decision {
        Decision::Continue
    }
}

/// Asynchronous Successive Halving (the algorithm behind Ray Tune's
/// `AsyncHyperBandScheduler`).
///
/// Rungs sit at iterations `grace, grace·rf, grace·rf², …`. When a trial
/// reaches a rung, its value joins the rung's record; the trial continues
/// only if it is within the best `1/rf` fraction of everything that rung
/// has seen so far. Decisions are made asynchronously — no waiting for a
/// cohort, just like the paper's asynchronous optimization cycle.
pub struct AsyncHyperBand {
    grace: u64,
    reduction_factor: u64,
    max_t: u64,
    // Ordered maps throughout the scheduler state: rung/record contents
    // feed stop decisions, and the workspace determinism baseline
    // (detlint DET001) keeps every such collection enumeration-stable.
    rungs: Mutex<BTreeMap<u64, Vec<f64>>>,
}

impl AsyncHyperBand {
    /// `grace` = first rung iteration, `reduction_factor` = keep the top
    /// `1/rf` at each rung, `max_t` = iteration after which no stopping
    /// happens.
    pub fn new(grace: u64, reduction_factor: u64, max_t: u64) -> Self {
        assert!(grace >= 1, "grace period must be at least 1");
        assert!(reduction_factor >= 2, "reduction factor must be at least 2");
        AsyncHyperBand {
            grace,
            reduction_factor,
            max_t,
            rungs: Mutex::new(BTreeMap::new()),
        }
    }

    /// Rung iterations up to `max_t`.
    pub fn rung_levels(&self) -> Vec<u64> {
        let mut levels = Vec::new();
        let mut r = self.grace;
        while r <= self.max_t {
            levels.push(r);
            r = r.saturating_mul(self.reduction_factor);
        }
        levels
    }
}

impl Scheduler for AsyncHyperBand {
    fn on_report(&self, _trial_id: u64, iteration: u64, value: f64) -> Decision {
        if iteration > self.max_t || !self.rung_levels().contains(&iteration) {
            return Decision::Continue;
        }
        let mut rungs = self.rungs.lock();
        let rung = rungs.entry(iteration).or_default();
        rung.push(value);
        // Require enough evidence before cutting anything: with fewer than
        // 2·rf records at a rung, every trial survives.
        let rf = self.reduction_factor as usize;
        if rung.len() < 2 * rf {
            return Decision::Continue;
        }
        // Keep if within the best ceil(len/rf) values seen at this rung
        // (smaller is better).
        let mut sorted = rung.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN metric"));
        let keep = sorted.len().div_ceil(rf);
        let cutoff = sorted[keep - 1];
        if value <= cutoff {
            Decision::Continue
        } else {
            Decision::Stop
        }
    }
}

/// Median-stopping rule (Google Vizier / Ray Tune's
/// `MedianStoppingRule`): a trial is stopped at iteration `t` if its best
/// value so far is worse than the median of the *running averages* of all
/// completed-so-far trials at the same iteration.
pub struct MedianStopping {
    grace: u64,
    min_samples: usize,
    /// Per-iteration record of running averages: iteration → values.
    records: Mutex<BTreeMap<u64, Vec<f64>>>,
    /// trial → (sum, count) for its running average.
    running: Mutex<BTreeMap<u64, (f64, u64)>>,
}

impl MedianStopping {
    /// No stopping before `grace` iterations or before `min_samples`
    /// other trials have reported at an iteration.
    pub fn new(grace: u64, min_samples: usize) -> Self {
        MedianStopping {
            grace,
            min_samples: min_samples.max(1),
            records: Mutex::new(BTreeMap::new()),
            running: Mutex::new(BTreeMap::new()),
        }
    }
}

impl Scheduler for MedianStopping {
    fn on_report(&self, trial_id: u64, iteration: u64, value: f64) -> Decision {
        let avg = {
            let mut running = self.running.lock();
            let entry = running.entry(trial_id).or_insert((0.0, 0));
            entry.0 += value;
            entry.1 += 1;
            entry.0 / entry.1 as f64
        };
        let mut records = self.records.lock();
        let at_iter = records.entry(iteration).or_default();
        let decision = if iteration < self.grace || at_iter.len() < self.min_samples {
            Decision::Continue
        } else {
            let mut sorted = at_iter.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN metric"));
            let median = sorted[sorted.len() / 2];
            if avg > median {
                Decision::Stop
            } else {
                Decision::Continue
            }
        };
        at_iter.push(avg);
        decision
    }
}

/// Decorator that records every rung decision into a trace.  Wraps any
/// scheduler; each `on_report` emits a `scheduler/report` event carrying
/// the iteration, the (sign-normalized) value and the verdict, keyed by
/// the tracer's virtual clock.
pub struct TracingScheduler {
    inner: std::sync::Arc<dyn Scheduler>,
    tracer: e2c_trace::Tracer,
}

impl TracingScheduler {
    pub fn new(inner: std::sync::Arc<dyn Scheduler>, tracer: e2c_trace::Tracer) -> Self {
        TracingScheduler { inner, tracer }
    }
}

impl Scheduler for TracingScheduler {
    fn on_report(&self, trial_id: u64, iteration: u64, value: f64) -> Decision {
        let decision = self.inner.on_report(trial_id, iteration, value);
        self.tracer.point(
            "scheduler",
            "report",
            Some(trial_id),
            e2c_trace::fields([
                ("iteration", iteration.into()),
                ("value", value.into()),
                (
                    "decision",
                    match decision {
                        Decision::Continue => "continue",
                        Decision::Stop => "stop",
                    }
                    .into(),
                ),
            ]),
        );
        decision
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_never_stops() {
        let f = Fifo;
        for i in 0..100 {
            assert_eq!(f.on_report(0, i, i as f64), Decision::Continue);
        }
    }

    #[test]
    fn rung_levels_follow_geometric_schedule() {
        let s = AsyncHyperBand::new(1, 3, 27);
        assert_eq!(s.rung_levels(), vec![1, 3, 9, 27]);
    }

    #[test]
    fn off_rung_iterations_always_continue() {
        let s = AsyncHyperBand::new(2, 2, 16);
        assert_eq!(s.on_report(0, 3, 999.0), Decision::Continue);
        assert_eq!(s.on_report(0, 17, 999.0), Decision::Continue);
    }

    #[test]
    fn bad_trials_stop_at_rungs() {
        let s = AsyncHyperBand::new(1, 2, 64);
        // Three good trials seed the rung; below the 2·rf evidence
        // threshold nothing is cut.
        assert_eq!(s.on_report(0, 1, 1.0), Decision::Continue);
        assert_eq!(s.on_report(1, 1, 1.1), Decision::Continue);
        assert_eq!(s.on_report(2, 1, 1.2), Decision::Continue);
        // A clearly worse trial must be cut: keep = ceil(4/2) = 2 of
        // {1.0,1.1,1.2,9.0} → cutoff 1.1; 9.0 > 1.1.
        assert_eq!(s.on_report(3, 1, 9.0), Decision::Stop);
        // An excellent trial sails through.
        assert_eq!(s.on_report(4, 1, 0.5), Decision::Continue);
    }

    #[test]
    fn early_trials_always_survive() {
        // Below the evidence threshold (2·rf = 8) even terrible values
        // survive.
        let s = AsyncHyperBand::new(1, 4, 16);
        for id in 0..7 {
            assert_eq!(s.on_report(id, 1, 1e9 - id as f64), Decision::Continue);
        }
    }

    #[test]
    #[should_panic(expected = "reduction factor")]
    fn rf_one_rejected() {
        AsyncHyperBand::new(1, 1, 16);
    }

    #[test]
    fn median_stopping_cuts_below_median_performers() {
        let s = MedianStopping::new(1, 3);
        // Three good trials seed iteration 1 (below min_samples: all pass).
        assert_eq!(s.on_report(0, 1, 1.0), Decision::Continue);
        assert_eq!(s.on_report(1, 1, 1.2), Decision::Continue);
        assert_eq!(s.on_report(2, 1, 1.4), Decision::Continue);
        // Median of running averages {1.0, 1.2, 1.4} is 1.2: a 9.0 stops.
        assert_eq!(s.on_report(3, 1, 9.0), Decision::Stop);
        // A strong trial passes.
        assert_eq!(s.on_report(4, 1, 0.9), Decision::Continue);
    }

    #[test]
    fn median_stopping_respects_grace() {
        let s = MedianStopping::new(5, 1);
        for trial in 0..4 {
            assert_eq!(s.on_report(trial, 1, 1.0), Decision::Continue);
        }
        // Terrible value but iteration below grace.
        assert_eq!(s.on_report(9, 2, 1e9), Decision::Continue);
    }

    #[test]
    fn median_stopping_uses_running_average() {
        let s = MedianStopping::new(1, 2);
        // Seed iteration 2 with two averages around 1.0.
        s.on_report(0, 1, 1.0);
        s.on_report(0, 2, 1.0);
        s.on_report(1, 1, 1.0);
        s.on_report(1, 2, 1.0);
        // Trial 2: bad first report but excellent second — its running
        // average (0.6) beats the median, so it continues.
        s.on_report(2, 1, 1.0);
        assert_eq!(s.on_report(2, 2, 0.2), Decision::Continue);
    }
}
