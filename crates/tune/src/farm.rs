//! Parent side of the multi-process trial farm: process wrangling around
//! the pure [`crate::supervisor::Supervisor`].
//!
//! A [`WorkerFarm`] spawns `workers` copies of a worker command (in
//! production, `e2clab worker …`), speaks the framed stdio protocol of
//! [`crate::worker`] to them, and exposes one blocking call —
//! [`WorkerFarm::execute`] — that the optimization manager's objective
//! wrapper uses in place of running the objective in process. Everything
//! decision-bearing stays in the parent: the farm moves only the
//! *execution* of an attempt out of process, so `evaluations.csv`,
//! `trials.jsonl` and `trace.jsonl` are byte-identical to an in-process
//! run at any worker count.
//!
//! ## Crash tolerance
//!
//! Worker death in any form — process exit, EOF on its pipe, a frame
//! that fails CRC or parse, a missed heartbeat deadline — funnels into
//! one path: the supervisor marks the slot dead, the orphaned ask (if
//! any) resolves as *lost*, and the waiting `execute` call transparently
//! re-dispatches it to another worker while the monitor respawns the
//! dead slot under seeded backoff. Only when the re-dispatch budget is
//! spent (or every slot is terminally dead) does the attempt surface a
//! typed [`TrialError::WorkerLost`] into the ordinary retry machinery.
//! An isolated `SIGKILL` therefore never shows up in the artifacts at
//! all — which is exactly what the chaos gate asserts.
//!
//! Worker lifecycle noise (spawns, losses, respawns) goes to stderr,
//! deliberately *not* to the trace: the trace must replay byte-identically
//! across worker counts and kill schedules.

use std::collections::HashMap;
use std::io::BufReader;
use std::path::PathBuf;
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use crate::clock;
use crate::fault::RetryPolicy;
use crate::supervisor::{SlotState, Supervisor};
use crate::trial::TrialError;
use crate::worker::{read_frame, write_frame, WireMsg, WorkerAsk, PROTOCOL_VERSION};

/// How the farm spawns and supervises its workers.
#[derive(Debug, Clone)]
pub struct FarmSpec {
    /// The worker executable.
    pub program: PathBuf,
    /// Its arguments (e.g. `["worker", "--conf", "cluster.yaml"]`).
    pub args: Vec<String>,
    /// Number of worker processes.
    pub workers: usize,
    /// A worker silent this long is declared stalled and killed. Must be
    /// comfortably larger than the 250 ms heartbeat interval.
    pub heartbeat_timeout: Duration,
    /// Per-slot respawn budget after crashes.
    pub max_respawns: u32,
    /// How many times one ask may be re-dispatched after losing its
    /// worker before the attempt fails with
    /// [`TrialError::WorkerLost`].
    pub redispatch_budget: u32,
    /// Seeds the deterministic respawn backoff.
    pub seed: u64,
    /// Backoff shape for respawns (delay before restarting a dead slot).
    pub respawn_backoff: RetryPolicy,
    /// Chaos hook for the crash gates: `(worker, n)` SIGKILLs worker
    /// `worker` immediately after the `n`-th ask (1-based) is dispatched
    /// to it — i.e. mid-trial, the worst possible moment.
    pub kill_after: Option<(usize, u64)>,
}

impl FarmSpec {
    /// A spec with production defaults: 2 s heartbeat deadline, 3
    /// respawns per slot, a re-dispatch budget of `2 × workers`, and a
    /// 100 ms-based exponential respawn backoff.
    pub fn new(program: PathBuf, args: Vec<String>, workers: usize, seed: u64) -> Self {
        FarmSpec {
            program,
            args,
            workers: workers.max(1),
            heartbeat_timeout: Duration::from_secs(2),
            max_respawns: 3,
            redispatch_budget: 2 * workers.max(1) as u32,
            seed,
            respawn_backoff: RetryPolicy {
                max_retries: u32::MAX,
                base_delay: Duration::from_millis(100),
                factor: 2.0,
                max_delay: Duration::from_secs(2),
                jitter: 0.5,
            },
            kill_after: None,
        }
    }
}

/// What a farmed attempt produced (infrastructure failures are the `Err`
/// side of [`WorkerFarm::execute`]).
#[derive(Debug)]
pub enum FarmOutcome {
    /// The objective returned; the value is classified by the tuner
    /// exactly as an in-process return would be.
    Value {
        /// The objective's raw return.
        value: f64,
        /// Auxiliary pairs for the caller's artifact hook.
        aux: Vec<(String, String)>,
    },
    /// The objective panicked in the worker. The caller re-raises the
    /// payload so the tuner's panic classification sees the exact string
    /// an in-process panic would have produced.
    Panicked {
        /// The panic payload.
        payload: String,
    },
}

/// A parsed successful reply, trace events decoded.
struct ParsedReply {
    value: f64,
    aux: Vec<(String, String)>,
    events: Vec<(e2c_trace::TraceEvent, bool)>,
    end_clock: u64,
}

/// Terminal resolution of one dispatched ask.
enum AskOutcome {
    Value(ParsedReply),
    Panicked(String),
    /// The worker was lost mid-ask; the string says how.
    Lost(String),
}

/// One live worker process.
struct Proc {
    child: Child,
    stdin: Option<ChildStdin>,
}

struct FarmState {
    sup: Supervisor,
    procs: Vec<Option<Proc>>,
    /// ticket → the `(trial, attempt)` it carries, for routing replies.
    inflight: HashMap<u64, (u64, u32)>,
    /// ticket → resolution, drained by the waiting `execute` call.
    results: HashMap<u64, AskOutcome>,
    /// Per-slot count of asks dispatched (drives `kill_after`).
    dispatched: Vec<u64>,
    kill_fired: bool,
    readers: Vec<std::thread::JoinHandle<()>>,
}

struct FarmInner {
    spec: FarmSpec,
    state: Mutex<FarmState>,
    cv: Condvar,
    epoch: Instant,
    down: AtomicBool,
}

impl FarmInner {
    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    /// Funnel for every flavour of worker loss. `generation` is the
    /// incarnation the caller observed; a stale generation means a newer
    /// process already owns the slot and the event is ignored.
    fn lose_worker(&self, worker: usize, generation: u64, reason: &str) {
        let now = self.now_ms();
        let mut st = self.state.lock();
        if st.sup.generation(worker) != Some(generation)
            || matches!(st.sup.state(worker), Some(SlotState::Dead { .. }))
        {
            return;
        }
        if let Some(mut proc) = st.procs[worker].take() {
            let _ = proc.child.kill();
            let _ = proc.child.wait();
        }
        if let Some(ticket) = st.sup.lost(worker, now) {
            st.inflight.remove(&ticket);
            st.results.insert(
                ticket,
                AskOutcome::Lost(format!("worker {worker} {reason}")),
            );
        }
        eprintln!("e2clab: farm: worker {worker} {reason}");
        self.cv.notify_all();
    }
}

/// A running farm. Cheap to share (`&self` methods, internal locking);
/// dropping it drains the workers: a `shutdown` frame each, a grace
/// period, then SIGKILL for stragglers.
pub struct WorkerFarm {
    inner: Arc<FarmInner>,
    monitor: Option<std::thread::JoinHandle<()>>,
}

impl WorkerFarm {
    /// Spawn the workers and start supervision. Fails if no worker can
    /// be spawned at all; individual spawn failures consume that slot's
    /// respawn budget instead.
    pub fn launch(spec: FarmSpec) -> Result<WorkerFarm, String> {
        let workers = spec.workers;
        let sup = Supervisor::new(
            workers,
            spec.heartbeat_timeout.as_millis() as u64,
            spec.max_respawns,
            spec.seed,
            spec.respawn_backoff,
        );
        let inner = Arc::new(FarmInner {
            spec,
            state: Mutex::new(FarmState {
                sup,
                procs: (0..workers).map(|_| None).collect(),
                inflight: HashMap::new(),
                results: HashMap::new(),
                dispatched: vec![0; workers],
                kill_fired: false,
                readers: Vec::new(),
            }),
            cv: Condvar::new(),
            epoch: clock::now(),
            down: AtomicBool::new(false),
        });
        let mut spawned = 0;
        for worker in 0..workers {
            match spawn_process(&inner.spec) {
                Ok((proc, stdout)) => {
                    let mut st = inner.state.lock();
                    st.procs[worker] = Some(proc);
                    let generation = st.sup.generation(worker).unwrap_or(0);
                    let handle = spawn_reader(Arc::clone(&inner), worker, generation, stdout);
                    st.readers.push(handle);
                    spawned += 1;
                }
                Err(e) => {
                    let mut st = inner.state.lock();
                    let now = inner.epoch.elapsed().as_millis() as u64;
                    st.sup.lost(worker, now);
                    eprintln!("e2clab: farm: worker {worker} failed to spawn: {e}");
                }
            }
        }
        if spawned == 0 {
            return Err(format!(
                "no worker could be spawned ({} requested)",
                workers
            ));
        }
        let monitor = {
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || monitor_loop(&inner))
        };
        Ok(WorkerFarm {
            inner,
            monitor: Some(monitor),
        })
    }

    /// Run one attempt on some worker, blocking until it resolves.
    ///
    /// Waits for a free slot (the admission permit *is* the idle slot,
    /// so at most `workers` asks are in flight), ships the ask, and
    /// waits for the reply. A worker lost mid-ask is handled here:
    /// the ask transparently re-dispatches to another worker until the
    /// budget in [`FarmSpec::redispatch_budget`] is spent, at which
    /// point the attempt fails with [`TrialError::WorkerLost`] and the
    /// ordinary retry machinery takes over.
    ///
    /// On success the worker's trace buffer is spliced onto `tracer`
    /// (when given), reproducing byte-for-byte what an in-process traced
    /// attempt would have recorded.
    pub fn execute(
        &self,
        trial: u64,
        attempt: u32,
        config: &[f64],
        tracer: Option<&e2c_trace::Tracer>,
    ) -> Result<FarmOutcome, TrialError> {
        let mut redispatches = 0u32;
        loop {
            let ticket = self.dispatch(trial, attempt, config, tracer.is_some())?;
            let outcome = {
                let mut st = self.inner.state.lock();
                loop {
                    if let Some(o) = st.results.remove(&ticket) {
                        break o;
                    }
                    self.inner.cv.wait(&mut st);
                }
            };
            match outcome {
                AskOutcome::Value(parsed) => {
                    if let Some(tr) = tracer {
                        tr.splice(&parsed.events, parsed.end_clock);
                    }
                    return Ok(FarmOutcome::Value {
                        value: parsed.value,
                        aux: parsed.aux,
                    });
                }
                AskOutcome::Panicked(payload) => return Ok(FarmOutcome::Panicked { payload }),
                AskOutcome::Lost(reason) => {
                    redispatches += 1;
                    if redispatches > self.inner.spec.redispatch_budget {
                        return Err(TrialError::WorkerLost(format!(
                            "{reason} (re-dispatch budget of {} spent)",
                            self.inner.spec.redispatch_budget
                        )));
                    }
                    eprintln!(
                        "e2clab: farm: re-dispatching trial {trial} attempt {attempt} \
                         ({redispatches}/{})",
                        self.inner.spec.redispatch_budget
                    );
                }
            }
        }
    }

    /// Claim a slot and ship one ask; returns the ticket to wait on.
    fn dispatch(
        &self,
        trial: u64,
        attempt: u32,
        config: &[f64],
        traced: bool,
    ) -> Result<u64, TrialError> {
        let inner = &self.inner;
        let mut st = inner.state.lock();
        let (worker, ticket) = loop {
            if let Some(pair) = st.sup.try_assign(inner.now_ms()) {
                break pair;
            }
            if st.sup.all_lost() {
                return Err(TrialError::WorkerLost(format!(
                    "every worker is dead and the respawn budget is spent \
                     (trial {trial} attempt {attempt})"
                )));
            }
            inner.cv.wait(&mut st);
        };
        st.inflight.insert(ticket, (trial, attempt));
        let ask = WireMsg::Ask(WorkerAsk {
            trial,
            attempt,
            traced,
            config: config.to_vec(),
        });
        // Ask frames are tiny and at most one is outstanding per worker,
        // so this write cannot fill the pipe; holding the lock keeps the
        // dispatch counter and the chaos kill atomic with it.
        let wrote = match st.procs[worker].as_mut().and_then(|p| p.stdin.as_mut()) {
            Some(stdin) => write_frame(stdin, &ask).map_err(|e| e.to_string()),
            None => Err("its stdin is already closed".to_string()),
        };
        st.dispatched[worker] += 1;
        let generation = st.sup.generation(worker).unwrap_or(0);
        match wrote {
            Ok(()) => {
                if let Some((target, nth)) = inner.spec.kill_after {
                    if !st.kill_fired && target == worker && st.dispatched[worker] >= nth {
                        st.kill_fired = true;
                        if let Some(proc) = st.procs[worker].as_mut() {
                            eprintln!(
                                "e2clab: farm: chaos kill of worker {worker} after ask {nth}"
                            );
                            let _ = proc.child.kill();
                            // The reader sees EOF and routes the loss.
                        }
                    }
                }
                Ok(ticket)
            }
            Err(e) => {
                drop(st);
                inner.lose_worker(worker, generation, &format!("rejected an ask: {e}"));
                // The loss just resolved our ticket; hand it back so the
                // caller's wait loop picks up the Lost outcome.
                Ok(ticket)
            }
        }
    }
}

impl Drop for WorkerFarm {
    fn drop(&mut self) {
        self.inner.down.store(true, Ordering::SeqCst);
        let mut children = Vec::new();
        {
            let mut st = self.inner.state.lock();
            for proc in st.procs.iter_mut() {
                if let Some(mut p) = proc.take() {
                    if let Some(mut stdin) = p.stdin.take() {
                        let _ = write_frame(&mut stdin, &WireMsg::Shutdown);
                        // Dropping stdin closes the pipe: EOF backstops
                        // a worker that missed the frame.
                    }
                    children.push(p.child);
                }
            }
        }
        self.inner.cv.notify_all();
        // Grace period, then SIGKILL stragglers and reap everything.
        let deadline = clock::now() + Duration::from_millis(500);
        for child in &mut children {
            loop {
                match child.try_wait() {
                    Ok(Some(_)) => break,
                    Ok(None) if clock::now() >= deadline => {
                        let _ = child.kill();
                        let _ = child.wait();
                        break;
                    }
                    Ok(None) => {
                        // detlint: allow(DET004) shutdown drain pacing: bounded poll while reaping workers
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    Err(_) => break,
                }
            }
        }
        let readers = std::mem::take(&mut self.inner.state.lock().readers);
        for handle in readers {
            let _ = handle.join();
        }
        if let Some(monitor) = self.monitor.take() {
            let _ = monitor.join();
        }
    }
}

/// Spawn one worker process with a sanitized environment: everything is
/// cleared, then `PATH`/`HOME`/`TMPDIR` and the `E2C_*` knobs are pinned
/// back explicitly. A worker must see exactly the configuration the
/// parent chose for it — not whatever happened to be exported in the
/// launching shell (locale, `RUST_LOG`, allocator tweaks …), which made
/// farmed runs differ across hosts.
fn spawn_process(spec: &FarmSpec) -> Result<(Proc, ChildStdout), String> {
    let mut cmd = Command::new(&spec.program);
    cmd.args(&spec.args)
        .env_clear()
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit());
    for key in ["PATH", "HOME", "TMPDIR"] {
        if let Ok(value) = std::env::var(key) {
            cmd.env(key, value);
        }
    }
    for (key, value) in std::env::vars() {
        if key.starts_with("E2C_") {
            cmd.env(key, value);
        }
    }
    let mut child = cmd
        .spawn()
        .map_err(|e| format!("spawn {}: {e}", spec.program.display()))?;
    let stdin = child.stdin.take().ok_or("worker stdin not piped")?;
    let stdout = child.stdout.take().ok_or("worker stdout not piped")?;
    Ok((
        Proc {
            child,
            stdin: Some(stdin),
        },
        stdout,
    ))
}

/// Per-incarnation reader: parses frames off one worker's stdout and
/// routes them. Any protocol violation — bad CRC, unparseable record,
/// frames only the tuner may send, an undecodable trace event — is a
/// lost worker, not a guess.
fn spawn_reader(
    inner: Arc<FarmInner>,
    worker: usize,
    generation: u64,
    stdout: ChildStdout,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        let mut reader = BufReader::new(stdout);
        loop {
            match read_frame(&mut reader) {
                Ok(Some(WireMsg::Hello { version })) => {
                    if version != PROTOCOL_VERSION {
                        inner.lose_worker(
                            worker,
                            generation,
                            &format!(
                                "spoke protocol version {version} (expected {PROTOCOL_VERSION})"
                            ),
                        );
                        return;
                    }
                    let now = inner.now_ms();
                    let mut st = inner.state.lock();
                    if st.sup.generation(worker) == Some(generation) {
                        st.sup.heartbeat(worker, now);
                    }
                }
                Ok(Some(WireMsg::Heartbeat { .. })) => {
                    let now = inner.now_ms();
                    let mut st = inner.state.lock();
                    if st.sup.generation(worker) == Some(generation) {
                        st.sup.heartbeat(worker, now);
                    }
                }
                Ok(Some(WireMsg::ResultOk {
                    trial,
                    attempt,
                    reply,
                })) => {
                    // Decode trace events outside the lock; a worker that
                    // ships undecodable events is lost, not trusted.
                    let events: Result<Vec<_>, String> = reply
                        .events
                        .iter()
                        .map(|(json, ticked)| {
                            e2c_trace::TraceEvent::from_json(json).map(|ev| (ev, *ticked))
                        })
                        .collect();
                    let events = match events {
                        Ok(events) => events,
                        Err(e) => {
                            inner.lose_worker(
                                worker,
                                generation,
                                &format!("shipped an undecodable trace event: {e}"),
                            );
                            return;
                        }
                    };
                    let parsed = ParsedReply {
                        value: reply.value,
                        aux: reply.aux,
                        events,
                        end_clock: reply.end_clock,
                    };
                    if !route_result(&inner, worker, generation, trial, attempt, || {
                        AskOutcome::Value(parsed)
                    }) {
                        return;
                    }
                }
                Ok(Some(WireMsg::ResultPanic {
                    trial,
                    attempt,
                    payload,
                })) => {
                    if !route_result(&inner, worker, generation, trial, attempt, || {
                        AskOutcome::Panicked(payload)
                    }) {
                        return;
                    }
                }
                Ok(Some(WireMsg::Ask(_))) | Ok(Some(WireMsg::Shutdown)) => {
                    inner.lose_worker(worker, generation, "spoke a tuner-side frame");
                    return;
                }
                Ok(None) => {
                    if !inner.down.load(Ordering::SeqCst) {
                        inner.lose_worker(worker, generation, "exited (EOF on its result stream)");
                    }
                    return;
                }
                Err(e) => {
                    if !inner.down.load(Ordering::SeqCst) {
                        inner.lose_worker(
                            worker,
                            generation,
                            &format!("spoke protocol garbage: {e}"),
                        );
                    }
                    return;
                }
            }
        }
    })
}

/// Resolve the slot's outstanding ticket with `outcome` if the reply
/// matches what we dispatched; a mismatched reply is protocol garbage.
/// Returns whether the reader should keep going.
fn route_result(
    inner: &FarmInner,
    worker: usize,
    generation: u64,
    trial: u64,
    attempt: u32,
    outcome: impl FnOnce() -> AskOutcome,
) -> bool {
    let now = inner.now_ms();
    let mut st = inner.state.lock();
    if st.sup.generation(worker) != Some(generation) {
        return false; // stale incarnation; a newer process owns the slot
    }
    let ticket = match st.sup.state(worker) {
        Some(SlotState::Busy { ticket }) => ticket,
        _ => {
            drop(st);
            inner.lose_worker(worker, generation, "sent a result while idle");
            return false;
        }
    };
    if st.inflight.get(&ticket) != Some(&(trial, attempt)) {
        drop(st);
        inner.lose_worker(
            worker,
            generation,
            &format!("answered for trial {trial} attempt {attempt}, which it was not asked"),
        );
        return false;
    }
    if st.sup.complete(worker, ticket, now).is_ok() {
        st.inflight.remove(&ticket);
        st.results.insert(ticket, outcome());
        inner.cv.notify_all();
    }
    true
}

/// Stall sweeps and respawns, every 50 ms until shutdown.
fn monitor_loop(inner: &Arc<FarmInner>) {
    while !inner.down.load(Ordering::SeqCst) {
        // detlint: allow(DET004) supervision cadence: paces stall sweeps and respawns only; no result or decision reads this timing
        std::thread::sleep(Duration::from_millis(50));
        let now = inner.now_ms();
        let (stalled, due) = {
            let st = inner.state.lock();
            (st.sup.stalled(now), st.sup.due_respawns(now))
        };
        for worker in stalled {
            let generation = inner.state.lock().sup.generation(worker).unwrap_or(0);
            inner.lose_worker(worker, generation, "missed its heartbeat deadline");
        }
        for worker in due {
            if inner.down.load(Ordering::SeqCst) {
                break;
            }
            match spawn_process(&inner.spec) {
                Ok((mut proc, stdout)) => {
                    let mut st = inner.state.lock();
                    if !matches!(st.sup.state(worker), Some(SlotState::Dead { .. })) {
                        // Someone revived the slot meanwhile; reap the
                        // spare process instead of leaking it.
                        drop(st);
                        let _ = proc.child.kill();
                        let _ = proc.child.wait();
                        continue;
                    }
                    st.sup.respawned(worker, inner.now_ms());
                    let generation = st.sup.generation(worker).unwrap_or(0);
                    st.procs[worker] = Some(proc);
                    let handle = spawn_reader(Arc::clone(inner), worker, generation, stdout);
                    st.readers.push(handle);
                    eprintln!("e2clab: farm: respawned worker {worker} (generation {generation})");
                    inner.cv.notify_all();
                }
                Err(e) => {
                    // Burn one respawn and fall back into Dead with the
                    // next backoff (or terminally, if the budget is out).
                    let mut st = inner.state.lock();
                    let now = inner.now_ms();
                    st.sup.respawned(worker, now);
                    st.sup.lost(worker, now);
                    eprintln!("e2clab: farm: worker {worker} failed to respawn: {e}");
                    inner.cv.notify_all();
                }
            }
        }
    }
}
