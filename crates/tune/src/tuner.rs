//! The parallel trial runner.
//!
//! [`Tuner::run`] is the analogue of the paper's `tune.run(...)` call
//! (Listing 1): it pulls configurations from a [`Searcher`], executes the
//! user objective on a pool of worker threads, feeds results back
//! asynchronously, and lets a [`Scheduler`] stop hopeless trials early.
//!
//! On real edge-to-cloud testbeds trial failures are routine, so the
//! runner is fault tolerant: failed attempts are retried under a
//! [`RetryPolicy`] (with seed-deterministic backoff jitter), every trial
//! can carry a wall-clock `time_budget` enforced cooperatively through
//! [`TrialContext`] plus a watchdog thread, and a [`FaultPlan`] injects
//! deterministic failures so the robustness layer is itself testable.

use crate::analysis::Analysis;
use crate::clock;
use crate::fault::{FaultAction, FaultPlan, RetryPolicy};
use crate::journal::{ResumeState, RunEvent, RunJournal};
use crate::scheduler::{Decision, Scheduler};
use crate::searcher::Searcher;
use crate::trial::{Attempt, Trial, TrialError, TrialStatus};
use e2c_optim::space::Point;
use e2c_trace::Fields;
use parking_lot::{Condvar, Mutex};
use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How often the watchdog sweeps running attempts for blown deadlines.
const WATCHDOG_TICK: Duration = Duration::from_millis(2);

/// Safety-net timeout for suggestion-starved workers: they are woken by
/// `observe()`, but re-check this often so exhaustion can never stall.
const SUGGEST_WAIT: Duration = Duration::from_millis(50);

/// Optimization direction of the user metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Smaller metric is better (`mode="min"`).
    Min,
    /// Larger metric is better (`mode="max"`).
    Max,
}

/// Handle given to the objective for intermediate reporting.
///
/// Call [`TrialContext::report`] once per training iteration / evaluation
/// window; a [`Decision::Stop`] means the scheduler cut the trial (or its
/// deadline passed) — return your current metric value promptly.
pub struct TrialContext<'a> {
    /// This trial's id.
    pub trial_id: u64,
    /// 0-based execution attempt (> 0 when the retry layer re-runs a
    /// failed trial).
    pub attempt: u32,
    mode: Mode,
    scheduler: &'a dyn Scheduler,
    journal: Option<&'a RunJournal>,
    reports: Vec<(u64, f64)>,
    stopped: bool,
    deadline: Option<Instant>,
    expired: Arc<AtomicBool>,
}

impl<'a> TrialContext<'a> {
    /// Report an intermediate metric value (user orientation); returns the
    /// scheduler's verdict. Once the trial's deadline has passed this
    /// returns [`Decision::Stop`] without consulting the scheduler.
    pub fn report(&mut self, value: f64) -> Decision {
        if self.deadline_exceeded() {
            return Decision::Stop;
        }
        let iteration = self.reports.len() as u64 + 1;
        self.reports.push((iteration, value));
        let normalized = match self.mode {
            Mode::Min => value,
            Mode::Max => -value,
        };
        let d = self
            .scheduler
            .on_report(self.trial_id, iteration, normalized);
        if d == Decision::Stop {
            self.stopped = true;
        }
        // Journal the report *with* the scheduler's verdict so resume can
        // verify the replayed scheduler reproduces every decision.
        // Deadline-shortcut stops above never consult the scheduler and
        // are not journaled (the re-run regenerates them).
        if let Some(j) = self.journal {
            j.append(&RunEvent::Report {
                trial: self.trial_id,
                iteration,
                normalized,
                stop: d == Decision::Stop,
            });
        }
        d
    }

    /// Whether the scheduler already stopped this trial.
    pub fn is_stopped(&self) -> bool {
        self.stopped
    }

    /// Whether this attempt's wall-clock budget is spent (flagged by the
    /// watchdog, or observed directly). Cooperative objectives should
    /// check this in long loops and return promptly when it turns true;
    /// the attempt is then marked `Failed("deadline exceeded")`.
    pub fn deadline_exceeded(&self) -> bool {
        if self.expired.load(Ordering::SeqCst) {
            return true;
        }
        match self.deadline {
            Some(d) if clock::now() >= d => {
                self.expired.store(true, Ordering::SeqCst);
                true
            }
            _ => false,
        }
    }
}

/// A running attempt the watchdog is timing.
struct WatchEntry {
    deadline: Instant,
    expired: Arc<AtomicBool>,
}

/// Parking spot for suggestion-starved workers: instead of spinning on
/// `suggest()`, they wait here until an `observe()` bumps the generation.
struct Wake {
    generation: Mutex<u64>,
    cv: Condvar,
}

impl Wake {
    fn new() -> Self {
        Wake {
            generation: Mutex::new(0),
            cv: Condvar::new(),
        }
    }

    fn generation(&self) -> u64 {
        *self.generation.lock()
    }

    fn notify(&self) {
        *self.generation.lock() += 1;
        self.cv.notify_all();
    }

    /// Park until the generation moves past `seen`, or `timeout` elapses
    /// (the timeout is a safety net for exhaustion paths, not a poll).
    fn wait_past(&self, seen: u64, timeout: Duration) {
        let mut generation = self.generation.lock();
        if *generation != seen {
            return;
        }
        self.cv.wait_for(&mut generation, timeout);
    }
}

/// Runs trials in parallel until the sample budget is spent.
pub struct Tuner {
    /// Total number of trials (`num_samples`).
    pub num_samples: usize,
    /// Worker threads executing objectives concurrently. Note the
    /// *searcher-side* concurrency cap is the [`ConcurrencyLimiter`]'s
    /// job (`crate::searcher::ConcurrencyLimiter`); workers beyond the cap
    /// simply wait.
    pub workers: usize,
    /// Metric direction.
    pub mode: Mode,
    /// Metric name (for the analysis/report).
    pub metric: String,
    /// Experiment name (for the analysis/report).
    pub name: String,
    /// Retry policy for failed attempts (default: none — a failed attempt
    /// fails the trial).
    pub retry: RetryPolicy,
    /// Per-trial wall-clock budget (default: unlimited).
    pub time_budget: Option<Duration>,
    /// Deterministic failure injection (default: empty).
    pub faults: FaultPlan,
    /// Experiment seed; drives the retry backoff jitter.
    pub seed: u64,
    /// Optional trace sink for the worker lifecycle (ask → execute →
    /// retry/fault → tell), keyed by the tracer's virtual clock.
    pub tracer: Option<e2c_trace::Tracer>,
    /// Optional write-ahead run journal: every ask/report/attempt/tell is
    /// appended (fsync'd) before the run proceeds, making the run
    /// crash-resumable.
    pub journal: Option<RunJournal>,
    /// State recovered by [`crate::journal::replay`] when resuming a
    /// journaled run: settled trials, dangling trials to re-execute, and
    /// the continuation id.
    pub resume: Option<ResumeState>,
}

impl Tuner {
    /// A tuner with the given budget, worker count and direction.
    pub fn new(num_samples: usize, workers: usize, mode: Mode) -> Self {
        assert!(num_samples > 0, "num_samples must be positive");
        assert!(workers > 0, "workers must be positive");
        Tuner {
            num_samples,
            workers,
            mode,
            metric: "objective".to_string(),
            name: "experiment".to_string(),
            retry: RetryPolicy::none(),
            time_budget: None,
            faults: FaultPlan::new(),
            seed: 0,
            tracer: None,
            journal: None,
            resume: None,
        }
    }

    /// Set the metric name.
    pub fn metric(mut self, metric: &str) -> Self {
        self.metric = metric.to_string();
        self
    }

    /// Set the experiment name.
    pub fn name(mut self, name: &str) -> Self {
        self.name = name.to_string();
        self
    }

    /// Set the retry policy for failed attempts.
    pub fn retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Set the per-trial wall-clock budget.
    pub fn time_budget(mut self, budget: Duration) -> Self {
        self.time_budget = Some(budget);
        self
    }

    /// Install a failure-injection plan.
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Set the experiment seed (backoff jitter determinism).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Attach a tracer recording the worker lifecycle.
    pub fn trace(mut self, tracer: e2c_trace::Tracer) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// Attach a write-ahead run journal (crash safety).
    pub fn journal(mut self, journal: RunJournal) -> Self {
        self.journal = Some(journal);
        self
    }

    /// Continue from replayed journal state instead of starting fresh.
    pub fn resume(mut self, resume: ResumeState) -> Self {
        self.resume = Some(resume);
        self
    }

    /// Execute the experiment. The objective receives the configuration
    /// and a [`TrialContext`]; it returns the final metric value (user
    /// orientation). Panicking, non-finite or deadline-overrunning
    /// attempts are retried under the [`RetryPolicy`]; only when every
    /// attempt fails is the trial marked failed and the searcher fed a
    /// large penalty so Bayesian search avoids the region while its
    /// in-flight bookkeeping stays consistent.
    pub fn run<F>(
        &self,
        searcher: Box<dyn Searcher>,
        scheduler: Arc<dyn Scheduler>,
        objective: F,
    ) -> Analysis
    where
        F: Fn(&Point, &mut TrialContext<'_>) -> f64 + Send + Sync,
    {
        let resume = self.resume.clone().unwrap_or_else(ResumeState::empty);
        let searcher = Mutex::new(searcher);
        let trials: Mutex<Vec<Trial>> = Mutex::new(resume.trials);
        let next_id = AtomicU64::new(resume.next_id);
        let worst_seen = Mutex::new(resume.worst_seen);
        // Dangling trials from a resumed journal: asked pre-crash but
        // never settled. They re-execute from attempt 0 with their
        // journaled configuration (no fresh suggest — the replay already
        // advanced the searcher past their asks).
        let pending: Mutex<VecDeque<(u64, Point)>> =
            Mutex::new(resume.pending.into_iter().collect());
        let exhausted = AtomicBool::new(false);
        let live_workers = AtomicUsize::new(self.workers);
        let wake = Wake::new();
        // BTreeMap, not HashMap: the watchdog iterates this map, and even
        // though expiry flags are commutative, keeping every iterated
        // collection ordered is this workspace's determinism baseline.
        let watch: Mutex<BTreeMap<u64, WatchEntry>> = Mutex::new(BTreeMap::new());
        let objective = &objective;
        let scheduler = &*scheduler;
        let tracer = self.tracer.as_ref();
        let journal = self.journal.as_ref();
        let (searcher, trials, worst_seen) = (&searcher, &trials, &worst_seen);
        let (next_id, exhausted, live_workers) = (&next_id, &exhausted, &live_workers);
        let (wake, watch, pending) = (&wake, &watch, &pending);

        crossbeam::thread::scope(|scope| {
            // Deadline watchdog: sweeps running attempts and flags the
            // overdue ones so cooperative objectives bail out promptly.
            if self.time_budget.is_some() {
                scope.spawn(move |_| {
                    while live_workers.load(Ordering::SeqCst) > 0 {
                        let now = clock::now();
                        for entry in watch.lock().values() {
                            if now >= entry.deadline {
                                entry.expired.store(true, Ordering::SeqCst);
                            }
                        }
                        // detlint: allow(DET004) watchdog cadence: paces deadline sweeps only; no result or decision reads this timing
                        std::thread::sleep(WATCHDOG_TICK);
                    }
                });
            }
            for _ in 0..self.workers {
                scope.spawn(move |_| {
                    let work = || loop {
                        // Dangling trials of a resumed run come first;
                        // their configurations are already journaled, so
                        // re-execution starts with a Restart marker that
                        // tells future replays to discard the pre-crash
                        // partial records.
                        let resumed = pending.lock().pop_front();
                        let (id, config) = if let Some((id, config)) = resumed {
                            if let Some(j) = journal {
                                j.append(&RunEvent::Restart { trial: id });
                            }
                            (id, config)
                        } else {
                            let id = next_id.fetch_add(1, Ordering::SeqCst);
                            if id >= self.num_samples as u64 {
                                return;
                            }
                            // Obtain a suggestion, waiting out concurrency
                            // limits parked on the condvar (woken by
                            // observe).
                            let config = loop {
                                if exhausted.load(Ordering::SeqCst) {
                                    return;
                                }
                                let seen = wake.generation();
                                let suggestion = {
                                    let mut s = searcher.lock();
                                    match catch_unwind(AssertUnwindSafe(|| s.suggest(id))) {
                                        Ok(p) => {
                                            // Journal the ask under the
                                            // searcher lock: journal order
                                            // must equal RNG draw order.
                                            if let (Some(j), Some(p)) = (journal, p.as_ref()) {
                                                j.append(&RunEvent::Ask {
                                                    trial: id,
                                                    config: p.clone(),
                                                });
                                            }
                                            p
                                        }
                                        Err(_) => {
                                            // A panicking searcher cannot
                                            // drive the run further; wind
                                            // down instead of poisoning
                                            // every worker.
                                            exhausted.store(true, Ordering::SeqCst);
                                            wake.notify();
                                            return;
                                        }
                                    }
                                };
                                match suggestion {
                                    Some(p) => break p,
                                    None => {
                                        // Either concurrency-limited (an
                                        // observe will wake us) or the
                                        // searcher is done. A grid that ran
                                        // dry while nothing is running can
                                        // never produce again.
                                        let nothing_running = {
                                            let t = trials.lock();
                                            t.iter().all(|tr| tr.status.is_finished())
                                        };
                                        if nothing_running {
                                            exhausted.store(true, Ordering::SeqCst);
                                            wake.notify();
                                            return;
                                        }
                                        wake.wait_past(seen, SUGGEST_WAIT);
                                    }
                                }
                            };
                            (id, config)
                        };
                        if let Some(tr) = tracer {
                            tr.point(
                                "searcher",
                                "ask",
                                Some(id),
                                e2c_trace::fields([("config", fmt_point(&config).into())]),
                            );
                        }
                        {
                            let mut t = trials.lock();
                            let mut trial = Trial::new(id, config.clone());
                            trial.status = TrialStatus::Running;
                            t.push(trial);
                        }
                        let exec_span =
                            tracer.map(|tr| tr.begin("tuner", "execute", Some(id), Fields::new()));
                        // Attempt loop: run, classify, retry while the
                        // policy allows, then settle the trial.
                        let mut attempts: Vec<Attempt> = Vec::new();
                        let mut reports: Vec<(u64, f64)>;
                        let (status, feedback) = loop {
                            let attempt = attempts.len() as u32;
                            let expired = Arc::new(AtomicBool::new(false));
                            let deadline = self.time_budget.map(|b| clock::now() + b);
                            if let Some(d) = deadline {
                                watch.lock().insert(
                                    id,
                                    WatchEntry {
                                        deadline: d,
                                        expired: expired.clone(),
                                    },
                                );
                            }
                            let mut ctx = TrialContext {
                                trial_id: id,
                                attempt,
                                mode: self.mode,
                                scheduler,
                                journal,
                                reports: Vec::new(),
                                stopped: false,
                                deadline,
                                expired: expired.clone(),
                            };
                            let started = clock::now();
                            let fault = self.faults.lookup(id, attempt);
                            if let Some(tr) = tracer {
                                let mut f =
                                    e2c_trace::fields([("attempt", u64::from(attempt).into())]);
                                if let Some(action) = &fault {
                                    let kind = match action {
                                        FaultAction::Fail => "fail",
                                        FaultAction::Nan => "nan",
                                        FaultAction::Delay(_) => "delay",
                                    };
                                    f.insert("fault".to_string(), kind.into());
                                }
                                tr.point("tuner", "attempt", Some(id), f);
                            }
                            // Whether the user objective actually runs for
                            // this attempt (injected Fail/Nan short-circuit
                            // it). The journaled `raw` value mirrors this:
                            // it carries exactly the objective returns an
                            // uninterrupted run would have produced.
                            let invoked = matches!(fault, None | Some(FaultAction::Delay(_)));
                            let outcome: Result<f64, TrialError> = match fault {
                                Some(FaultAction::Fail) => Err(TrialError::Injected(format!(
                                    "injected fault: fail (attempt {attempt})"
                                ))),
                                Some(FaultAction::Nan) => Ok(f64::NAN),
                                Some(FaultAction::Delay(d)) => {
                                    // detlint: allow(DET004) injected-fault delay: reproduces a configured, deterministic slowdown
                                    std::thread::sleep(d);
                                    run_objective(objective, &config, &mut ctx)
                                }
                                None => run_objective(objective, &config, &mut ctx),
                            };
                            if deadline.is_some() {
                                watch.lock().remove(&id);
                            }
                            let secs = started.elapsed().as_secs_f64();
                            let overran = expired.load(Ordering::SeqCst)
                                || deadline.is_some_and(|d| clock::now() >= d);
                            let stopped = ctx.stopped;
                            reports = ctx.reports;
                            let raw = if invoked {
                                outcome.as_ref().ok().copied()
                            } else {
                                None
                            };
                            let (error, value) = if overran {
                                (Some(TrialError::DeadlineExceeded), None)
                            } else {
                                match outcome {
                                    Ok(v) if v.is_finite() => (None, Some(v)),
                                    Ok(v) => (Some(TrialError::NonFinite(format!("{v}"))), None),
                                    Err(e) => (Some(e), None),
                                }
                            };
                            attempts.push(Attempt {
                                index: attempt,
                                error: error.clone(),
                                secs,
                            });
                            if let Some(j) = journal {
                                j.append(&RunEvent::Attempt {
                                    trial: id,
                                    index: attempt,
                                    secs,
                                    raw,
                                    error: error.clone(),
                                });
                            }
                            if let (Some(tr), Some(e)) = (tracer, &error) {
                                tr.point(
                                    "tuner",
                                    "attempt_failed",
                                    Some(id),
                                    e2c_trace::fields([
                                        ("attempt", u64::from(attempt).into()),
                                        ("error", e.to_string().into()),
                                    ]),
                                );
                            }
                            if let Some(value) = value {
                                let normalized = match self.mode {
                                    Mode::Min => value,
                                    Mode::Max => -value,
                                };
                                {
                                    let mut worst = worst_seen.lock();
                                    *worst = worst.max(normalized);
                                }
                                let status = if stopped {
                                    TrialStatus::StoppedEarly(value)
                                } else {
                                    TrialStatus::Terminated(value)
                                };
                                break (status, normalized);
                            }
                            let reason = error.map(|e| e.to_string()).unwrap_or_default();
                            if attempts.len() as u32 >= self.retry.max_attempts() {
                                let penalty = self.failure_penalty(worst_seen);
                                break (TrialStatus::Failed(reason), penalty);
                            }
                            let delay = self.retry.backoff(self.seed, id, attempt);
                            if let Some(tr) = tracer {
                                tr.point(
                                    "tuner",
                                    "retry",
                                    Some(id),
                                    e2c_trace::fields([(
                                        "delay_ms",
                                        (delay.as_millis() as u64).into(),
                                    )]),
                                );
                                // Account for the backoff in virtual time
                                // (the delay itself is seed-deterministic).
                                tr.advance(delay.as_millis() as u64);
                            }
                            if !delay.is_zero() {
                                // detlint: allow(DET004) retry backoff: delay length is seed-deterministic and never feeds the metric
                                std::thread::sleep(delay);
                            }
                        };
                        if let Some(tr) = tracer {
                            let outcome = match &status {
                                TrialStatus::Terminated(_) => "terminated",
                                TrialStatus::StoppedEarly(_) => "stopped_early",
                                TrialStatus::Failed(_) => "failed",
                                TrialStatus::Pending | TrialStatus::Running => "running",
                            };
                            tr.end(
                                "tuner",
                                "execute",
                                Some(id),
                                exec_span.expect("span opened with tracer"),
                                e2c_trace::fields([
                                    ("attempts", attempts.len().into()),
                                    ("outcome", outcome.into()),
                                ]),
                            );
                        }
                        // A panicking searcher must not poison the run: the
                        // trial is marked failed and the run winds down
                        // with every settled result intact.
                        let observed = {
                            let mut s = searcher.lock();
                            catch_unwind(AssertUnwindSafe(|| s.observe(id, feedback)))
                        };
                        let status = match observed {
                            Ok(()) => {
                                if let Some(tr) = tracer {
                                    tr.point(
                                        "searcher",
                                        "tell",
                                        Some(id),
                                        e2c_trace::fields([("value", feedback.into())]),
                                    );
                                }
                                if let Some(j) = journal {
                                    let token = match &status {
                                        TrialStatus::StoppedEarly(_) => "stopped_early",
                                        TrialStatus::Failed(_) => "failed",
                                        _ => "terminated",
                                    };
                                    // The trace mark taken *after* the tell
                                    // point: resume truncates the streamed
                                    // trace here and restores the virtual
                                    // clock, so re-executed trials land on
                                    // the same (seq, vt) slots.
                                    let trace_mark = tracer.map(|tr| (tr.len() as u64, tr.now()));
                                    j.append(&RunEvent::Tell {
                                        trial: id,
                                        feedback,
                                        status: token.to_string(),
                                        value: status.value(),
                                        trace_mark,
                                    });
                                }
                                status
                            }
                            Err(panic) => {
                                exhausted.store(true, Ordering::SeqCst);
                                TrialStatus::Failed(
                                    TrialError::Panicked(format!(
                                        "searcher observe panicked: {}",
                                        panic_message(panic.as_ref(), "observe panicked")
                                    ))
                                    .to_string(),
                                )
                            }
                        };
                        wake.notify();
                        {
                            let mut t = trials.lock();
                            let trial = t
                                .iter_mut()
                                .find(|tr| tr.id == id)
                                .expect("trial recorded at start");
                            trial.reports = reports;
                            trial.attempts = attempts;
                            trial.status = status;
                        }
                    };
                    work();
                    live_workers.fetch_sub(1, Ordering::SeqCst);
                });
            }
        })
        .expect("worker thread panicked outside catch_unwind");

        let mut trials = std::mem::take(&mut *trials.lock());
        trials.sort_by_key(|t| t.id);
        Analysis::new(self.name.clone(), self.metric.clone(), self.mode, trials)
    }

    /// Penalty fed to the searcher for failed trials: decisively worse
    /// than anything observed, but finite.
    fn failure_penalty(&self, worst_seen: &Mutex<f64>) -> f64 {
        let worst = *worst_seen.lock();
        if worst.is_finite() {
            worst + worst.abs().max(1.0)
        } else {
            1e6
        }
    }
}

/// Compact, deterministic rendering of a configuration for trace events.
fn fmt_point(p: &Point) -> String {
    let mut out = String::new();
    for (i, v) in p.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{v}"));
    }
    out
}

/// Extract a printable message from a caught panic payload.
fn panic_message(panic: &(dyn std::any::Any + Send), fallback: &str) -> String {
    panic
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| panic.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| fallback.to_string())
}

/// Run the user objective, converting panics into typed errors.
fn run_objective<F>(
    objective: &F,
    config: &Point,
    ctx: &mut TrialContext<'_>,
) -> Result<f64, TrialError>
where
    F: Fn(&Point, &mut TrialContext<'_>) -> f64 + Send + Sync,
{
    catch_unwind(AssertUnwindSafe(|| objective(config, ctx)))
        .map_err(|panic| TrialError::Panicked(panic_message(panic.as_ref(), "objective panicked")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{AsyncHyperBand, Fifo};
    use crate::searcher::{ConcurrencyLimiter, GridSearch, RandomSearch, SkOptSearch};
    use e2c_optim::bayes::BayesOpt;
    use e2c_optim::space::Space;

    fn space() -> Space {
        Space::new().int("x", 0, 20)
    }

    /// A fast retry policy for tests (no real-time backoff).
    fn fast_retries(n: u32) -> RetryPolicy {
        RetryPolicy::retries(n)
            .base_delay(Duration::from_millis(1))
            .max_delay(Duration::from_millis(2))
    }

    #[test]
    fn runs_exact_sample_budget() {
        let tuner = Tuner::new(12, 4, Mode::Min);
        let analysis = tuner.run(
            Box::new(RandomSearch::new(space(), 3)),
            Arc::new(Fifo),
            |cfg, _ctx| (cfg[0] - 7.0).powi(2),
        );
        assert_eq!(analysis.trials().len(), 12);
        assert!(analysis.trials().iter().all(|t| t.status.is_finished()));
        // Exactly one successful attempt per trial.
        assert!(analysis
            .trials()
            .iter()
            .all(|t| t.attempt_count() == 1 && t.retries() == 0));
    }

    #[test]
    fn finds_minimum_with_bayes_search() {
        let searcher = SkOptSearch::new(BayesOpt::new(space(), 11).n_initial_points(6));
        let tuner = Tuner::new(25, 3, Mode::Min).metric("sq");
        let analysis = tuner.run(
            Box::new(ConcurrencyLimiter::new(searcher, 3)),
            Arc::new(Fifo),
            |cfg, _| (cfg[0] - 13.0).powi(2),
        );
        let best = analysis.best_trial().unwrap();
        assert!(
            best.value().unwrap() <= 1.0,
            "best {:?} = {:?}",
            best.config,
            best.value()
        );
    }

    #[test]
    fn max_mode_maximizes() {
        let tuner = Tuner::new(20, 2, Mode::Max);
        let analysis = tuner.run(
            Box::new(RandomSearch::new(space(), 5)),
            Arc::new(Fifo),
            |cfg, _| -((cfg[0] - 4.0).powi(2)),
        );
        let best = analysis.best_trial().unwrap();
        // Maximum of -(x-4)^2 is 0 at x=4.
        assert!(best.value().unwrap() >= -4.0, "{best:?}");
    }

    #[test]
    fn grid_exhaustion_terminates_cleanly() {
        let points = vec![vec![1.0], vec![2.0], vec![3.0]];
        let tuner = Tuner::new(10, 4, Mode::Min); // budget exceeds the grid
        let analysis = tuner.run(
            Box::new(GridSearch::from_points(space(), points)),
            Arc::new(Fifo),
            |cfg, _| cfg[0],
        );
        assert_eq!(analysis.trials().len(), 3);
        assert_eq!(analysis.best_trial().unwrap().value(), Some(1.0));
    }

    #[test]
    fn concurrency_limit_is_respected() {
        let running = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let searcher = ConcurrencyLimiter::new(RandomSearch::new(space(), 9), 2);
        let tuner = Tuner::new(10, 6, Mode::Min); // more workers than cap
        let (running2, peak2) = (running.clone(), peak.clone());
        tuner.run(Box::new(searcher), Arc::new(Fifo), move |cfg, _| {
            let now = running2.fetch_add(1, Ordering::SeqCst) + 1;
            peak2.fetch_max(now, Ordering::SeqCst);
            // detlint: allow(DET004) test objective: holds a worker busy so the limiter's peak is observable
            std::thread::sleep(std::time::Duration::from_millis(5));
            running2.fetch_sub(1, Ordering::SeqCst);
            cfg[0]
        });
        assert!(
            peak.load(Ordering::SeqCst) <= 2,
            "peak concurrency {} exceeded the limiter",
            peak.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn scheduler_stops_bad_trials() {
        // Trials report their (constant) value 8 times; ASHA with rf=2 must
        // stop a decent share of the bad half early.
        let tuner = Tuner::new(24, 4, Mode::Min);
        let scheduler = Arc::new(AsyncHyperBand::new(1, 2, 8));
        let analysis = tuner.run(
            Box::new(RandomSearch::new(space(), 17)),
            scheduler,
            |cfg, ctx| {
                let value = cfg[0];
                for _ in 0..8 {
                    if ctx.report(value) == Decision::Stop {
                        break;
                    }
                }
                value
            },
        );
        let stopped = analysis
            .trials()
            .iter()
            .filter(|t| t.stopped_early())
            .count();
        assert!(stopped > 0, "ASHA never stopped anything");
        // Early-stopped trials must have fewer reports than survivors' max.
        let max_full = analysis
            .trials()
            .iter()
            .filter(|t| !t.stopped_early())
            .map(|t| t.iterations())
            .max()
            .unwrap();
        for t in analysis.trials().iter().filter(|t| t.stopped_early()) {
            assert!(t.iterations() < max_full);
        }
    }

    #[test]
    fn panicking_objective_marks_failed_and_continues() {
        // Seed chosen so the stream draws points on both sides of the
        // panic threshold (5 of 10 below, 5 at or above).
        let tuner = Tuner::new(10, 2, Mode::Min);
        let analysis = tuner.run(
            Box::new(RandomSearch::new(space(), 13)),
            Arc::new(Fifo),
            |cfg, _| {
                if cfg[0] < 5.0 {
                    panic!("boom at {}", cfg[0]);
                }
                cfg[0]
            },
        );
        assert_eq!(analysis.trials().len(), 10);
        let failed = analysis
            .trials()
            .iter()
            .filter(|t| matches!(t.status, TrialStatus::Failed(_)))
            .count();
        assert!(failed > 0, "expected some failures with seed 13");
        // Best trial is a successful one.
        assert!(analysis.best_trial().unwrap().value().is_some());
    }

    #[test]
    fn non_finite_metric_marks_failed() {
        let tuner = Tuner::new(4, 1, Mode::Min);
        let analysis = tuner.run(
            Box::new(GridSearch::from_points(
                space(),
                vec![vec![1.0], vec![2.0], vec![3.0], vec![4.0]],
            )),
            Arc::new(Fifo),
            |cfg, _| if cfg[0] == 2.0 { f64::NAN } else { cfg[0] },
        );
        let failed: Vec<u64> = analysis
            .trials()
            .iter()
            .filter(|t| matches!(t.status, TrialStatus::Failed(_)))
            .map(|t| t.id)
            .collect();
        assert_eq!(failed.len(), 1);
        assert_eq!(analysis.best_trial().unwrap().value(), Some(1.0));
    }

    #[test]
    fn injected_failure_recovers_on_retry_with_true_metric() {
        // Trial 1 panics on its first attempt only; with one retry it must
        // end Terminated with its *real* metric, not a penalty, and both
        // attempts must be on the record.
        let tuner = Tuner::new(3, 1, Mode::Min)
            .retry_policy(fast_retries(1))
            .faults(FaultPlan::new().fail(1, 0));
        let analysis = tuner.run(
            Box::new(GridSearch::from_points(
                space(),
                vec![vec![4.0], vec![2.0], vec![6.0]],
            )),
            Arc::new(Fifo),
            |cfg, _| cfg[0],
        );
        let flaky = &analysis.trials()[1];
        assert_eq!(flaky.status, TrialStatus::Terminated(2.0));
        assert_eq!(flaky.attempt_count(), 2);
        assert_eq!(flaky.retries(), 1);
        assert!(!flaky.attempts[0].succeeded());
        assert_eq!(
            flaky.attempts[0].error,
            Some(TrialError::Injected(
                "injected fault: fail (attempt 0)".into()
            ))
        );
        assert!(flaky.attempts[1].succeeded());
        // The flaky trial's true value wins the experiment.
        assert_eq!(analysis.best_trial().unwrap().id, 1);
    }

    #[test]
    fn retries_exhausted_marks_failed_with_last_reason() {
        let tuner = Tuner::new(2, 1, Mode::Min)
            .retry_policy(fast_retries(2))
            .faults(FaultPlan::new().fail_always(0));
        let analysis = tuner.run(
            Box::new(GridSearch::from_points(space(), vec![vec![1.0], vec![2.0]])),
            Arc::new(Fifo),
            |cfg, _| cfg[0],
        );
        let doomed = &analysis.trials()[0];
        assert!(matches!(doomed.status, TrialStatus::Failed(_)));
        assert_eq!(doomed.attempt_count(), 3, "1 attempt + 2 retries");
        assert!(doomed.attempts.iter().all(|a| !a.succeeded()));
        assert_eq!(analysis.trials()[1].status, TrialStatus::Terminated(2.0));
    }

    #[test]
    fn nan_injection_recovers_on_retry() {
        let tuner = Tuner::new(1, 1, Mode::Min)
            .retry_policy(fast_retries(1))
            .faults(FaultPlan::new().nan(0, 0));
        let analysis = tuner.run(
            Box::new(GridSearch::from_points(space(), vec![vec![7.0]])),
            Arc::new(Fifo),
            |cfg, _| cfg[0],
        );
        let t = &analysis.trials()[0];
        assert_eq!(t.status, TrialStatus::Terminated(7.0));
        assert_eq!(
            t.attempts[0].error,
            Some(TrialError::NonFinite("NaN".into()))
        );
    }

    #[test]
    fn panicking_searcher_observe_fails_the_trial_without_poisoning_the_run() {
        /// Suggests fine, panics the first time it is told a result.
        struct Grumpy {
            inner: GridSearch,
        }
        impl Searcher for Grumpy {
            fn space(&self) -> &Space {
                self.inner.space()
            }
            fn suggest(&mut self, trial_id: u64) -> Option<Point> {
                self.inner.suggest(trial_id)
            }
            fn observe(&mut self, _trial_id: u64, _value: f64) {
                panic!("observe exploded");
            }
        }
        let tuner = Tuner::new(4, 1, Mode::Min);
        let analysis = tuner.run(
            Box::new(Grumpy {
                inner: GridSearch::from_points(
                    space(),
                    vec![vec![1.0], vec![2.0], vec![3.0], vec![4.0]],
                ),
            }),
            Arc::new(Fifo),
            |cfg, _| cfg[0],
        );
        // The run returns normally; the stricken trial is typed-failed.
        let t = &analysis.trials()[0];
        assert!(
            matches!(&t.status, TrialStatus::Failed(r) if r.contains("observe exploded")),
            "{:?}",
            t.status
        );
    }

    #[test]
    fn journaled_run_resumes_from_a_wal_prefix_with_identical_results() {
        use crate::journal::{load_events, replay, RunJournal};

        let dir = std::env::temp_dir().join(format!("e2c-tuner-resume-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let build = || {
            Tuner::new(6, 1, Mode::Min)
                .retry_policy(fast_retries(1))
                .faults(FaultPlan::new().fail(2, 0))
                .seed(5)
        };
        let make_searcher = || Box::new(RandomSearch::new(space(), 41));
        let objective = |cfg: &Point, _: &mut TrialContext<'_>| (cfg[0] - 9.0).powi(2);

        // Baseline: one uninterrupted journaled run.
        let full_wal = dir.join("full.wal");
        let journal = RunJournal::new(e2c_journal::Wal::create(&full_wal).unwrap(), None);
        journal.append(&RunEvent::Meta {
            fingerprint: "t".into(),
        });
        let baseline = build()
            .journal(journal)
            .run(make_searcher(), Arc::new(Fifo), objective);
        let events = load_events(&full_wal).unwrap();
        assert!(events.len() > 6, "expected a meaty journal");

        // Cut the journal at every boundary, resume, and compare.
        for cut in 1..events.len() {
            let part = dir.join(format!("cut-{cut}.wal"));
            let mut wal = e2c_journal::Wal::create(&part).unwrap();
            for ev in &events[..cut] {
                wal.append(ev.to_line().as_bytes()).unwrap();
            }
            drop(wal);
            let (wal, records) = e2c_journal::Wal::open(&part).unwrap();
            let replayed: Vec<RunEvent> = records
                .iter()
                .map(|r| RunEvent::parse(std::str::from_utf8(r).unwrap()).unwrap())
                .collect();
            let mut searcher = make_searcher();
            let state = replay(&replayed, searcher.as_mut(), &Fifo, Mode::Min).unwrap();
            let resumed = build()
                .journal(RunJournal::new(wal, None))
                .resume(state)
                .run(searcher, Arc::new(Fifo), objective);
            assert_eq!(
                resumed.trials().len(),
                baseline.trials().len(),
                "cut at {cut}"
            );
            for (a, b) in baseline.trials().iter().zip(resumed.trials()) {
                assert_eq!(a.id, b.id, "cut at {cut}");
                assert_eq!(a.config, b.config, "cut at {cut}");
                assert_eq!(a.status, b.status, "cut at {cut}");
                assert_eq!(a.reports, b.reports, "cut at {cut}");
                assert_eq!(
                    a.attempts
                        .iter()
                        .map(|x| (x.index, x.error.clone()))
                        .collect::<Vec<_>>(),
                    b.attempts
                        .iter()
                        .map(|x| (x.index, x.error.clone()))
                        .collect::<Vec<_>>(),
                    "cut at {cut}"
                );
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tracer_records_full_worker_lifecycle() {
        let tracer = e2c_trace::Tracer::new();
        let tuner = Tuner::new(2, 1, Mode::Min)
            .retry_policy(fast_retries(1))
            .faults(FaultPlan::new().fail(0, 0))
            .trace(tracer.clone());
        tuner.run(
            Box::new(GridSearch::from_points(space(), vec![vec![4.0], vec![2.0]])),
            Arc::new(Fifo),
            |cfg, _| cfg[0],
        );
        let summary = e2c_trace::TraceSummary::from_events(&tracer.snapshot());
        let t0 = &summary.trials[&0];
        assert_eq!(t0.attempts, 2, "fault + retry = two attempts");
        assert_eq!(t0.retries, 1);
        assert_eq!(t0.faults, 1);
        assert_eq!(t0.value, Some(4.0));
        for t in summary.trials.values() {
            assert!(t.ask_vt.is_some() && t.tell_vt.is_some());
            assert!(t.exec_begin_vt.is_some() && t.exec_end_vt.is_some());
            assert!(t.ask_tell_vt().unwrap() > 0, "tell must follow ask");
        }
        assert!(summary.phases["tuner"].spans >= 2);
    }

    #[test]
    fn deadline_marks_overrunning_trial_failed_without_stalling() {
        // Trial 0 cooperatively busy-waits far beyond the 25 ms budget;
        // the watchdog flags it, the objective bails, the trial ends
        // Failed("deadline exceeded") and the other trials still run.
        let tuner = Tuner::new(3, 2, Mode::Min).time_budget(Duration::from_millis(25));
        let analysis = tuner.run(
            Box::new(GridSearch::from_points(
                space(),
                vec![vec![9.0], vec![1.0], vec![3.0]],
            )),
            Arc::new(Fifo),
            |cfg, ctx| {
                if ctx.trial_id == 0 {
                    let hard_stop = clock::now() + Duration::from_secs(5);
                    while !ctx.deadline_exceeded() && clock::now() < hard_stop {
                        // detlint: allow(DET004) test objective: deliberate overrun to trip the watchdog
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
                cfg[0]
            },
        );
        assert_eq!(analysis.trials().len(), 3);
        assert_eq!(
            analysis.trials()[0].status,
            TrialStatus::Failed("deadline exceeded".to_string())
        );
        assert_eq!(analysis.trials()[1].status, TrialStatus::Terminated(1.0));
        assert_eq!(analysis.trials()[2].status, TrialStatus::Terminated(3.0));
        assert_eq!(analysis.best_trial().unwrap().value(), Some(1.0));
    }

    #[test]
    fn injected_delay_blows_the_deadline() {
        // The straggler fault sleeps past the budget before the objective
        // runs, so even a well-behaved objective is marked failed.
        let tuner = Tuner::new(2, 1, Mode::Min)
            .time_budget(Duration::from_millis(10))
            .faults(FaultPlan::new().delay(0, 0, Duration::from_millis(40)));
        let analysis = tuner.run(
            Box::new(GridSearch::from_points(space(), vec![vec![5.0], vec![6.0]])),
            Arc::new(Fifo),
            |cfg, _| cfg[0],
        );
        assert_eq!(
            analysis.trials()[0].status,
            TrialStatus::Failed("deadline exceeded".to_string())
        );
        assert_eq!(analysis.trials()[1].status, TrialStatus::Terminated(6.0));
    }
}
