//! The parallel trial runner.
//!
//! [`Tuner::run`] is the analogue of the paper's `tune.run(...)` call
//! (Listing 1): it pulls configurations from a [`Searcher`], executes the
//! user objective on a pool of worker threads, feeds results back
//! asynchronously, and lets a [`Scheduler`] stop hopeless trials early.
//!
//! On real edge-to-cloud testbeds trial failures are routine, so the
//! runner is fault tolerant: failed attempts are retried under a
//! [`RetryPolicy`] (with seed-deterministic backoff jitter), every trial
//! can carry a wall-clock `time_budget` enforced cooperatively through
//! [`TrialContext`] plus a watchdog thread, and a [`FaultPlan`] injects
//! deterministic failures so the robustness layer is itself testable.
//!
//! Parallel runs stay deterministic through a *commit sequencer*: trials
//! execute concurrently on the worker pool, but every effect with
//! observable order — searcher asks/tells, scheduler feeds, journal
//! appends, trace events — is applied in ask-index order at each trial's
//! *commit*, with out-of-order completions buffered until their turn.
//! The journal, trace and artifacts of a run are therefore a pure
//! function of (configuration, seed, worker count), byte-identical under
//! any thread interleaving, and crash-resume replays them exactly.

use crate::analysis::Analysis;
use crate::clock;
use crate::fault::{FaultAction, FaultPlan, RetryPolicy};
use crate::journal::{ResumeState, RunEvent, RunJournal};
use crate::scheduler::{Decision, Scheduler};
use crate::searcher::Searcher;
use crate::trial::{Attempt, Trial, TrialError, TrialStatus};
use e2c_optim::space::Point;
use e2c_trace::Fields;
use parking_lot::{Condvar, Mutex};
use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How often the watchdog sweeps running attempts for blown deadlines.
const WATCHDOG_TICK: Duration = Duration::from_millis(2);

/// Safety-net timeout for workers parked on the commit sequencer: they
/// are woken by every commit and dispatch, but re-check this often so a
/// missed edge can never stall the run.
const SUGGEST_WAIT: Duration = Duration::from_millis(50);

/// Optimization direction of the user metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Smaller metric is better (`mode="min"`).
    Min,
    /// Larger metric is better (`mode="max"`).
    Max,
}

/// Handle given to the objective for intermediate reporting.
///
/// Call [`TrialContext::report`] once per training iteration / evaluation
/// window; a [`Decision::Stop`] means the scheduler cut the trial (or its
/// deadline passed) — return your current metric value promptly.
pub struct TrialContext<'a> {
    /// This trial's id.
    pub trial_id: u64,
    /// 0-based execution attempt (> 0 when the retry layer re-runs a
    /// failed trial).
    pub attempt: u32,
    mode: Mode,
    scheduler: &'a dyn Scheduler,
    journal: Option<&'a RunJournal>,
    tracer: Option<&'a e2c_trace::Tracer>,
    /// Parallel (deferred-commit) execution: reports are buffered and fed
    /// to the scheduler in canonical commit order instead of live.
    deferred: bool,
    reports: Vec<(u64, f64)>,
    stopped: bool,
    deadline: Option<Instant>,
    expired: Arc<AtomicBool>,
    /// Set by [`TrialContext::fail_attempt`]: the attempt is settled with
    /// this typed error instead of whatever value the objective returned.
    abort: Option<TrialError>,
}

impl<'a> TrialContext<'a> {
    /// Report an intermediate metric value (user orientation); returns the
    /// scheduler's verdict. Once the trial's deadline has passed this
    /// returns [`Decision::Stop`] without consulting the scheduler.
    ///
    /// Under parallel execution the scheduler is consulted at the trial's
    /// *commit*, not live — this returns [`Decision::Continue`] and the
    /// early-stop (with its truncated report list) is settled in canonical
    /// commit order, identically for every worker interleaving.
    pub fn report(&mut self, value: f64) -> Decision {
        if self.deadline_exceeded() {
            return Decision::Stop;
        }
        let iteration = self.reports.len() as u64 + 1;
        self.reports.push((iteration, value));
        if self.deferred {
            return Decision::Continue;
        }
        let normalized = match self.mode {
            Mode::Min => value,
            Mode::Max => -value,
        };
        let d = self
            .scheduler
            .on_report(self.trial_id, iteration, normalized);
        if d == Decision::Stop {
            self.stopped = true;
        }
        // Journal the report *with* the scheduler's verdict so resume can
        // verify the replayed scheduler reproduces every decision.
        // Deadline-shortcut stops above never consult the scheduler and
        // are not journaled (the re-run regenerates them).
        if let Some(j) = self.journal {
            j.append(&RunEvent::Report {
                trial: self.trial_id,
                iteration,
                normalized,
                stop: d == Decision::Stop,
            });
        }
        d
    }

    /// Whether the scheduler already stopped this trial.
    pub fn is_stopped(&self) -> bool {
        self.stopped
    }

    /// The trace sink for this attempt's engine-side events. Under
    /// parallel execution this is a per-trial buffer whose events are
    /// spliced into the run trace at the trial's commit; objectives that
    /// trace must use this handle, never a captured tracer, or their
    /// events land mid-buffer in nondeterministic order.
    pub fn tracer(&self) -> Option<&e2c_trace::Tracer> {
        self.tracer
    }

    /// Fail this attempt with a typed infrastructure error (e.g. a worker
    /// farm reporting [`TrialError::WorkerLost`] after its re-dispatch
    /// budget ran out). The returned `f64` is a placeholder to hand back
    /// from the objective — once an abort is set the return value is
    /// ignored, the attempt records no raw value, and the retry layer
    /// treats the error exactly like one raised inside the tuner.
    pub fn fail_attempt(&mut self, error: TrialError) -> f64 {
        self.abort = Some(error);
        f64::NAN
    }

    /// Whether this attempt's wall-clock budget is spent (flagged by the
    /// watchdog, or observed directly). Cooperative objectives should
    /// check this in long loops and return promptly when it turns true;
    /// the attempt is then marked `Failed("deadline exceeded")`.
    pub fn deadline_exceeded(&self) -> bool {
        if self.expired.load(Ordering::SeqCst) {
            return true;
        }
        match self.deadline {
            Some(d) if clock::now() >= d => {
                self.expired.store(true, Ordering::SeqCst);
                true
            }
            _ => false,
        }
    }
}

/// A running attempt the watchdog is timing.
struct WatchEntry {
    deadline: Instant,
    expired: Arc<AtomicBool>,
}

/// The commit sequencer's shared state. Trials execute on any worker, in
/// any real-time order, but their *effects* — searcher ask/tell, journal
/// appends, scheduler feeds, trace events — are applied in ask-index
/// order, so every run over the same seed and worker count produces the
/// same journal, trace and artifacts under any thread interleaving.
///
/// Invariants (all under the one mutex):
/// * trials `[next_commit, next_ask)` are in flight, at most `workers`;
/// * ask `k` is admitted only while `next_ask < next_commit + workers`,
///   so the journal's ask/commit permutation is the canonical greedy one;
/// * trial `id` commits only when `next_commit == id` *and* no earlier
///   ask is still admissible (window full, searcher parked/done, budget
///   spent, or the run is winding down) — asks always journal before the
///   commit they canonically precede.
struct SeqState {
    /// The searcher lives inside the sequencer: suggest order, journal
    /// order and RNG draw order are one critical section.
    searcher: Box<dyn Searcher>,
    /// Next fresh trial id to ask for.
    next_ask: u64,
    /// Id of the next trial allowed to commit.
    next_commit: u64,
    /// The searcher refused a suggestion while trials were in flight
    /// (e.g. a concurrency limiter at capacity); cleared by every commit,
    /// after which dispatchers re-probe. Suggest paths that return `None`
    /// are side-effect-free, so re-probing any number of times cannot
    /// perturb determinism.
    ask_parked: bool,
    /// No further asks will ever be admitted (budget spent or searcher
    /// exhausted); in-flight trials still commit.
    asks_done: bool,
    /// Fatal wind-down (searcher panicked): stop dispatching, let
    /// in-flight trials commit, keep every settled result.
    exhausted: bool,
    /// Dangling trials of a resumed run, in id order.
    pending: VecDeque<(u64, Point)>,
    /// Ids settled by a previous incarnation (resume): `next_commit`
    /// skips over them.
    settled: std::collections::BTreeSet<u64>,
}

struct Sequencer {
    state: Mutex<SeqState>,
    cv: Condvar,
}

/// One executed attempt plus the intermediate reports it buffered
/// (deferred mode feeds these to the scheduler at commit).
struct ExecAttempt {
    attempt: Attempt,
    reports: Vec<(u64, f64)>,
}

/// Runs trials in parallel until the sample budget is spent.
pub struct Tuner {
    /// Total number of trials (`num_samples`).
    pub num_samples: usize,
    /// Worker threads executing objectives concurrently. Note the
    /// *searcher-side* concurrency cap is the [`ConcurrencyLimiter`]'s
    /// job (`crate::searcher::ConcurrencyLimiter`); workers beyond the cap
    /// simply wait.
    pub workers: usize,
    /// Metric direction.
    pub mode: Mode,
    /// Metric name (for the analysis/report).
    pub metric: String,
    /// Experiment name (for the analysis/report).
    pub name: String,
    /// Retry policy for failed attempts (default: none — a failed attempt
    /// fails the trial).
    pub retry: RetryPolicy,
    /// Per-trial wall-clock budget (default: unlimited).
    pub time_budget: Option<Duration>,
    /// Deterministic failure injection (default: empty).
    pub faults: FaultPlan,
    /// Experiment seed; drives the retry backoff jitter.
    pub seed: u64,
    /// Optional trace sink for the worker lifecycle (ask → execute →
    /// retry/fault → tell), keyed by the tracer's virtual clock.
    pub tracer: Option<e2c_trace::Tracer>,
    /// Optional write-ahead run journal: every ask/report/attempt/tell is
    /// appended (fsync'd) before the run proceeds, making the run
    /// crash-resumable.
    pub journal: Option<RunJournal>,
    /// State recovered by [`crate::journal::replay`] when resuming a
    /// journaled run: settled trials, dangling trials to re-execute, and
    /// the continuation id.
    pub resume: Option<ResumeState>,
}

impl Tuner {
    /// A tuner with the given budget, worker count and direction.
    pub fn new(num_samples: usize, workers: usize, mode: Mode) -> Self {
        assert!(num_samples > 0, "num_samples must be positive");
        assert!(workers > 0, "workers must be positive");
        Tuner {
            num_samples,
            workers,
            mode,
            metric: "objective".to_string(),
            name: "experiment".to_string(),
            retry: RetryPolicy::none(),
            time_budget: None,
            faults: FaultPlan::new(),
            seed: 0,
            tracer: None,
            journal: None,
            resume: None,
        }
    }

    /// Set the metric name.
    pub fn metric(mut self, metric: &str) -> Self {
        self.metric = metric.to_string();
        self
    }

    /// Set the experiment name.
    pub fn name(mut self, name: &str) -> Self {
        self.name = name.to_string();
        self
    }

    /// Set the retry policy for failed attempts.
    pub fn retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Set the per-trial wall-clock budget.
    pub fn time_budget(mut self, budget: Duration) -> Self {
        self.time_budget = Some(budget);
        self
    }

    /// Install a failure-injection plan.
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Set the experiment seed (backoff jitter determinism).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Attach a tracer recording the worker lifecycle.
    pub fn trace(mut self, tracer: e2c_trace::Tracer) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// Attach a write-ahead run journal (crash safety).
    pub fn journal(mut self, journal: RunJournal) -> Self {
        self.journal = Some(journal);
        self
    }

    /// Continue from replayed journal state instead of starting fresh.
    pub fn resume(mut self, resume: ResumeState) -> Self {
        self.resume = Some(resume);
        self
    }

    /// Execute the experiment. The objective receives the configuration
    /// and a [`TrialContext`]; it returns the final metric value (user
    /// orientation). Panicking, non-finite or deadline-overrunning
    /// attempts are retried under the [`RetryPolicy`]; only when every
    /// attempt fails is the trial marked failed and the searcher fed a
    /// large penalty so Bayesian search avoids the region while its
    /// in-flight bookkeeping stays consistent.
    pub fn run<F>(
        &self,
        searcher: Box<dyn Searcher>,
        scheduler: Arc<dyn Scheduler>,
        objective: F,
    ) -> Analysis
    where
        F: Fn(&Point, &mut TrialContext<'_>) -> f64 + Send + Sync,
    {
        let resume = self.resume.clone().unwrap_or_else(ResumeState::empty);
        // Live mode (one worker) journals and traces during execution,
        // exactly as a sequential run always has; deferred mode (several
        // workers) buffers each trial's effects and applies them at its
        // commit, in ask-index order.
        let deferred = self.workers > 1;
        let settled: std::collections::BTreeSet<u64> = resume.trials.iter().map(|t| t.id).collect();
        let mut next_commit = 0u64;
        while settled.contains(&next_commit) {
            next_commit += 1;
        }
        // Dangling trials from a resumed journal (`pending`): asked
        // pre-crash but never settled. They re-execute from attempt 0
        // with their journaled configuration (no fresh suggest — the
        // replay already advanced the searcher past their asks).
        let seq = Sequencer {
            state: Mutex::new(SeqState {
                searcher,
                next_ask: resume.next_id,
                next_commit,
                ask_parked: false,
                asks_done: false,
                exhausted: false,
                pending: resume.pending.into_iter().collect(),
                settled,
            }),
            cv: Condvar::new(),
        };
        let asks_at_mark = resume.asks_at_mark;
        let trials: Mutex<Vec<Trial>> = Mutex::new(resume.trials);
        let worst_seen = Mutex::new(resume.worst_seen);
        let live_workers = AtomicUsize::new(self.workers);
        // BTreeMap, not HashMap: the watchdog iterates this map, and even
        // though expiry flags are commutative, keeping every iterated
        // collection ordered is this workspace's determinism baseline.
        let watch: Mutex<BTreeMap<u64, WatchEntry>> = Mutex::new(BTreeMap::new());
        let objective = &objective;
        let scheduler = &*scheduler;
        let tracer = self.tracer.as_ref();
        let journal = self.journal.as_ref();
        let num_samples = self.num_samples as u64;
        let workers = self.workers as u64;
        let (seq, trials, worst_seen) = (&seq, &trials, &worst_seen);
        let (live_workers, watch) = (&live_workers, &watch);

        let scoped = crossbeam::thread::scope(|scope| {
            // Deadline watchdog: sweeps running attempts and flags the
            // overdue ones so cooperative objectives bail out promptly.
            if self.time_budget.is_some() {
                scope.spawn(move |_| {
                    while live_workers.load(Ordering::SeqCst) > 0 {
                        let now = clock::now();
                        for entry in watch.lock().values() {
                            if now >= entry.deadline {
                                entry.expired.store(true, Ordering::SeqCst);
                            }
                        }
                        // detlint: allow(DET004) watchdog cadence: paces deadline sweeps only; no result or decision reads this timing
                        std::thread::sleep(WATCHDOG_TICK);
                    }
                });
            }
            for _ in 0..self.workers {
                scope.spawn(move |_| {
                    let work = || loop {
                        // ---- dispatch: claim a trial under the sequencer
                        // lock. Dangling trials of a resumed run come
                        // first; fresh asks are admitted only while the
                        // in-flight window has room, so the journal's
                        // ask/commit permutation is canonical.
                        let mut st = seq.state.lock();
                        let (id, config, resumed) = loop {
                            if st.exhausted {
                                return;
                            }
                            if let Some((id, config)) = st.pending.pop_front() {
                                // Live mode journals the Restart marker
                                // now, ahead of the re-run's live reports;
                                // deferred mode journals it at commit with
                                // the rest of the trial's records.
                                if !deferred {
                                    if let Some(j) = journal {
                                        j.append(&RunEvent::Restart { trial: id });
                                    }
                                }
                                // Re-emit the ask trace point only if the
                                // original one was truncated away with the
                                // pre-crash trace suffix: asks journaled
                                // before the last committed tell (the
                                // truncation mark) are still in the stream.
                                if asks_at_mark.is_none_or(|a| id >= a) {
                                    if let Some(tr) = tracer {
                                        tr.point(
                                            "searcher",
                                            "ask",
                                            Some(id),
                                            e2c_trace::fields([(
                                                "config",
                                                fmt_point(&config).into(),
                                            )]),
                                        );
                                    }
                                }
                                break (id, config, true);
                            }
                            if st.next_ask >= num_samples {
                                st.asks_done = true;
                                seq.cv.notify_all();
                                return;
                            }
                            if st.asks_done {
                                return;
                            }
                            if !st.ask_parked && st.next_ask < st.next_commit + workers {
                                let id = st.next_ask;
                                let suggestion = match catch_unwind(AssertUnwindSafe(|| {
                                    st.searcher.suggest(id)
                                })) {
                                    Ok(p) => p,
                                    Err(_) => {
                                        // A panicking searcher cannot
                                        // drive the run further; wind
                                        // down instead of poisoning
                                        // every worker.
                                        st.exhausted = true;
                                        seq.cv.notify_all();
                                        return;
                                    }
                                };
                                match suggestion {
                                    Some(config) => {
                                        // Journal the ask inside the
                                        // sequencer critical section:
                                        // journal order must equal RNG
                                        // draw order.
                                        if let Some(j) = journal {
                                            j.append(&RunEvent::Ask {
                                                trial: id,
                                                config: config.clone(),
                                            });
                                        }
                                        st.next_ask += 1;
                                        if let Some(tr) = tracer {
                                            tr.point(
                                                "searcher",
                                                "ask",
                                                Some(id),
                                                e2c_trace::fields([(
                                                    "config",
                                                    fmt_point(&config).into(),
                                                )]),
                                            );
                                        }
                                        seq.cv.notify_all();
                                        break (id, config, false);
                                    }
                                    None => {
                                        if st.next_commit == st.next_ask {
                                            // Nothing in flight and nothing
                                            // suggested: a dry searcher
                                            // (exhausted grid) can never
                                            // produce again.
                                            st.asks_done = true;
                                            seq.cv.notify_all();
                                            return;
                                        }
                                        // Concurrency-limited or awaiting
                                        // stragglers: the next commit both
                                        // unblocks the searcher and clears
                                        // the parking flag.
                                        st.ask_parked = true;
                                        seq.cv.notify_all();
                                    }
                                }
                            }
                            seq.cv.wait_for(&mut st, SUGGEST_WAIT);
                        };
                        drop(st);
                        {
                            let mut t = trials.lock();
                            let mut trial = Trial::new(id, config.clone());
                            trial.status = TrialStatus::Running;
                            t.push(trial);
                        }
                        // Deferred mode buffers the trial's trace events
                        // locally; they are spliced into the run trace —
                        // re-stamped onto the shared virtual clock — at
                        // the trial's commit.
                        let buffer = (deferred && tracer.is_some()).then(e2c_trace::Tracer::new);
                        let tr_exec: Option<&e2c_trace::Tracer> = buffer.as_ref().or(tracer);
                        let exec_span =
                            tr_exec.map(|tr| tr.begin("tuner", "execute", Some(id), Fields::new()));
                        // Attempt loop: run, classify, retry while the
                        // policy allows. Live mode settles the trial here;
                        // deferred mode only records outcomes — the trial
                        // settles at its commit.
                        let mut exec: Vec<ExecAttempt> = Vec::new();
                        let mut live_settled: Option<(TrialStatus, f64)> = None;
                        let mut success: Option<f64> = None;
                        loop {
                            let attempt = exec.len() as u32;
                            let expired = Arc::new(AtomicBool::new(false));
                            let deadline = self.time_budget.map(|b| clock::now() + b);
                            if let Some(d) = deadline {
                                watch.lock().insert(
                                    id,
                                    WatchEntry {
                                        deadline: d,
                                        expired: expired.clone(),
                                    },
                                );
                            }
                            let mut ctx = TrialContext {
                                trial_id: id,
                                attempt,
                                mode: self.mode,
                                scheduler,
                                journal: if deferred { None } else { journal },
                                tracer: tr_exec,
                                deferred,
                                reports: Vec::new(),
                                stopped: false,
                                deadline,
                                expired: expired.clone(),
                                abort: None,
                            };
                            let started = clock::now();
                            let fault = self.faults.lookup(id, attempt);
                            if let Some(tr) = tr_exec {
                                let mut f =
                                    e2c_trace::fields([("attempt", u64::from(attempt).into())]);
                                if let Some(action) = &fault {
                                    let kind = match action {
                                        FaultAction::Fail => "fail",
                                        FaultAction::Nan => "nan",
                                        FaultAction::Delay(_) => "delay",
                                        FaultAction::WorkerCrash => "worker-crash",
                                        FaultAction::WorkerStall => "worker-stall",
                                    };
                                    f.insert("fault".to_string(), kind.into());
                                }
                                tr.point("tuner", "attempt", Some(id), f);
                            }
                            // Whether the user objective actually runs for
                            // this attempt (injected Fail/Nan short-circuit
                            // it). The journaled `raw` value mirrors this:
                            // it carries exactly the objective returns an
                            // uninterrupted run would have produced.
                            let invoked = matches!(fault, None | Some(FaultAction::Delay(_)));
                            let outcome: Result<f64, TrialError> = match fault {
                                Some(FaultAction::Fail) => Err(TrialError::Injected(format!(
                                    "injected fault: fail (attempt {attempt})"
                                ))),
                                Some(FaultAction::Nan) => Ok(f64::NAN),
                                // Worker faults short-circuit tuner-side so a
                                // fault plan replays byte-identically whether
                                // or not a process farm is attached.
                                Some(FaultAction::WorkerCrash) => Err(TrialError::WorkerLost(
                                    format!("injected worker-crash (attempt {attempt})"),
                                )),
                                Some(FaultAction::WorkerStall) => Err(TrialError::WorkerLost(
                                    format!("injected worker-stall (attempt {attempt})"),
                                )),
                                Some(FaultAction::Delay(d)) => {
                                    // detlint: allow(DET004) injected-fault delay: reproduces a configured, deterministic slowdown
                                    std::thread::sleep(d);
                                    run_objective(objective, &config, &mut ctx)
                                }
                                None => run_objective(objective, &config, &mut ctx),
                            };
                            if deadline.is_some() {
                                watch.lock().remove(&id);
                            }
                            let secs = started.elapsed().as_secs_f64();
                            let overran = expired.load(Ordering::SeqCst)
                                || deadline.is_some_and(|d| clock::now() >= d);
                            let stopped = ctx.stopped;
                            let abort = ctx.abort;
                            let reports = ctx.reports;
                            let raw = if invoked && abort.is_none() {
                                outcome.as_ref().ok().copied()
                            } else {
                                None
                            };
                            let (error, value) = if overran {
                                (Some(TrialError::DeadlineExceeded), None)
                            } else if let Some(e) = abort {
                                (Some(e), None)
                            } else {
                                match outcome {
                                    Ok(v) if v.is_finite() => (None, Some(v)),
                                    Ok(v) => (Some(TrialError::NonFinite(format!("{v}"))), None),
                                    Err(e) => (Some(e), None),
                                }
                            };
                            // Deferred attempts journal at commit.
                            if !deferred {
                                if let Some(j) = journal {
                                    j.append(&RunEvent::Attempt {
                                        trial: id,
                                        index: attempt,
                                        secs,
                                        raw,
                                        error: error.clone(),
                                    });
                                }
                            }
                            if let (Some(tr), Some(e)) = (tr_exec, &error) {
                                tr.point(
                                    "tuner",
                                    "attempt_failed",
                                    Some(id),
                                    e2c_trace::fields([
                                        ("attempt", u64::from(attempt).into()),
                                        ("error", e.to_string().into()),
                                    ]),
                                );
                            }
                            exec.push(ExecAttempt {
                                attempt: Attempt {
                                    index: attempt,
                                    error: error.clone(),
                                    secs,
                                    raw,
                                },
                                reports,
                            });
                            if let Some(value) = value {
                                if deferred {
                                    success = Some(value);
                                } else {
                                    let normalized = match self.mode {
                                        Mode::Min => value,
                                        Mode::Max => -value,
                                    };
                                    {
                                        let mut worst = worst_seen.lock();
                                        *worst = worst.max(normalized);
                                    }
                                    let status = if stopped {
                                        TrialStatus::StoppedEarly(value)
                                    } else {
                                        TrialStatus::Terminated(value)
                                    };
                                    live_settled = Some((status, normalized));
                                }
                                break;
                            }
                            if exec.len() as u32 >= self.retry.max_attempts() {
                                if !deferred {
                                    let reason = error.map(|e| e.to_string()).unwrap_or_default();
                                    let penalty = self.failure_penalty(worst_seen);
                                    live_settled = Some((TrialStatus::Failed(reason), penalty));
                                }
                                break;
                            }
                            let delay = self.retry.backoff(self.seed, id, attempt);
                            if let Some(tr) = tr_exec {
                                tr.point(
                                    "tuner",
                                    "retry",
                                    Some(id),
                                    e2c_trace::fields([(
                                        "delay_ms",
                                        (delay.as_millis() as u64).into(),
                                    )]),
                                );
                                // Account for the backoff in virtual time
                                // (the delay itself is seed-deterministic).
                                tr.advance(delay.as_millis() as u64);
                            }
                            if !delay.is_zero() {
                                // detlint: allow(DET004) retry backoff: delay length is seed-deterministic and never feeds the metric
                                std::thread::sleep(delay);
                            }
                        }
                        // ---- commit: wait for this trial's turn, then
                        // apply its effects in canonical order. The gate
                        // also requires that no earlier ask is still
                        // admissible, so asks always journal before the
                        // commit they canonically precede.
                        let mut st = seq.state.lock();
                        while !(st.next_commit == id
                            && (st.next_ask >= id + workers
                                || st.ask_parked
                                || st.asks_done
                                || st.exhausted
                                || st.next_ask >= num_samples))
                        {
                            seq.cv.wait_for(&mut st, SUGGEST_WAIT);
                        }
                        let (status, feedback, final_reports) = if deferred {
                            if resumed {
                                if let Some(j) = journal {
                                    j.append(&RunEvent::Restart { trial: id });
                                }
                            }
                            // Splice the buffered trace onto the shared
                            // clock; the execute span's begin reference is
                            // remapped into the run trace.
                            let exec_begin = match (tracer, &buffer) {
                                (Some(tr), Some(buf)) => {
                                    let (events, end_clock) = buf.drain_for_splice();
                                    let seq_map = tr.splice(&events, end_clock);
                                    exec_span.and_then(|s| seq_map.get(s as usize).copied())
                                }
                                _ => exec_span,
                            };
                            // Feed the buffered reports to the scheduler in
                            // order, journaling each verdict; at the first
                            // Stop the kept reports are truncated there,
                            // exactly where a live sequential run would
                            // have returned early.
                            let mut stop_value: Option<f64> = None;
                            let mut final_reports: Vec<(u64, f64)> = Vec::new();
                            for ea in &exec {
                                let mut kept: Vec<(u64, f64)> = Vec::new();
                                if stop_value.is_none() {
                                    for &(iteration, user_value) in &ea.reports {
                                        let normalized = match self.mode {
                                            Mode::Min => user_value,
                                            Mode::Max => -user_value,
                                        };
                                        let d = scheduler.on_report(id, iteration, normalized);
                                        if let Some(j) = journal {
                                            j.append(&RunEvent::Report {
                                                trial: id,
                                                iteration,
                                                normalized,
                                                stop: d == Decision::Stop,
                                            });
                                        }
                                        kept.push((iteration, user_value));
                                        if d == Decision::Stop {
                                            stop_value = Some(user_value);
                                            break;
                                        }
                                    }
                                }
                                if let Some(j) = journal {
                                    let a = &ea.attempt;
                                    j.append(&RunEvent::Attempt {
                                        trial: id,
                                        index: a.index,
                                        secs: a.secs,
                                        raw: a.raw,
                                        error: a.error.clone(),
                                    });
                                }
                                final_reports = kept;
                            }
                            let (status, feedback) = match success {
                                Some(v) => {
                                    let (value, status) = match stop_value {
                                        Some(s) => (s, TrialStatus::StoppedEarly(s)),
                                        None => (v, TrialStatus::Terminated(v)),
                                    };
                                    let normalized = match self.mode {
                                        Mode::Min => value,
                                        Mode::Max => -value,
                                    };
                                    {
                                        let mut worst = worst_seen.lock();
                                        *worst = worst.max(normalized);
                                    }
                                    (status, normalized)
                                }
                                None => {
                                    let reason = exec
                                        .last()
                                        .and_then(|ea| ea.attempt.error.as_ref())
                                        .map(|e| e.to_string())
                                        .unwrap_or_default();
                                    (
                                        TrialStatus::Failed(reason),
                                        self.failure_penalty(worst_seen),
                                    )
                                }
                            };
                            if let (Some(tr), Some(span)) = (tracer, exec_begin) {
                                let outcome = match &status {
                                    TrialStatus::Terminated(_) => "terminated",
                                    TrialStatus::StoppedEarly(_) => "stopped_early",
                                    TrialStatus::Failed(_) => "failed",
                                    TrialStatus::Pending | TrialStatus::Running => "running",
                                };
                                tr.end(
                                    "tuner",
                                    "execute",
                                    Some(id),
                                    span,
                                    e2c_trace::fields([
                                        ("attempts", exec.len().into()),
                                        ("outcome", outcome.into()),
                                    ]),
                                );
                            }
                            (status, feedback, final_reports)
                        } else {
                            // The live attempt loop always settles before
                            // reaching here; fail the trial rather than
                            // poison the run if that invariant ever breaks.
                            let (status, feedback) = live_settled.clone().unwrap_or_else(|| {
                                (
                                    TrialStatus::Failed(
                                        "live attempt loop ended without settling".to_string(),
                                    ),
                                    self.failure_penalty(worst_seen),
                                )
                            });
                            if let (Some(tr), Some(span)) = (tracer, exec_span) {
                                let outcome = match &status {
                                    TrialStatus::Terminated(_) => "terminated",
                                    TrialStatus::StoppedEarly(_) => "stopped_early",
                                    TrialStatus::Failed(_) => "failed",
                                    TrialStatus::Pending | TrialStatus::Running => "running",
                                };
                                tr.end(
                                    "tuner",
                                    "execute",
                                    Some(id),
                                    span,
                                    e2c_trace::fields([
                                        ("attempts", exec.len().into()),
                                        ("outcome", outcome.into()),
                                    ]),
                                );
                            }
                            let final_reports =
                                exec.last().map(|ea| ea.reports.clone()).unwrap_or_default();
                            (status, feedback, final_reports)
                        };
                        // A panicking searcher must not poison the run: the
                        // trial is marked failed and the run winds down
                        // with every settled result intact.
                        let observed =
                            catch_unwind(AssertUnwindSafe(|| st.searcher.observe(id, feedback)));
                        let status = match observed {
                            Ok(()) => {
                                if let Some(tr) = tracer {
                                    tr.point(
                                        "searcher",
                                        "tell",
                                        Some(id),
                                        e2c_trace::fields([("value", feedback.into())]),
                                    );
                                }
                                if let Some(j) = journal {
                                    let token = match &status {
                                        TrialStatus::StoppedEarly(_) => "stopped_early",
                                        TrialStatus::Failed(_) => "failed",
                                        _ => "terminated",
                                    };
                                    // The trace mark taken *after* the tell
                                    // point: resume truncates the streamed
                                    // trace here and restores the virtual
                                    // clock, so re-executed trials land on
                                    // the same (seq, vt) slots. The ask
                                    // count records the run's ask/commit
                                    // permutation for replay verification.
                                    let trace_mark = tracer.map(|tr| (tr.len() as u64, tr.now()));
                                    j.append(&RunEvent::Tell {
                                        trial: id,
                                        feedback,
                                        status: token.to_string(),
                                        value: status.value(),
                                        trace_mark,
                                        asks: Some(st.next_ask),
                                    });
                                }
                                status
                            }
                            Err(panic) => {
                                st.exhausted = true;
                                TrialStatus::Failed(
                                    TrialError::Panicked(format!(
                                        "searcher observe panicked: {}",
                                        panic_message(panic.as_ref(), "observe panicked")
                                    ))
                                    .to_string(),
                                )
                            }
                        };
                        st.next_commit += 1;
                        while st.settled.contains(&st.next_commit) {
                            st.next_commit += 1;
                        }
                        st.ask_parked = false;
                        seq.cv.notify_all();
                        drop(st);
                        {
                            // Recorded when the ask was admitted; a missing
                            // entry would mean the bookkeeping already lost
                            // the trial, and panicking here could not get it
                            // back.
                            let mut t = trials.lock();
                            if let Some(trial) = t.iter_mut().find(|tr| tr.id == id) {
                                trial.reports = final_reports;
                                trial.attempts = exec.into_iter().map(|ea| ea.attempt).collect();
                                trial.status = status;
                            }
                        }
                    };
                    work();
                    live_workers.fetch_sub(1, Ordering::SeqCst);
                });
            }
        });
        if let Err(panic) = scoped {
            // A worker thread died outside catch_unwind (tuner bug, not an
            // objective failure): re-raise on the caller's thread instead
            // of aborting with a bare expect.
            std::panic::resume_unwind(panic);
        }

        let mut trials = std::mem::take(&mut *trials.lock());
        trials.sort_by_key(|t| t.id);
        Analysis::new(self.name.clone(), self.metric.clone(), self.mode, trials)
    }

    /// Penalty fed to the searcher for failed trials: decisively worse
    /// than anything observed, but finite.
    fn failure_penalty(&self, worst_seen: &Mutex<f64>) -> f64 {
        let worst = *worst_seen.lock();
        if worst.is_finite() {
            worst + worst.abs().max(1.0)
        } else {
            1e6
        }
    }
}

/// Compact, deterministic rendering of a configuration for trace events.
fn fmt_point(p: &Point) -> String {
    let mut out = String::new();
    for (i, v) in p.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{v}"));
    }
    out
}

/// Extract a printable message from a caught panic payload.
fn panic_message(panic: &(dyn std::any::Any + Send), fallback: &str) -> String {
    panic
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| panic.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| fallback.to_string())
}

/// Run the user objective, converting panics into typed errors.
fn run_objective<F>(
    objective: &F,
    config: &Point,
    ctx: &mut TrialContext<'_>,
) -> Result<f64, TrialError>
where
    F: Fn(&Point, &mut TrialContext<'_>) -> f64 + Send + Sync,
{
    catch_unwind(AssertUnwindSafe(|| objective(config, ctx)))
        .map_err(|panic| TrialError::Panicked(panic_message(panic.as_ref(), "objective panicked")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{AsyncHyperBand, Fifo};
    use crate::searcher::{ConcurrencyLimiter, GridSearch, RandomSearch, SkOptSearch};
    use e2c_optim::bayes::BayesOpt;
    use e2c_optim::space::Space;

    fn space() -> Space {
        Space::new().int("x", 0, 20)
    }

    /// A fast retry policy for tests (no real-time backoff).
    fn fast_retries(n: u32) -> RetryPolicy {
        RetryPolicy::retries(n)
            .base_delay(Duration::from_millis(1))
            .max_delay(Duration::from_millis(2))
    }

    #[test]
    fn runs_exact_sample_budget() {
        let tuner = Tuner::new(12, 4, Mode::Min);
        let analysis = tuner.run(
            Box::new(RandomSearch::new(space(), 3)),
            Arc::new(Fifo),
            |cfg, _ctx| (cfg[0] - 7.0).powi(2),
        );
        assert_eq!(analysis.trials().len(), 12);
        assert!(analysis.trials().iter().all(|t| t.status.is_finished()));
        // Exactly one successful attempt per trial.
        assert!(analysis
            .trials()
            .iter()
            .all(|t| t.attempt_count() == 1 && t.retries() == 0));
    }

    #[test]
    fn finds_minimum_with_bayes_search() {
        let searcher = SkOptSearch::new(BayesOpt::new(space(), 11).n_initial_points(6));
        let tuner = Tuner::new(25, 3, Mode::Min).metric("sq");
        let analysis = tuner.run(
            Box::new(ConcurrencyLimiter::new(searcher, 3)),
            Arc::new(Fifo),
            |cfg, _| (cfg[0] - 13.0).powi(2),
        );
        let best = analysis.best_trial().unwrap();
        assert!(
            best.value().unwrap() <= 1.0,
            "best {:?} = {:?}",
            best.config,
            best.value()
        );
    }

    #[test]
    fn max_mode_maximizes() {
        let tuner = Tuner::new(20, 2, Mode::Max);
        let analysis = tuner.run(
            Box::new(RandomSearch::new(space(), 5)),
            Arc::new(Fifo),
            |cfg, _| -((cfg[0] - 4.0).powi(2)),
        );
        let best = analysis.best_trial().unwrap();
        // Maximum of -(x-4)^2 is 0 at x=4.
        assert!(best.value().unwrap() >= -4.0, "{best:?}");
    }

    #[test]
    fn grid_exhaustion_terminates_cleanly() {
        let points = vec![vec![1.0], vec![2.0], vec![3.0]];
        let tuner = Tuner::new(10, 4, Mode::Min); // budget exceeds the grid
        let analysis = tuner.run(
            Box::new(GridSearch::from_points(space(), points)),
            Arc::new(Fifo),
            |cfg, _| cfg[0],
        );
        assert_eq!(analysis.trials().len(), 3);
        assert_eq!(analysis.best_trial().unwrap().value(), Some(1.0));
    }

    #[test]
    fn concurrency_limit_is_respected() {
        let running = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let searcher = ConcurrencyLimiter::new(RandomSearch::new(space(), 9), 2);
        let tuner = Tuner::new(10, 6, Mode::Min); // more workers than cap
        let (running2, peak2) = (running.clone(), peak.clone());
        tuner.run(Box::new(searcher), Arc::new(Fifo), move |cfg, _| {
            let now = running2.fetch_add(1, Ordering::SeqCst) + 1;
            peak2.fetch_max(now, Ordering::SeqCst);
            // detlint: allow(DET004) test objective: holds a worker busy so the limiter's peak is observable
            std::thread::sleep(std::time::Duration::from_millis(5));
            running2.fetch_sub(1, Ordering::SeqCst);
            cfg[0]
        });
        assert!(
            peak.load(Ordering::SeqCst) <= 2,
            "peak concurrency {} exceeded the limiter",
            peak.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn scheduler_stops_bad_trials() {
        // Trials report their (constant) value 8 times; ASHA with rf=2 must
        // stop a decent share of the bad half early.
        let tuner = Tuner::new(24, 4, Mode::Min);
        let scheduler = Arc::new(AsyncHyperBand::new(1, 2, 8));
        let analysis = tuner.run(
            Box::new(RandomSearch::new(space(), 17)),
            scheduler,
            |cfg, ctx| {
                let value = cfg[0];
                for _ in 0..8 {
                    if ctx.report(value) == Decision::Stop {
                        break;
                    }
                }
                value
            },
        );
        let stopped = analysis
            .trials()
            .iter()
            .filter(|t| t.stopped_early())
            .count();
        assert!(stopped > 0, "ASHA never stopped anything");
        // Early-stopped trials must have fewer reports than survivors' max.
        let max_full = analysis
            .trials()
            .iter()
            .filter(|t| !t.stopped_early())
            .map(|t| t.iterations())
            .max()
            .unwrap();
        for t in analysis.trials().iter().filter(|t| t.stopped_early()) {
            assert!(t.iterations() < max_full);
        }
    }

    #[test]
    fn panicking_objective_marks_failed_and_continues() {
        // Seed chosen so the stream draws points on both sides of the
        // panic threshold (5 of 10 below, 5 at or above).
        let tuner = Tuner::new(10, 2, Mode::Min);
        let analysis = tuner.run(
            Box::new(RandomSearch::new(space(), 13)),
            Arc::new(Fifo),
            |cfg, _| {
                if cfg[0] < 5.0 {
                    panic!("boom at {}", cfg[0]);
                }
                cfg[0]
            },
        );
        assert_eq!(analysis.trials().len(), 10);
        let failed = analysis
            .trials()
            .iter()
            .filter(|t| matches!(t.status, TrialStatus::Failed(_)))
            .count();
        assert!(failed > 0, "expected some failures with seed 13");
        // Best trial is a successful one.
        assert!(analysis.best_trial().unwrap().value().is_some());
    }

    #[test]
    fn non_finite_metric_marks_failed() {
        let tuner = Tuner::new(4, 1, Mode::Min);
        let analysis = tuner.run(
            Box::new(GridSearch::from_points(
                space(),
                vec![vec![1.0], vec![2.0], vec![3.0], vec![4.0]],
            )),
            Arc::new(Fifo),
            |cfg, _| if cfg[0] == 2.0 { f64::NAN } else { cfg[0] },
        );
        let failed: Vec<u64> = analysis
            .trials()
            .iter()
            .filter(|t| matches!(t.status, TrialStatus::Failed(_)))
            .map(|t| t.id)
            .collect();
        assert_eq!(failed.len(), 1);
        assert_eq!(analysis.best_trial().unwrap().value(), Some(1.0));
    }

    #[test]
    fn injected_failure_recovers_on_retry_with_true_metric() {
        // Trial 1 panics on its first attempt only; with one retry it must
        // end Terminated with its *real* metric, not a penalty, and both
        // attempts must be on the record.
        let tuner = Tuner::new(3, 1, Mode::Min)
            .retry_policy(fast_retries(1))
            .faults(FaultPlan::new().fail(1, 0));
        let analysis = tuner.run(
            Box::new(GridSearch::from_points(
                space(),
                vec![vec![4.0], vec![2.0], vec![6.0]],
            )),
            Arc::new(Fifo),
            |cfg, _| cfg[0],
        );
        let flaky = &analysis.trials()[1];
        assert_eq!(flaky.status, TrialStatus::Terminated(2.0));
        assert_eq!(flaky.attempt_count(), 2);
        assert_eq!(flaky.retries(), 1);
        assert!(!flaky.attempts[0].succeeded());
        assert_eq!(
            flaky.attempts[0].error,
            Some(TrialError::Injected(
                "injected fault: fail (attempt 0)".into()
            ))
        );
        assert!(flaky.attempts[1].succeeded());
        // The flaky trial's true value wins the experiment.
        assert_eq!(analysis.best_trial().unwrap().id, 1);
    }

    #[test]
    fn retries_exhausted_marks_failed_with_last_reason() {
        let tuner = Tuner::new(2, 1, Mode::Min)
            .retry_policy(fast_retries(2))
            .faults(FaultPlan::new().fail_always(0));
        let analysis = tuner.run(
            Box::new(GridSearch::from_points(space(), vec![vec![1.0], vec![2.0]])),
            Arc::new(Fifo),
            |cfg, _| cfg[0],
        );
        let doomed = &analysis.trials()[0];
        assert!(matches!(doomed.status, TrialStatus::Failed(_)));
        assert_eq!(doomed.attempt_count(), 3, "1 attempt + 2 retries");
        assert!(doomed.attempts.iter().all(|a| !a.succeeded()));
        assert_eq!(analysis.trials()[1].status, TrialStatus::Terminated(2.0));
    }

    #[test]
    fn nan_injection_recovers_on_retry() {
        let tuner = Tuner::new(1, 1, Mode::Min)
            .retry_policy(fast_retries(1))
            .faults(FaultPlan::new().nan(0, 0));
        let analysis = tuner.run(
            Box::new(GridSearch::from_points(space(), vec![vec![7.0]])),
            Arc::new(Fifo),
            |cfg, _| cfg[0],
        );
        let t = &analysis.trials()[0];
        assert_eq!(t.status, TrialStatus::Terminated(7.0));
        assert_eq!(
            t.attempts[0].error,
            Some(TrialError::NonFinite("NaN".into()))
        );
    }

    #[test]
    fn panicking_searcher_observe_fails_the_trial_without_poisoning_the_run() {
        /// Suggests fine, panics the first time it is told a result.
        struct Grumpy {
            inner: GridSearch,
        }
        impl Searcher for Grumpy {
            fn space(&self) -> &Space {
                self.inner.space()
            }
            fn suggest(&mut self, trial_id: u64) -> Option<Point> {
                self.inner.suggest(trial_id)
            }
            fn observe(&mut self, _trial_id: u64, _value: f64) {
                panic!("observe exploded");
            }
        }
        let tuner = Tuner::new(4, 1, Mode::Min);
        let analysis = tuner.run(
            Box::new(Grumpy {
                inner: GridSearch::from_points(
                    space(),
                    vec![vec![1.0], vec![2.0], vec![3.0], vec![4.0]],
                ),
            }),
            Arc::new(Fifo),
            |cfg, _| cfg[0],
        );
        // The run returns normally; the stricken trial is typed-failed.
        let t = &analysis.trials()[0];
        assert!(
            matches!(&t.status, TrialStatus::Failed(r) if r.contains("observe exploded")),
            "{:?}",
            t.status
        );
    }

    #[test]
    fn journaled_run_resumes_from_a_wal_prefix_with_identical_results() {
        use crate::journal::{load_events, replay, RunJournal};

        let dir = std::env::temp_dir().join(format!("e2c-tuner-resume-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let build = || {
            Tuner::new(6, 1, Mode::Min)
                .retry_policy(fast_retries(1))
                .faults(FaultPlan::new().fail(2, 0))
                .seed(5)
        };
        let make_searcher = || Box::new(RandomSearch::new(space(), 41));
        let objective = |cfg: &Point, _: &mut TrialContext<'_>| (cfg[0] - 9.0).powi(2);

        // Baseline: one uninterrupted journaled run.
        let full_wal = dir.join("full.wal");
        let journal = RunJournal::new(e2c_journal::Wal::create(&full_wal).unwrap(), None);
        journal.append(&RunEvent::meta("t"));
        let baseline = build()
            .journal(journal)
            .run(make_searcher(), Arc::new(Fifo), objective);
        let events = load_events(&full_wal).unwrap();
        assert!(events.len() > 6, "expected a meaty journal");

        // Cut the journal at every boundary, resume, and compare.
        for cut in 1..events.len() {
            let part = dir.join(format!("cut-{cut}.wal"));
            let mut wal = e2c_journal::Wal::create(&part).unwrap();
            for ev in &events[..cut] {
                wal.append(ev.to_line().as_bytes()).unwrap();
            }
            drop(wal);
            let (wal, records) = e2c_journal::Wal::open(&part).unwrap();
            let replayed: Vec<RunEvent> = records
                .iter()
                .map(|r| RunEvent::parse(std::str::from_utf8(r).unwrap()).unwrap())
                .collect();
            let mut searcher = make_searcher();
            let state = replay(&replayed, searcher.as_mut(), &Fifo, Mode::Min).unwrap();
            let resumed = build()
                .journal(RunJournal::new(wal, None))
                .resume(state)
                .run(searcher, Arc::new(Fifo), objective);
            assert_eq!(
                resumed.trials().len(),
                baseline.trials().len(),
                "cut at {cut}"
            );
            for (a, b) in baseline.trials().iter().zip(resumed.trials()) {
                assert_eq!(a.id, b.id, "cut at {cut}");
                assert_eq!(a.config, b.config, "cut at {cut}");
                assert_eq!(a.status, b.status, "cut at {cut}");
                assert_eq!(a.reports, b.reports, "cut at {cut}");
                assert_eq!(
                    a.attempts
                        .iter()
                        .map(|x| (x.index, x.error.clone()))
                        .collect::<Vec<_>>(),
                    b.attempts
                        .iter()
                        .map(|x| (x.index, x.error.clone()))
                        .collect::<Vec<_>>(),
                    "cut at {cut}"
                );
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Two identically seeded parallel runs must be indistinguishable:
    /// same trials, same attempt records, and byte-identical traces —
    /// the commit sequencer erases the thread interleaving.
    #[test]
    fn parallel_runs_are_deterministic_and_trace_stable() {
        let run = || {
            let tracer = e2c_trace::Tracer::new();
            let tuner = Tuner::new(12, 4, Mode::Min)
                .retry_policy(fast_retries(1))
                .faults(FaultPlan::new().fail(3, 0))
                .seed(7)
                .trace(tracer.clone());
            let analysis = tuner.run(
                Box::new(RandomSearch::new(space(), 23)),
                Arc::new(AsyncHyperBand::new(1, 2, 4)),
                |cfg, ctx| {
                    let value = (cfg[0] - 6.0).powi(2);
                    for _ in 0..4 {
                        if ctx.report(value) == Decision::Stop {
                            break;
                        }
                    }
                    value
                },
            );
            (analysis, tracer.to_jsonl())
        };
        let (a, trace_a) = run();
        let (b, trace_b) = run();
        assert_eq!(a.trials().len(), 12);
        for (x, y) in a.trials().iter().zip(b.trials()) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.config, y.config);
            assert_eq!(x.status, y.status);
            assert_eq!(x.reports, y.reports);
            assert_eq!(
                x.attempts
                    .iter()
                    .map(|at| (at.index, at.error.clone(), at.raw))
                    .collect::<Vec<_>>(),
                y.attempts
                    .iter()
                    .map(|at| (at.index, at.error.clone(), at.raw))
                    .collect::<Vec<_>>()
            );
        }
        assert_eq!(trace_a, trace_b, "parallel trace must be byte-stable");
    }

    /// The parallel analogue of the WAL-prefix resume test: a journaled
    /// run on 4 workers, cut at every record boundary, must resume to
    /// the same trials as its uninterrupted self.
    #[test]
    fn parallel_journaled_run_resumes_from_a_wal_prefix_with_identical_results() {
        use crate::journal::{load_events, replay, RunJournal};

        let dir = std::env::temp_dir().join(format!("e2c-tuner-par-resume-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let build = || {
            Tuner::new(8, 4, Mode::Min)
                .retry_policy(fast_retries(1))
                .faults(FaultPlan::new().fail(2, 0))
                .seed(5)
        };
        let make_searcher = || Box::new(ConcurrencyLimiter::new(RandomSearch::new(space(), 41), 4));
        let objective = |cfg: &Point, _: &mut TrialContext<'_>| (cfg[0] - 9.0).powi(2);

        let full_wal = dir.join("full.wal");
        let journal = RunJournal::new(e2c_journal::Wal::create(&full_wal).unwrap(), None);
        journal.append(&RunEvent::meta("t"));
        let baseline = build()
            .journal(journal)
            .run(make_searcher(), Arc::new(Fifo), objective);
        let events = load_events(&full_wal).unwrap();
        assert!(events.len() > 8, "expected a meaty journal");

        for cut in 1..events.len() {
            let part = dir.join(format!("cut-{cut}.wal"));
            let mut wal = e2c_journal::Wal::create(&part).unwrap();
            for ev in &events[..cut] {
                wal.append(ev.to_line().as_bytes()).unwrap();
            }
            drop(wal);
            let (wal, records) = e2c_journal::Wal::open(&part).unwrap();
            let replayed: Vec<RunEvent> = records
                .iter()
                .map(|r| RunEvent::parse(std::str::from_utf8(r).unwrap()).unwrap())
                .collect();
            let mut searcher = make_searcher();
            let state = replay(&replayed, searcher.as_mut(), &Fifo, Mode::Min).unwrap();
            let resumed = build()
                .journal(RunJournal::new(wal, None))
                .resume(state)
                .run(searcher, Arc::new(Fifo), objective);
            assert_eq!(
                resumed.trials().len(),
                baseline.trials().len(),
                "cut at {cut}"
            );
            for (a, b) in baseline.trials().iter().zip(resumed.trials()) {
                assert_eq!(a.id, b.id, "cut at {cut}");
                assert_eq!(a.config, b.config, "cut at {cut}");
                assert_eq!(a.status, b.status, "cut at {cut}");
                assert_eq!(a.reports, b.reports, "cut at {cut}");
                assert_eq!(
                    a.attempts
                        .iter()
                        .map(|x| (x.index, x.error.clone(), x.raw))
                        .collect::<Vec<_>>(),
                    b.attempts
                        .iter()
                        .map(|x| (x.index, x.error.clone(), x.raw))
                        .collect::<Vec<_>>(),
                    "cut at {cut}"
                );
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tracer_records_full_worker_lifecycle() {
        let tracer = e2c_trace::Tracer::new();
        let tuner = Tuner::new(2, 1, Mode::Min)
            .retry_policy(fast_retries(1))
            .faults(FaultPlan::new().fail(0, 0))
            .trace(tracer.clone());
        tuner.run(
            Box::new(GridSearch::from_points(space(), vec![vec![4.0], vec![2.0]])),
            Arc::new(Fifo),
            |cfg, _| cfg[0],
        );
        let summary = e2c_trace::TraceSummary::from_events(&tracer.snapshot());
        let t0 = &summary.trials[&0];
        assert_eq!(t0.attempts, 2, "fault + retry = two attempts");
        assert_eq!(t0.retries, 1);
        assert_eq!(t0.faults, 1);
        assert_eq!(t0.value, Some(4.0));
        for t in summary.trials.values() {
            assert!(t.ask_vt.is_some() && t.tell_vt.is_some());
            assert!(t.exec_begin_vt.is_some() && t.exec_end_vt.is_some());
            assert!(t.ask_tell_vt().unwrap() > 0, "tell must follow ask");
        }
        assert!(summary.phases["tuner"].spans >= 2);
    }

    #[test]
    fn deadline_marks_overrunning_trial_failed_without_stalling() {
        // Trial 0 cooperatively busy-waits far beyond the 25 ms budget;
        // the watchdog flags it, the objective bails, the trial ends
        // Failed("deadline exceeded") and the other trials still run.
        let tuner = Tuner::new(3, 2, Mode::Min).time_budget(Duration::from_millis(25));
        let analysis = tuner.run(
            Box::new(GridSearch::from_points(
                space(),
                vec![vec![9.0], vec![1.0], vec![3.0]],
            )),
            Arc::new(Fifo),
            |cfg, ctx| {
                if ctx.trial_id == 0 {
                    let hard_stop = clock::now() + Duration::from_secs(5);
                    while !ctx.deadline_exceeded() && clock::now() < hard_stop {
                        // detlint: allow(DET004) test objective: deliberate overrun to trip the watchdog
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
                cfg[0]
            },
        );
        assert_eq!(analysis.trials().len(), 3);
        assert_eq!(
            analysis.trials()[0].status,
            TrialStatus::Failed("deadline exceeded".to_string())
        );
        assert_eq!(analysis.trials()[1].status, TrialStatus::Terminated(1.0));
        assert_eq!(analysis.trials()[2].status, TrialStatus::Terminated(3.0));
        assert_eq!(analysis.best_trial().unwrap().value(), Some(1.0));
    }

    #[test]
    fn injected_delay_blows_the_deadline() {
        // The straggler fault sleeps past the budget before the objective
        // runs, so even a well-behaved objective is marked failed.
        let tuner = Tuner::new(2, 1, Mode::Min)
            .time_budget(Duration::from_millis(10))
            .faults(FaultPlan::new().delay(0, 0, Duration::from_millis(40)));
        let analysis = tuner.run(
            Box::new(GridSearch::from_points(space(), vec![vec![5.0], vec![6.0]])),
            Arc::new(Fifo),
            |cfg, _| cfg[0],
        );
        assert_eq!(
            analysis.trials()[0].status,
            TrialStatus::Failed("deadline exceeded".to_string())
        );
        assert_eq!(analysis.trials()[1].status, TrialStatus::Terminated(6.0));
    }
}
