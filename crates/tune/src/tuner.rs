//! The parallel trial runner.
//!
//! [`Tuner::run`] is the analogue of the paper's `tune.run(...)` call
//! (Listing 1): it pulls configurations from a [`Searcher`], executes the
//! user objective on a pool of worker threads, feeds results back
//! asynchronously, and lets a [`Scheduler`] stop hopeless trials early.

use crate::analysis::Analysis;
use crate::scheduler::{Decision, Scheduler};
use crate::searcher::Searcher;
use crate::trial::{Trial, TrialStatus};
use e2c_optim::space::Point;
use parking_lot::Mutex;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Optimization direction of the user metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Smaller metric is better (`mode="min"`).
    Min,
    /// Larger metric is better (`mode="max"`).
    Max,
}

/// Handle given to the objective for intermediate reporting.
///
/// Call [`TrialContext::report`] once per training iteration / evaluation
/// window; a [`Decision::Stop`] means the scheduler cut the trial — return
/// your current metric value promptly.
pub struct TrialContext<'a> {
    /// This trial's id.
    pub trial_id: u64,
    mode: Mode,
    scheduler: &'a dyn Scheduler,
    reports: Vec<(u64, f64)>,
    stopped: bool,
}

impl<'a> TrialContext<'a> {
    /// Report an intermediate metric value (user orientation); returns the
    /// scheduler's verdict.
    pub fn report(&mut self, value: f64) -> Decision {
        let iteration = self.reports.len() as u64 + 1;
        self.reports.push((iteration, value));
        let normalized = match self.mode {
            Mode::Min => value,
            Mode::Max => -value,
        };
        let d = self.scheduler.on_report(self.trial_id, iteration, normalized);
        if d == Decision::Stop {
            self.stopped = true;
        }
        d
    }

    /// Whether the scheduler already stopped this trial.
    pub fn is_stopped(&self) -> bool {
        self.stopped
    }
}

/// Runs trials in parallel until the sample budget is spent.
pub struct Tuner {
    /// Total number of trials (`num_samples`).
    pub num_samples: usize,
    /// Worker threads executing objectives concurrently. Note the
    /// *searcher-side* concurrency cap is the [`ConcurrencyLimiter`]'s
    /// job (`crate::searcher::ConcurrencyLimiter`); workers beyond the cap
    /// simply wait.
    pub workers: usize,
    /// Metric direction.
    pub mode: Mode,
    /// Metric name (for the analysis/report).
    pub metric: String,
    /// Experiment name (for the analysis/report).
    pub name: String,
}

impl Tuner {
    /// A tuner with the given budget, worker count and direction.
    pub fn new(num_samples: usize, workers: usize, mode: Mode) -> Self {
        assert!(num_samples > 0, "num_samples must be positive");
        assert!(workers > 0, "workers must be positive");
        Tuner {
            num_samples,
            workers,
            mode,
            metric: "objective".to_string(),
            name: "experiment".to_string(),
        }
    }

    /// Set the metric name.
    pub fn metric(mut self, metric: &str) -> Self {
        self.metric = metric.to_string();
        self
    }

    /// Set the experiment name.
    pub fn name(mut self, name: &str) -> Self {
        self.name = name.to_string();
        self
    }

    /// Execute the experiment. The objective receives the configuration
    /// and a [`TrialContext`]; it returns the final metric value (user
    /// orientation). Panicking or non-finite objectives mark the trial
    /// failed, and the searcher is fed a large penalty so Bayesian search
    /// avoids the region while its in-flight bookkeeping stays consistent.
    pub fn run<F>(
        &self,
        searcher: Box<dyn Searcher>,
        scheduler: Arc<dyn Scheduler>,
        objective: F,
    ) -> Analysis
    where
        F: Fn(&Point, &mut TrialContext<'_>) -> f64 + Send + Sync,
    {
        let searcher = Mutex::new(searcher);
        let trials: Mutex<Vec<Trial>> = Mutex::new(Vec::with_capacity(self.num_samples));
        let next_id = AtomicU64::new(0);
        let worst_seen = Mutex::new(f64::NEG_INFINITY);
        let exhausted = std::sync::atomic::AtomicBool::new(false);
        let objective = &objective;
        let scheduler = &*scheduler;

        crossbeam::thread::scope(|scope| {
            for _ in 0..self.workers {
                scope.spawn(|_| loop {
                    let id = next_id.fetch_add(1, Ordering::SeqCst);
                    if id >= self.num_samples as u64 {
                        return;
                    }
                    // Obtain a suggestion, waiting out concurrency limits.
                    let config = loop {
                        if exhausted.load(Ordering::SeqCst) {
                            return;
                        }
                        let suggestion = searcher.lock().suggest(id);
                        match suggestion {
                            Some(p) => break p,
                            None => {
                                // Either concurrency-limited (someone will
                                // observe soon) or the searcher is done. A
                                // grid that ran dry while nothing is
                                // running can never produce again.
                                let nothing_running = {
                                    let t = trials.lock();
                                    t.iter().all(|tr| tr.status.is_finished())
                                };
                                if nothing_running {
                                    exhausted.store(true, Ordering::SeqCst);
                                    return;
                                }
                                std::thread::yield_now();
                            }
                        }
                    };
                    {
                        let mut t = trials.lock();
                        let mut trial = Trial::new(id, config.clone());
                        trial.status = TrialStatus::Running;
                        t.push(trial);
                    }
                    let mut ctx = TrialContext {
                        trial_id: id,
                        mode: self.mode,
                        scheduler,
                        reports: Vec::new(),
                        stopped: false,
                    };
                    let outcome =
                        catch_unwind(AssertUnwindSafe(|| objective(&config, &mut ctx)));
                    let (status, feedback) = match outcome {
                        Ok(value) if value.is_finite() => {
                            let normalized = match self.mode {
                                Mode::Min => value,
                                Mode::Max => -value,
                            };
                            let mut worst = worst_seen.lock();
                            *worst = worst.max(normalized);
                            let status = if ctx.stopped {
                                TrialStatus::StoppedEarly(value)
                            } else {
                                TrialStatus::Terminated(value)
                            };
                            (status, normalized)
                        }
                        Ok(bad) => {
                            let penalty = self.failure_penalty(&worst_seen);
                            (
                                TrialStatus::Failed(format!("non-finite metric {bad}")),
                                penalty,
                            )
                        }
                        Err(panic) => {
                            let msg = panic
                                .downcast_ref::<&str>()
                                .map(|s| s.to_string())
                                .or_else(|| panic.downcast_ref::<String>().cloned())
                                .unwrap_or_else(|| "objective panicked".to_string());
                            let penalty = self.failure_penalty(&worst_seen);
                            (TrialStatus::Failed(msg), penalty)
                        }
                    };
                    searcher.lock().observe(id, feedback);
                    let mut t = trials.lock();
                    let trial = t
                        .iter_mut()
                        .find(|tr| tr.id == id)
                        .expect("trial recorded at start");
                    trial.reports = ctx.reports;
                    trial.status = status;
                });
            }
        })
        .expect("worker thread panicked outside catch_unwind");

        let mut trials = trials.into_inner();
        trials.sort_by_key(|t| t.id);
        Analysis::new(self.name.clone(), self.metric.clone(), self.mode, trials)
    }

    /// Penalty fed to the searcher for failed trials: decisively worse
    /// than anything observed, but finite.
    fn failure_penalty(&self, worst_seen: &Mutex<f64>) -> f64 {
        let worst = *worst_seen.lock();
        if worst.is_finite() {
            worst + worst.abs().max(1.0)
        } else {
            1e6
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{AsyncHyperBand, Fifo};
    use crate::searcher::{ConcurrencyLimiter, GridSearch, RandomSearch, SkOptSearch};
    use e2c_optim::bayes::BayesOpt;
    use e2c_optim::space::Space;

    fn space() -> Space {
        Space::new().int("x", 0, 20)
    }

    #[test]
    fn runs_exact_sample_budget() {
        let tuner = Tuner::new(12, 4, Mode::Min);
        let analysis = tuner.run(
            Box::new(RandomSearch::new(space(), 3)),
            Arc::new(Fifo),
            |cfg, _ctx| (cfg[0] - 7.0).powi(2),
        );
        assert_eq!(analysis.trials().len(), 12);
        assert!(analysis
            .trials()
            .iter()
            .all(|t| t.status.is_finished()));
    }

    #[test]
    fn finds_minimum_with_bayes_search() {
        let searcher = SkOptSearch::new(BayesOpt::new(space(), 11).n_initial_points(6));
        let tuner = Tuner::new(25, 3, Mode::Min).metric("sq");
        let analysis = tuner.run(
            Box::new(ConcurrencyLimiter::new(searcher, 3)),
            Arc::new(Fifo),
            |cfg, _| (cfg[0] - 13.0).powi(2),
        );
        let best = analysis.best_trial().unwrap();
        assert!(
            best.value().unwrap() <= 1.0,
            "best {:?} = {:?}",
            best.config,
            best.value()
        );
    }

    #[test]
    fn max_mode_maximizes() {
        let tuner = Tuner::new(20, 2, Mode::Max);
        let analysis = tuner.run(
            Box::new(RandomSearch::new(space(), 5)),
            Arc::new(Fifo),
            |cfg, _| -((cfg[0] - 4.0).powi(2)) as f64,
        );
        let best = analysis.best_trial().unwrap();
        // Maximum of -(x-4)^2 is 0 at x=4.
        assert!(best.value().unwrap() >= -4.0, "{best:?}");
    }

    #[test]
    fn grid_exhaustion_terminates_cleanly() {
        let points = vec![vec![1.0], vec![2.0], vec![3.0]];
        let tuner = Tuner::new(10, 4, Mode::Min); // budget exceeds the grid
        let analysis = tuner.run(
            Box::new(GridSearch::from_points(space(), points)),
            Arc::new(Fifo),
            |cfg, _| cfg[0],
        );
        assert_eq!(analysis.trials().len(), 3);
        assert_eq!(analysis.best_trial().unwrap().value(), Some(1.0));
    }

    #[test]
    fn concurrency_limit_is_respected() {
        use std::sync::atomic::AtomicUsize;
        let running = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let searcher =
            ConcurrencyLimiter::new(RandomSearch::new(space(), 9), 2);
        let tuner = Tuner::new(10, 6, Mode::Min); // more workers than cap
        let (running2, peak2) = (running.clone(), peak.clone());
        tuner.run(Box::new(searcher), Arc::new(Fifo), move |cfg, _| {
            let now = running2.fetch_add(1, Ordering::SeqCst) + 1;
            peak2.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(5));
            running2.fetch_sub(1, Ordering::SeqCst);
            cfg[0]
        });
        assert!(
            peak.load(Ordering::SeqCst) <= 2,
            "peak concurrency {} exceeded the limiter",
            peak.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn scheduler_stops_bad_trials() {
        // Trials report their (constant) value 8 times; ASHA with rf=2 must
        // stop a decent share of the bad half early.
        let tuner = Tuner::new(24, 4, Mode::Min);
        let scheduler = Arc::new(AsyncHyperBand::new(1, 2, 8));
        let analysis = tuner.run(
            Box::new(RandomSearch::new(space(), 17)),
            scheduler,
            |cfg, ctx| {
                let value = cfg[0];
                for _ in 0..8 {
                    if ctx.report(value) == Decision::Stop {
                        break;
                    }
                }
                value
            },
        );
        let stopped = analysis
            .trials()
            .iter()
            .filter(|t| t.stopped_early())
            .count();
        assert!(stopped > 0, "ASHA never stopped anything");
        // Early-stopped trials must have fewer reports than survivors' max.
        let max_full = analysis
            .trials()
            .iter()
            .filter(|t| !t.stopped_early())
            .map(|t| t.iterations())
            .max()
            .unwrap();
        for t in analysis.trials().iter().filter(|t| t.stopped_early()) {
            assert!(t.iterations() < max_full);
        }
    }

    #[test]
    fn panicking_objective_marks_failed_and_continues() {
        let tuner = Tuner::new(10, 2, Mode::Min);
        let analysis = tuner.run(
            Box::new(RandomSearch::new(space(), 21)),
            Arc::new(Fifo),
            |cfg, _| {
                if cfg[0] < 5.0 {
                    panic!("boom at {}", cfg[0]);
                }
                cfg[0]
            },
        );
        assert_eq!(analysis.trials().len(), 10);
        let failed = analysis
            .trials()
            .iter()
            .filter(|t| matches!(t.status, TrialStatus::Failed(_)))
            .count();
        assert!(failed > 0, "expected some failures with seed 21");
        // Best trial is a successful one.
        assert!(analysis.best_trial().unwrap().value().is_some());
    }

    #[test]
    fn non_finite_metric_marks_failed() {
        let tuner = Tuner::new(4, 1, Mode::Min);
        let analysis = tuner.run(
            Box::new(GridSearch::from_points(
                space(),
                vec![vec![1.0], vec![2.0], vec![3.0], vec![4.0]],
            )),
            Arc::new(Fifo),
            |cfg, _| if cfg[0] == 2.0 { f64::NAN } else { cfg[0] },
        );
        let failed: Vec<u64> = analysis
            .trials()
            .iter()
            .filter(|t| matches!(t.status, TrialStatus::Failed(_)))
            .map(|t| t.id)
            .collect();
        assert_eq!(failed.len(), 1);
        assert_eq!(analysis.best_trial().unwrap().value(), Some(1.0));
    }
}
