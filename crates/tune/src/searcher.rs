//! Search algorithms behind a uniform ask/observe interface.

use e2c_optim::bayes::BayesOpt;
use e2c_optim::sampling::InitialDesign;
use e2c_optim::space::{Point, Space};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;

/// A source of trial configurations that learns from completed trials.
///
/// Implementations must be `Send`: the tuner drives them from worker
/// threads behind a mutex — that lock is the "asynchronous model
/// optimization" serialization point.
pub trait Searcher: Send {
    /// Propose a configuration for a new trial, or `None` if the searcher
    /// cannot propose right now (budget exhausted or concurrency-limited).
    fn suggest(&mut self, trial_id: u64) -> Option<Point>;

    /// Feed back the final metric value of a finished trial (already
    /// sign-normalized: the tuner always *minimizes* internally).
    fn observe(&mut self, trial_id: u64, value: f64);

    /// The search space.
    fn space(&self) -> &Space;
}

/// The paper's `SkOptSearch`: Bayesian optimization over the space.
pub struct SkOptSearch {
    opt: BayesOpt,
    inflight: BTreeMap<u64, Point>,
}

impl SkOptSearch {
    /// Wrap a configured [`BayesOpt`].
    pub fn new(opt: BayesOpt) -> Self {
        SkOptSearch {
            opt,
            inflight: BTreeMap::new(),
        }
    }

    /// Access the underlying optimizer (e.g. for its history or best).
    pub fn optimizer(&self) -> &BayesOpt {
        &self.opt
    }
}

impl Searcher for SkOptSearch {
    fn suggest(&mut self, trial_id: u64) -> Option<Point> {
        let p = self.opt.ask();
        self.inflight.insert(trial_id, p.clone());
        Some(p)
    }

    fn observe(&mut self, trial_id: u64, value: f64) {
        let point = self
            .inflight
            .remove(&trial_id)
            .expect("observe for unknown trial");
        self.opt.tell(point, value);
    }

    fn space(&self) -> &Space {
        self.opt.space()
    }
}

/// Uniform random search (the standard baseline).
pub struct RandomSearch {
    space: Space,
    rng: StdRng,
}

impl RandomSearch {
    /// Random search over `space`.
    pub fn new(space: Space, seed: u64) -> Self {
        RandomSearch {
            space,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Searcher for RandomSearch {
    fn suggest(&mut self, _trial_id: u64) -> Option<Point> {
        Some(self.space.sample(&mut self.rng))
    }

    fn observe(&mut self, _trial_id: u64, _value: f64) {}

    fn space(&self) -> &Space {
        &self.space
    }
}

/// Evaluate an explicit list of configurations (grid sweeps, OAT plans,
/// paper-table reproductions). Exhausts after the list.
pub struct GridSearch {
    space: Space,
    queue: Vec<Point>,
    cursor: usize,
}

impl GridSearch {
    /// Search over the explicit `points` (evaluated in order).
    pub fn from_points(space: Space, points: Vec<Point>) -> Self {
        for p in &points {
            assert!(space.contains(p), "grid point {p:?} outside space");
        }
        GridSearch {
            space,
            queue: points,
            cursor: 0,
        }
    }

    /// Full-factorial design of `n` points via the grid initial design.
    pub fn factorial(space: Space, n: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let points = InitialDesign::Grid.generate(&space, n, &mut rng);
        GridSearch {
            space,
            queue: points,
            cursor: 0,
        }
    }

    /// Remaining proposals.
    pub fn remaining(&self) -> usize {
        self.queue.len() - self.cursor
    }
}

impl Searcher for GridSearch {
    fn suggest(&mut self, _trial_id: u64) -> Option<Point> {
        let p = self.queue.get(self.cursor)?.clone();
        self.cursor += 1;
        Some(p)
    }

    fn observe(&mut self, _trial_id: u64, _value: f64) {}

    fn space(&self) -> &Space {
        &self.space
    }
}

/// Caps the number of unobserved suggestions, exactly like Ray Tune's
/// `ConcurrencyLimiter(algo, max_concurrent=2)` in the paper's Listing 1.
pub struct ConcurrencyLimiter<S: Searcher> {
    inner: S,
    max_concurrent: usize,
    inflight: usize,
}

impl<S: Searcher> ConcurrencyLimiter<S> {
    /// Allow at most `max_concurrent` unobserved suggestions.
    pub fn new(inner: S, max_concurrent: usize) -> Self {
        assert!(max_concurrent > 0, "max_concurrent must be positive");
        ConcurrencyLimiter {
            inner,
            max_concurrent,
            inflight: 0,
        }
    }

    /// The wrapped searcher.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Currently outstanding suggestions.
    pub fn inflight(&self) -> usize {
        self.inflight
    }
}

impl<S: Searcher> Searcher for ConcurrencyLimiter<S> {
    fn suggest(&mut self, trial_id: u64) -> Option<Point> {
        if self.inflight >= self.max_concurrent {
            return None;
        }
        let p = self.inner.suggest(trial_id)?;
        self.inflight += 1;
        Some(p)
    }

    fn observe(&mut self, trial_id: u64, value: f64) {
        assert!(self.inflight > 0, "observe without suggestion");
        self.inflight -= 1;
        self.inner.observe(trial_id, value);
    }

    fn space(&self) -> &Space {
        self.inner.space()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> Space {
        Space::new().int("x", 0, 10)
    }

    #[test]
    fn random_search_suggests_in_space() {
        let mut s = RandomSearch::new(space(), 1);
        for id in 0..50 {
            let p = s.suggest(id).unwrap();
            assert!(s.space().contains(&p));
            s.observe(id, 1.0);
        }
    }

    #[test]
    fn grid_search_exhausts() {
        let pts = vec![vec![1.0], vec![2.0], vec![3.0]];
        let mut g = GridSearch::from_points(space(), pts.clone());
        assert_eq!(g.remaining(), 3);
        assert_eq!(g.suggest(0), Some(pts[0].clone()));
        assert_eq!(g.suggest(1), Some(pts[1].clone()));
        assert_eq!(g.suggest(2), Some(pts[2].clone()));
        assert_eq!(g.suggest(3), None);
    }

    #[test]
    #[should_panic(expected = "outside space")]
    fn grid_rejects_foreign_points() {
        GridSearch::from_points(space(), vec![vec![99.0]]);
    }

    #[test]
    fn limiter_blocks_at_capacity() {
        let mut s = ConcurrencyLimiter::new(RandomSearch::new(space(), 2), 2);
        assert!(s.suggest(0).is_some());
        assert!(s.suggest(1).is_some());
        assert_eq!(s.inflight(), 2);
        assert!(
            s.suggest(2).is_none(),
            "third concurrent suggest must block"
        );
        s.observe(0, 1.0);
        assert!(s.suggest(3).is_some(), "capacity freed by observe");
    }

    #[test]
    fn skopt_search_learns() {
        // The searcher must eventually concentrate near the optimum x=3.
        let mut s = SkOptSearch::new(BayesOpt::new(space(), 5).n_initial_points(5));
        for id in 0..30u64 {
            let p = s.suggest(id).unwrap();
            let y = (p[0] - 3.0).powi(2);
            s.observe(id, y);
        }
        let (best, val) = s.optimizer().best().unwrap();
        assert_eq!(val, 0.0, "best {best:?}");
    }

    #[test]
    #[should_panic(expected = "unknown trial")]
    fn skopt_observe_unknown_trial_panics() {
        let mut s = SkOptSearch::new(BayesOpt::new(space(), 5));
        s.observe(42, 1.0);
    }
}
