//! Worker-slot supervision for the process farm, as a pure state
//! machine.
//!
//! [`Supervisor`] owns no processes, threads or clocks — it is fed
//! millisecond timestamps and events (heartbeats, results, losses) and
//! answers scheduling questions (which slot takes the next ask, which
//! workers stalled, which dead slots are due a respawn). Keeping it pure
//! makes the crash-tolerance logic exhaustively testable: the property
//! suite drives it with arbitrary interleavings and checks the two
//! invariants everything else leans on — **a ticket resolves at most
//! once** (no double-commit of an ask) and **busy slots never exceed the
//! worker count** (no permit leaks).
//!
//! The actual process wrangling — spawning, killing, reader threads,
//! frame I/O — lives in [`crate::farm`], which holds a `Supervisor`
//! behind its mutex and translates OS events into these calls.
//!
//! ## Slot lifecycle
//!
//! ```text
//!        try_assign                complete
//! Idle ─────────────▶ Busy{ticket} ────────▶ Idle
//!   │                   │    lost (ticket orphaned)
//!   │ lost              ▼
//!   └────────────▶ Dead{respawn_at} ──due──▶ respawned ──▶ Idle
//!                      │ respawn budget spent
//!                      ▼
//!                  Dead{∅}  (terminal)
//! ```
//!
//! Every respawn bumps the slot's *generation*; stale events from a
//! previous incarnation (a reader thread still draining a killed
//! worker's pipe) carry their generation and are ignored.

use crate::fault::RetryPolicy;

/// Lifecycle state of one worker slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotState {
    /// Healthy and free to take an ask.
    Idle,
    /// Executing the ask identified by `ticket`.
    Busy {
        /// The outstanding ask's ticket.
        ticket: u64,
    },
    /// The worker process is gone (exit, EOF, protocol garbage, missed
    /// heartbeat). `respawn_at_ms == None` means the respawn budget is
    /// spent and the slot is terminally dead.
    Dead {
        /// When the slot may be respawned, if ever.
        respawn_at_ms: Option<u64>,
    },
}

/// Why [`Supervisor::complete`] refused a result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StaleResult {
    /// The slot is not running anything (idle, or dead and the ticket
    /// already resolved as lost).
    NotBusy,
    /// The slot is busy with a *different* ticket — the result belongs
    /// to a previous incarnation and was already resolved.
    WrongTicket {
        /// The ticket the slot is actually running.
        current: u64,
    },
    /// The worker index is out of range.
    NoSuchWorker,
}

#[derive(Debug, Clone)]
struct Slot {
    state: SlotState,
    /// Timestamp of the last sign of life (spawn, heartbeat, result).
    last_seen_ms: u64,
    /// Bumped on every respawn; events tagged with an older generation
    /// are from a dead incarnation.
    generation: u64,
    /// How many times this slot has been respawned.
    respawns: u32,
}

/// Pure supervision state for a farm of `workers` slots. See the module
/// docs for the lifecycle; all methods take "now" in milliseconds on any
/// monotonic scale (the farm uses time since its own start).
#[derive(Debug)]
pub struct Supervisor {
    slots: Vec<Slot>,
    next_ticket: u64,
    heartbeat_timeout_ms: u64,
    max_respawns: u32,
    backoff: RetryPolicy,
    seed: u64,
}

impl Supervisor {
    /// A farm of `workers` idle slots. `heartbeat_timeout_ms` is the
    /// stall deadline (a worker silent that long is declared lost);
    /// `max_respawns` bounds per-slot restarts; `seed` keys the
    /// deterministic respawn backoff drawn from `backoff`.
    pub fn new(
        workers: usize,
        heartbeat_timeout_ms: u64,
        max_respawns: u32,
        seed: u64,
        backoff: RetryPolicy,
    ) -> Self {
        Supervisor {
            slots: vec![
                Slot {
                    state: SlotState::Idle,
                    last_seen_ms: 0,
                    generation: 0,
                    respawns: 0,
                };
                workers
            ],
            next_ticket: 0,
            heartbeat_timeout_ms,
            max_respawns,
            backoff,
            seed,
        }
    }

    /// Number of slots (fixed at construction).
    pub fn workers(&self) -> usize {
        self.slots.len()
    }

    /// The slot's current state.
    pub fn state(&self, worker: usize) -> Option<SlotState> {
        self.slots.get(worker).map(|s| s.state)
    }

    /// The slot's current incarnation number.
    pub fn generation(&self, worker: usize) -> Option<u64> {
        self.slots.get(worker).map(|s| s.generation)
    }

    /// How many slots are currently executing an ask.
    pub fn busy_count(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| matches!(s.state, SlotState::Busy { .. }))
            .count()
    }

    /// Claim an idle slot for the next ask: returns `(worker, ticket)`
    /// and marks the slot busy. Tickets are unique across the farm's
    /// lifetime — the admission permit *is* the busy slot, so at most
    /// `workers` tickets are ever outstanding.
    pub fn try_assign(&mut self, now_ms: u64) -> Option<(usize, u64)> {
        let idx = self
            .slots
            .iter()
            .position(|s| matches!(s.state, SlotState::Idle))?;
        let ticket = self.next_ticket;
        self.next_ticket += 1;
        self.slots[idx].state = SlotState::Busy { ticket };
        self.slots[idx].last_seen_ms = now_ms;
        Some((idx, ticket))
    }

    /// A result arrived for `ticket` on `worker`: frees the slot if the
    /// ticket is the one outstanding there, otherwise reports exactly why
    /// the result is stale so the farm can drop it — a ticket resolves at
    /// most once, ever.
    pub fn complete(&mut self, worker: usize, ticket: u64, now_ms: u64) -> Result<(), StaleResult> {
        let Some(slot) = self.slots.get_mut(worker) else {
            return Err(StaleResult::NoSuchWorker);
        };
        match slot.state {
            SlotState::Busy { ticket: current } if current == ticket => {
                slot.state = SlotState::Idle;
                slot.last_seen_ms = now_ms;
                Ok(())
            }
            SlotState::Busy { ticket: current } => Err(StaleResult::WrongTicket { current }),
            SlotState::Idle | SlotState::Dead { .. } => Err(StaleResult::NotBusy),
        }
    }

    /// The worker died (exit, EOF, garbage) or was declared stalled:
    /// marks the slot dead, schedules a respawn if budget remains, and
    /// returns the orphaned ticket if an ask was in flight — the caller
    /// re-dispatches it. Idempotent: losing an already-dead slot changes
    /// nothing and orphans nothing.
    pub fn lost(&mut self, worker: usize, now_ms: u64) -> Option<u64> {
        let slot = self.slots.get_mut(worker)?;
        let orphaned = match slot.state {
            SlotState::Busy { ticket } => Some(ticket),
            SlotState::Idle => None,
            SlotState::Dead { .. } => return None,
        };
        let respawn_at_ms = (slot.respawns < self.max_respawns).then(|| {
            let delay = self
                .backoff
                .backoff(self.seed, worker as u64, slot.respawns);
            now_ms + delay.as_millis() as u64
        });
        slot.state = SlotState::Dead { respawn_at_ms };
        orphaned
    }

    /// A sign of life from the worker (heartbeat or any valid frame).
    /// Ignored for dead slots — a zombie's beacon does not resurrect it.
    pub fn heartbeat(&mut self, worker: usize, now_ms: u64) {
        if let Some(slot) = self.slots.get_mut(worker) {
            if !matches!(slot.state, SlotState::Dead { .. }) {
                slot.last_seen_ms = now_ms;
            }
        }
    }

    /// Live workers silent for longer than the heartbeat deadline. The
    /// farm kills each and then reports it via [`Supervisor::lost`].
    pub fn stalled(&self, now_ms: u64) -> Vec<usize> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| !matches!(s.state, SlotState::Dead { .. }))
            .filter(|(_, s)| now_ms.saturating_sub(s.last_seen_ms) > self.heartbeat_timeout_ms)
            .map(|(i, _)| i)
            .collect()
    }

    /// Dead slots whose backoff has elapsed and may be respawned now.
    pub fn due_respawns(&self, now_ms: u64) -> Vec<usize> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| {
                matches!(s.state, SlotState::Dead { respawn_at_ms: Some(at) } if at <= now_ms)
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// A fresh process now occupies the slot: back to idle under a new
    /// generation, with one more respawn on the meter.
    pub fn respawned(&mut self, worker: usize, now_ms: u64) {
        if let Some(slot) = self.slots.get_mut(worker) {
            if matches!(slot.state, SlotState::Dead { .. }) {
                slot.state = SlotState::Idle;
                slot.generation += 1;
                slot.respawns += 1;
                slot.last_seen_ms = now_ms;
            }
        }
    }

    /// Whether the farm is beyond saving: every slot dead with no respawn
    /// pending. Waiting for a slot would block forever — the run must
    /// fail the attempt instead.
    pub fn all_lost(&self) -> bool {
        self.slots.iter().all(|s| {
            matches!(
                s.state,
                SlotState::Dead {
                    respawn_at_ms: None
                }
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sup(workers: usize) -> Supervisor {
        Supervisor::new(workers, 1_000, 3, 42, RetryPolicy::default())
    }

    #[test]
    fn assign_complete_cycles_a_slot() {
        let mut s = sup(2);
        let (w0, t0) = s.try_assign(0).unwrap();
        let (w1, t1) = s.try_assign(0).unwrap();
        assert_ne!(w0, w1);
        assert_ne!(t0, t1);
        assert_eq!(s.try_assign(0), None, "both permits out");
        assert_eq!(s.busy_count(), 2);
        s.complete(w0, t0, 5).unwrap();
        assert_eq!(s.busy_count(), 1);
        let (w2, t2) = s.try_assign(5).unwrap();
        assert_eq!(w2, w0, "freed slot is reusable");
        assert_ne!(t2, t0, "but under a fresh ticket");
    }

    #[test]
    fn tickets_resolve_at_most_once() {
        let mut s = sup(1);
        let (w, t) = s.try_assign(0).unwrap();
        s.complete(w, t, 1).unwrap();
        assert_eq!(s.complete(w, t, 2), Err(StaleResult::NotBusy));
        let (w, t) = s.try_assign(3).unwrap();
        assert_eq!(s.lost(w, 4), Some(t), "loss orphans the ticket");
        assert_eq!(s.complete(w, t, 5), Err(StaleResult::NotBusy));
        assert_eq!(s.lost(w, 6), None, "loss is idempotent");
    }

    #[test]
    fn respawn_lifecycle_and_generation() {
        let mut s = sup(1);
        assert_eq!(s.generation(0), Some(0));
        s.lost(0, 10);
        let due_at = match s.state(0) {
            Some(SlotState::Dead {
                respawn_at_ms: Some(at),
            }) => at,
            other => panic!("expected scheduled respawn, got {other:?}"),
        };
        assert!(due_at >= 10);
        assert!(s.due_respawns(due_at.saturating_sub(1)).is_empty());
        assert_eq!(s.due_respawns(due_at), vec![0]);
        s.respawned(0, due_at);
        assert_eq!(s.state(0), Some(SlotState::Idle));
        assert_eq!(s.generation(0), Some(1));
    }

    #[test]
    fn respawn_budget_exhausts_to_terminal_death() {
        let mut s = sup(1);
        for _ in 0..3 {
            s.lost(0, 0);
            let due = s.due_respawns(u64::MAX);
            assert_eq!(due, vec![0]);
            s.respawned(0, 0);
        }
        s.lost(0, 0);
        assert_eq!(
            s.state(0),
            Some(SlotState::Dead {
                respawn_at_ms: None
            })
        );
        assert!(s.due_respawns(u64::MAX).is_empty());
        assert!(s.all_lost());
    }

    #[test]
    fn stall_detection_follows_heartbeats() {
        let mut s = sup(2);
        s.heartbeat(0, 100);
        s.heartbeat(1, 500);
        assert!(s.stalled(1_000).is_empty(), "inside the deadline");
        assert_eq!(s.stalled(1_200), vec![0], "worker 0 silent too long");
        assert_eq!(s.stalled(2_000), vec![0, 1]);
        s.lost(0, 2_000);
        assert_eq!(s.stalled(2_000), vec![1], "dead slots are not stalled");
        s.heartbeat(0, 3_000);
        assert!(
            matches!(s.state(0), Some(SlotState::Dead { .. })),
            "a zombie's beacon does not resurrect it"
        );
    }

    #[test]
    fn respawn_backoff_is_deterministic_in_the_seed() {
        let schedule = |seed: u64| {
            let mut s = Supervisor::new(1, 1_000, 3, seed, RetryPolicy::default());
            let mut at = Vec::new();
            for _ in 0..3 {
                s.lost(0, 0);
                match s.state(0) {
                    Some(SlotState::Dead {
                        respawn_at_ms: Some(t),
                    }) => at.push(t),
                    other => panic!("expected scheduled respawn, got {other:?}"),
                }
                s.respawned(0, 0);
            }
            at
        };
        assert_eq!(schedule(7), schedule(7));
    }
}
