//! The single sanctioned wall-clock call site (detlint rule DET002).
//!
//! Reproducibility demands that wall-clock time never *decides* anything a
//! replay would re-decide — but the tuner still needs real time for
//! watchdog liveness, retry backoff pacing and wall-clock deadlines (the
//! paper's `time_budget`). Those uses are operational, not result-bearing:
//! a replay with different timings produces the same trial sequence.
//!
//! Centralizing the read here keeps that boundary auditable. Everything
//! else in the workspace must either call [`now`] or carry a justified
//! `detlint: allow(DET002)` (bench harnesses, the real-time engine
//! backend, elapsed-time test assertions).

use std::time::Instant;

/// Virtual time for anything *result-bearing*: the tracing layer keys its
/// event log off this clock (one tick per event, explicit advances for
/// simulated delays), never off [`now`], so `trace.jsonl` replays
/// byte-identically.  Re-exported here so the module stays the single
/// place to reason about time in the tuner.
pub use e2c_trace::VirtualClock;

/// Read the monotonic wall clock. The only `Instant::now()` the
/// determinism lint accepts outside explicitly annotated call sites.
pub fn now() -> Instant {
    Instant::now()
}

#[cfg(test)]
mod tests {
    #[test]
    fn clock_is_monotonic() {
        let a = super::now();
        let b = super::now();
        assert!(b >= a);
    }
}
