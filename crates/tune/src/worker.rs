//! Worker side of the multi-process trial farm, and the stdio wire
//! protocol both sides speak.
//!
//! A farm run is the ordinary tuner with the objective's *execution*
//! moved out of process: the parent ([`crate::farm::WorkerFarm`]) spawns
//! `e2clab worker` children and streams asks to them over stdin,
//! collecting results (and heartbeats) over stdout. Everything
//! decision-bearing — searcher draws, commit order, scheduler verdicts,
//! journal appends — stays in the parent, which is why artifacts are
//! byte-identical to an in-process run at any worker count.
//!
//! ## Frames
//!
//! Each message is one length-prefixed frame, journal-style:
//!
//! ```text
//! [u32 LE payload length][u32 LE CRC-32 of payload][payload bytes]
//! ```
//!
//! using the same 8-byte header size, CRC and record cap as the run
//! journal ([`e2c_journal::HEADER`], [`e2c_journal::crc32`],
//! [`e2c_journal::MAX_RECORD`]). The payload is a tab-separated record in
//! the shared [`e2c_journal::wire`] dialect: escaped strings, canonical
//! integers, shortest-round-trip floats. Every accepted payload re-encodes
//! byte-identically ([`WireMsg::parse`] ∘ [`WireMsg::encode`] is the
//! identity on valid frames — the fuzz harness checks this), so a frame a
//! peer cannot re-encode is *corruption*, and the farm treats it as a
//! lost worker rather than guessing.
//!
//! ## Messages
//!
//! | payload | direction | meaning |
//! |---|---|---|
//! | `hello <version>` | worker → tuner | protocol handshake, sent once |
//! | `heartbeat <seq>` | worker → tuner | liveness, every ~250 ms |
//! | `ask <trial> <attempt> <traced> <config>` | tuner → worker | run one attempt |
//! | `result <trial> <attempt> ok …` | worker → tuner | value + aux pairs + trace events |
//! | `result <trial> <attempt> panic <payload>` | worker → tuner | objective panicked |
//! | `shutdown` | tuner → worker | drain and exit |

use std::io::{Read, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use e2c_journal::wire::{escape, parse_f64, parse_u32, parse_u64, unescape};
use parking_lot::Mutex;

/// Bumped whenever the frame grammar changes; the farm refuses a worker
/// whose `hello` does not match exactly.
pub const PROTOCOL_VERSION: u64 = 1;

/// How often a serving worker emits `heartbeat` frames. The farm's
/// stall deadline must be comfortably larger than this.
pub const HEARTBEAT_INTERVAL: Duration = Duration::from_millis(250);

/// One attempt dispatched to a worker.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerAsk {
    /// Trial id (parent-side numbering).
    pub trial: u64,
    /// 0-based execution attempt.
    pub attempt: u32,
    /// Whether the attempt must trace: the worker then runs the objective
    /// against a fresh [`e2c_trace::Tracer`] and ships the drained buffer
    /// back for the parent to splice.
    pub traced: bool,
    /// The configuration to evaluate (external units).
    pub config: Vec<f64>,
}

/// A successful attempt's payload: the metric plus everything the
/// in-process path would have produced as side effects — auxiliary
/// key/value pairs (engine statistics the CLI's artifact hook persists)
/// and the attempt's trace buffer (JSON line + tick bit per event, plus
/// the buffer clock's final value, exactly the shape
/// [`e2c_trace::Tracer::splice`] consumes).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerReply {
    /// The objective's raw return value (may be non-finite; the parent
    /// classifies it exactly as it would an in-process return).
    pub value: f64,
    /// Ordered auxiliary pairs for the parent's artifact hook.
    pub aux: Vec<(String, String)>,
    /// Drained trace events as `(to_json line, ticked)` pairs.
    pub events: Vec<(String, bool)>,
    /// The worker tracer's final clock value.
    pub end_clock: u64,
}

/// Every frame either side of the protocol can carry.
#[derive(Debug, Clone, PartialEq)]
pub enum WireMsg {
    /// Worker → tuner handshake.
    Hello {
        /// The worker's [`PROTOCOL_VERSION`].
        version: u64,
    },
    /// Worker → tuner liveness beacon.
    Heartbeat {
        /// Monotonic per-worker counter.
        seq: u64,
    },
    /// Tuner → worker: run one attempt.
    Ask(WorkerAsk),
    /// Worker → tuner: the attempt returned.
    ResultOk {
        /// Echoed trial id.
        trial: u64,
        /// Echoed attempt index.
        attempt: u32,
        /// The attempt's payload.
        reply: WorkerReply,
    },
    /// Worker → tuner: the objective panicked; the payload rides along so
    /// the parent can re-raise it and classify identically.
    ResultPanic {
        /// Echoed trial id.
        trial: u64,
        /// Echoed attempt index.
        attempt: u32,
        /// The panic payload, rendered to a string.
        payload: String,
    },
    /// Tuner → worker: drain and exit cleanly.
    Shutdown,
}

impl WireMsg {
    /// Encode to the canonical tab-separated payload (no framing).
    pub fn encode(&self) -> String {
        match self {
            WireMsg::Hello { version } => format!("hello\t{version}"),
            WireMsg::Heartbeat { seq } => format!("heartbeat\t{seq}"),
            WireMsg::Ask(ask) => {
                let config = if ask.config.is_empty() {
                    "-".to_string()
                } else {
                    let mut out = String::new();
                    for (i, v) in ask.config.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        out.push_str(&v.to_string());
                    }
                    out
                };
                format!(
                    "ask\t{}\t{}\t{}\t{config}",
                    ask.trial,
                    ask.attempt,
                    u8::from(ask.traced)
                )
            }
            WireMsg::ResultOk {
                trial,
                attempt,
                reply,
            } => {
                let mut out = format!(
                    "result\t{trial}\t{attempt}\tok\t{}\t{}",
                    reply.value,
                    reply.aux.len()
                );
                for (k, v) in &reply.aux {
                    out.push('\t');
                    out.push_str(&escape(k));
                    out.push('\t');
                    out.push_str(&escape(v));
                }
                out.push('\t');
                out.push_str(&reply.events.len().to_string());
                out.push('\t');
                out.push_str(&reply.end_clock.to_string());
                for (json, ticked) in &reply.events {
                    out.push('\t');
                    out.push_str(&escape(json));
                    out.push('\t');
                    out.push(if *ticked { '1' } else { '0' });
                }
                out
            }
            WireMsg::ResultPanic {
                trial,
                attempt,
                payload,
            } => {
                format!("result\t{trial}\t{attempt}\tpanic\t{}", escape(payload))
            }
            WireMsg::Shutdown => "shutdown".to_string(),
        }
    }

    /// Strict parse of a tab-separated payload. Anything [`encode`]
    /// would not have written — wrong field counts, non-canonical
    /// numbers, unknown flags, trailing fields — is an error.
    ///
    /// [`encode`]: WireMsg::encode
    pub fn parse(payload: &str) -> Result<WireMsg, String> {
        let fields: Vec<&str> = payload.split('\t').collect();
        match fields.as_slice() {
            ["hello", version] => Ok(WireMsg::Hello {
                version: parse_u64(version)?,
            }),
            ["heartbeat", seq] => Ok(WireMsg::Heartbeat {
                seq: parse_u64(seq)?,
            }),
            ["ask", trial, attempt, traced, config] => Ok(WireMsg::Ask(WorkerAsk {
                trial: parse_u64(trial)?,
                attempt: parse_u32(attempt)?,
                traced: parse_flag(traced)?,
                config: parse_config(config)?,
            })),
            ["shutdown"] => Ok(WireMsg::Shutdown),
            ["result", trial, attempt, "ok", value, rest @ ..] => {
                let trial = parse_u64(trial)?;
                let attempt = parse_u32(attempt)?;
                let reply = parse_ok_tail(parse_f64(value)?, rest)?;
                Ok(WireMsg::ResultOk {
                    trial,
                    attempt,
                    reply,
                })
            }
            ["result", trial, attempt, "panic", payload] => Ok(WireMsg::ResultPanic {
                trial: parse_u64(trial)?,
                attempt: parse_u32(attempt)?,
                payload: unescape(payload)?,
            }),
            ["result", ..] => Err("malformed result frame".to_string()),
            [kind, ..] if matches!(*kind, "hello" | "heartbeat" | "ask" | "shutdown") => {
                Err(format!("wrong field count for `{kind}` frame"))
            }
            [other, ..] => Err(format!("unknown frame kind `{other}`")),
            [] => Err("empty frame".to_string()),
        }
    }
}

/// Strict `0`/`1` boolean field.
fn parse_flag(s: &str) -> Result<bool, String> {
    match s {
        "0" => Ok(false),
        "1" => Ok(true),
        other => Err(format!("bad flag `{other}` (expected 0 or 1)")),
    }
}

/// Comma-joined canonical floats; `-` is the empty configuration (a bare
/// empty field would not survive the split round-trip).
fn parse_config(s: &str) -> Result<Vec<f64>, String> {
    if s == "-" {
        return Ok(Vec::new());
    }
    s.split(',').map(parse_f64).collect()
}

/// The counted sections of an `ok` result: `<aux_n> (<k> <v>)* <ev_n>
/// <end_clock> (<json> <tick>)*`. Counts must match the remaining fields
/// exactly.
fn parse_ok_tail(value: f64, rest: &[&str]) -> Result<WorkerReply, String> {
    let mut cursor = rest.iter();
    let mut next = |what: &str| {
        cursor
            .next()
            .ok_or_else(|| format!("truncated result frame (missing {what})"))
    };
    let aux_n = parse_u64(next("aux count")?)?;
    let mut aux = Vec::with_capacity(aux_n.min(1024) as usize);
    for _ in 0..aux_n {
        let k = unescape(next("aux key")?)?;
        let v = unescape(next("aux value")?)?;
        aux.push((k, v));
    }
    let ev_n = parse_u64(next("event count")?)?;
    let end_clock = parse_u64(next("end clock")?)?;
    let mut events = Vec::with_capacity(ev_n.min(4096) as usize);
    for _ in 0..ev_n {
        let json = unescape(next("event json")?)?;
        let ticked = parse_flag(next("event tick")?)?;
        events.push((json, ticked));
    }
    if cursor.next().is_some() {
        return Err("trailing fields in result frame".to_string());
    }
    Ok(WorkerReply {
        value,
        aux,
        events,
        end_clock,
    })
}

/// Write one framed message and flush it (the peer reads frames as they
/// arrive; an unflushed ask would stall the farm).
pub fn write_frame<W: Write>(w: &mut W, msg: &WireMsg) -> std::io::Result<()> {
    let payload = msg.encode();
    let bytes = payload.as_bytes();
    let mut frame = Vec::with_capacity(e2c_journal::HEADER + bytes.len());
    frame.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    frame.extend_from_slice(&e2c_journal::crc32(bytes).to_le_bytes());
    frame.extend_from_slice(bytes);
    w.write_all(&frame)?;
    w.flush()
}

/// Read one framed message. `Ok(None)` is clean end-of-stream (the peer
/// closed before a new frame started); a partial header, oversized
/// length, CRC mismatch, non-UTF-8 payload or unparseable record is a
/// typed error — the farm treats any of them as a lost worker.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<WireMsg>, String> {
    let mut header = [0u8; e2c_journal::HEADER];
    let mut got = 0;
    while got < header.len() {
        match r.read(&mut header[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => return Err("truncated frame header".to_string()),
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(format!("read frame header: {e}")),
        }
    }
    let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
    let crc = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
    if len > e2c_journal::MAX_RECORD {
        return Err(format!("frame length {len} exceeds the record cap"));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)
        .map_err(|e| format!("read frame payload: {e}"))?;
    if e2c_journal::crc32(&payload) != crc {
        return Err("frame CRC mismatch".to_string());
    }
    let text =
        std::str::from_utf8(&payload).map_err(|e| format!("frame payload not UTF-8: {e}"))?;
    WireMsg::parse(text).map(Some)
}

/// Run the worker loop over this process's stdin/stdout: handshake,
/// heartbeat in the background, evaluate asks with `objective` (under
/// `catch_unwind`, shipping panics back as data), exit on `shutdown` or
/// end-of-stream.
///
/// The objective receives the ask and — when the ask is traced — a fresh
/// per-attempt [`e2c_trace::Tracer`] whose drained buffer is shipped back
/// with the result; it returns the metric value plus auxiliary pairs for
/// the parent's artifact hook.
pub fn serve<F>(objective: F) -> Result<(), String>
where
    F: Fn(&WorkerAsk, Option<&e2c_trace::Tracer>) -> (f64, Vec<(String, String)>),
{
    let stdout = Arc::new(Mutex::new(std::io::stdout()));
    write_frame(
        &mut *stdout.lock(),
        &WireMsg::Hello {
            version: PROTOCOL_VERSION,
        },
    )
    .map_err(|e| format!("write hello: {e}"))?;

    let stop = Arc::new(AtomicBool::new(false));
    let heartbeat = {
        let stdout = Arc::clone(&stdout);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut seq = 0u64;
            while !stop.load(Ordering::SeqCst) {
                // detlint: allow(DET004) heartbeat cadence: liveness beacon only; no result or decision reads this timing
                std::thread::sleep(HEARTBEAT_INTERVAL);
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                seq += 1;
                if write_frame(&mut *stdout.lock(), &WireMsg::Heartbeat { seq }).is_err() {
                    break; // parent gone; the main loop will see EOF too
                }
            }
        })
    };

    let mut stdin = std::io::stdin().lock();
    let outcome = loop {
        match read_frame(&mut stdin) {
            Ok(None) | Ok(Some(WireMsg::Shutdown)) => break Ok(()),
            Ok(Some(WireMsg::Ask(ask))) => {
                let tracer = ask.traced.then(e2c_trace::Tracer::new);
                let run = catch_unwind(AssertUnwindSafe(|| objective(&ask, tracer.as_ref())));
                let reply = match run {
                    Ok((value, aux)) => {
                        let (events, end_clock) = tracer
                            .as_ref()
                            .map(|t| t.drain_for_splice())
                            .unwrap_or_default();
                        let events = events
                            .into_iter()
                            .map(|(ev, ticked)| (ev.to_json(), ticked))
                            .collect();
                        WireMsg::ResultOk {
                            trial: ask.trial,
                            attempt: ask.attempt,
                            reply: WorkerReply {
                                value,
                                aux,
                                events,
                                end_clock,
                            },
                        }
                    }
                    Err(panic) => WireMsg::ResultPanic {
                        trial: ask.trial,
                        attempt: ask.attempt,
                        payload: panic_payload(panic.as_ref()),
                    },
                };
                if let Err(e) = write_frame(&mut *stdout.lock(), &reply) {
                    break Err(format!("write result: {e}"));
                }
            }
            Ok(Some(other)) => {
                break Err(format!(
                    "unexpected frame from the tuner: {}",
                    other.encode().replace('\t', " ")
                ))
            }
            Err(e) => break Err(format!("bad frame from the tuner: {e}")),
        }
    };
    stop.store(true, Ordering::SeqCst);
    let _ = heartbeat.join();
    outcome
}

/// Render a panic payload to the string the parent re-raises — the same
/// downcasts the tuner's own panic classification performs, so the
/// round-trip through the wire preserves the message byte-for-byte.
fn panic_payload(panic: &(dyn std::any::Any + Send)) -> String {
    panic
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| panic.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "opaque panic payload".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: &WireMsg) {
        let payload = msg.encode();
        let parsed = WireMsg::parse(&payload).unwrap();
        assert_eq!(&parsed, msg);
        assert_eq!(parsed.encode(), payload, "re-encode must be the identity");
    }

    #[test]
    fn every_message_roundtrips() {
        roundtrip(&WireMsg::Hello { version: 1 });
        roundtrip(&WireMsg::Heartbeat { seq: 42 });
        roundtrip(&WireMsg::Shutdown);
        roundtrip(&WireMsg::Ask(WorkerAsk {
            trial: 7,
            attempt: 2,
            traced: true,
            config: vec![1.5, -0.25, 3.0],
        }));
        roundtrip(&WireMsg::Ask(WorkerAsk {
            trial: 0,
            attempt: 0,
            traced: false,
            config: vec![],
        }));
        roundtrip(&WireMsg::ResultOk {
            trial: 3,
            attempt: 1,
            reply: WorkerReply {
                value: -2.5,
                aux: vec![
                    ("mean".into(), "1.25".into()),
                    ("odd\tkey".into(), "".into()),
                ],
                events: vec![("{\"seq\":0}".into(), true), ("has\ttab".into(), false)],
                end_clock: 17,
            },
        });
        roundtrip(&WireMsg::ResultPanic {
            trial: 9,
            attempt: 0,
            payload: "boom\nwith newline".into(),
        });
    }

    #[test]
    fn parse_rejects_malformed_frames() {
        for bad in [
            "",
            "bogus\t1",
            "hello",
            "hello\t01",
            "heartbeat\t1\textra",
            "ask\t1\t0\t2\t1.5",           // bad traced flag
            "ask\t1\t0\t1\t1.5,,2.0",      // empty config entry
            "ask\t1\t0\t1\t",              // empty config field must be `-`
            "result\t1\t0\tok\t1.5\t1\tk", // aux count overruns fields
            "result\t1\t0\tok\t1.5\t0\t0\t0\textra",
            "result\t1\t0\tok\t01.5\t0\t0\t0", // non-canonical value
            "result\t1\t0\tpanic",
            "result\t1\t0\twhat\tx",
            "shutdown\tnow",
        ] {
            assert!(WireMsg::parse(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn nan_value_survives_the_wire() {
        let msg = WireMsg::ResultOk {
            trial: 1,
            attempt: 0,
            reply: WorkerReply {
                value: f64::NAN,
                aux: vec![],
                events: vec![],
                end_clock: 0,
            },
        };
        let payload = msg.encode();
        let parsed = WireMsg::parse(&payload).unwrap();
        assert_eq!(parsed.encode(), payload, "NaN re-encodes identically");
        match parsed {
            WireMsg::ResultOk { reply, .. } => assert!(reply.value.is_nan()),
            other => panic!("wrong message: {other:?}"),
        }
    }

    #[test]
    fn frames_survive_the_byte_layer_and_detect_corruption() {
        let msg = WireMsg::Ask(WorkerAsk {
            trial: 5,
            attempt: 1,
            traced: true,
            config: vec![0.5],
        });
        let mut buf = Vec::new();
        write_frame(&mut buf, &msg).unwrap();
        write_frame(&mut buf, &WireMsg::Shutdown).unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap(), Some(msg));
        assert_eq!(read_frame(&mut r).unwrap(), Some(WireMsg::Shutdown));
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF");

        // Flip a payload byte: the CRC catches it.
        let mut corrupt = buf.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0x40;
        let mut r = &corrupt[..];
        assert_eq!(
            read_frame(&mut r).unwrap(),
            Some(WireMsg::Ask(WorkerAsk {
                trial: 5,
                attempt: 1,
                traced: true,
                config: vec![0.5],
            }))
        );
        assert!(read_frame(&mut r).is_err());

        // Truncate mid-payload: typed error, not a hang or panic.
        let mut r = &buf[..buf.len() - 2];
        let _ = read_frame(&mut r).unwrap();
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn panic_payloads_render_like_the_tuner() {
        let caught = catch_unwind(|| panic!("boom at {}", 3)).unwrap_err();
        assert_eq!(panic_payload(caught.as_ref()), "boom at 3");
        let caught = catch_unwind(|| std::panic::panic_any("static".to_string())).unwrap_err();
        assert_eq!(panic_payload(caught.as_ref()), "static");
    }
}
