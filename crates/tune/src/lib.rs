//! # e2c-tune — asynchronous parallel trial execution
//!
//! The paper's Optimization Manager "takes advantage of Ray [37] to run
//! parallel application workflows" with Ray Tune providing search
//! algorithms, concurrency limiting and scheduling (Listing 1 uses
//! `SkOptSearch`, `ConcurrencyLimiter(max_concurrent=2)` and
//! `AsyncHyperBandScheduler`). This crate reimplements that trio on OS
//! threads:
//!
//! * [`searcher`] — the ask/tell [`searcher::Searcher`] abstraction, the
//!   Bayesian [`searcher::SkOptSearch`], [`searcher::RandomSearch`], a
//!   list-driven [`searcher::GridSearch`], and
//!   [`searcher::ConcurrencyLimiter`];
//! * [`scheduler`] — trial schedulers: [`scheduler::Fifo`], the ASHA
//!   [`scheduler::AsyncHyperBand`], and [`scheduler::MedianStopping`];
//! * [`evolution`] — a generational GA behind the ask/tell interface,
//!   for the paper's "short-time running applications" (§III-B2);
//! * [`logger`] — append-only JSONL/CSV trial logs ("manages model
//!   checkpoints and logging");
//! * [`fault`] — fault tolerance: [`fault::RetryPolicy`] (exponential
//!   backoff with seed-deterministic jitter) and the deterministic
//!   failure-injection [`fault::FaultPlan`] — edge testbeds fail
//!   routinely, so failed trials are retried before the searcher is fed
//!   a penalty;
//! * [`trial`] — trial state and records, including per-attempt
//!   bookkeeping ([`trial::Attempt`]) and the typed
//!   [`trial::TrialError`];
//! * [`journal`] — crash safety: the typed run journal
//!   ([`journal::RunJournal`]) appended to an `e2c-journal` WAL, and the
//!   deterministic [`journal::replay`] that rebuilds searcher/scheduler
//!   state on `--resume`;
//! * [`tuner`] — [`tuner::Tuner`], which fans trials out over worker
//!   threads, feeding observations back to the searcher *asynchronously*
//!   (workers do not wait for a generation barrier — the paper's
//!   "asynchronous model optimization");
//! * [`analysis`] — the result set: best trial, per-trial records;
//! * [`clock`] — the single sanctioned wall-clock read (detlint DET002):
//!   watchdog, backoff and deadline timing all route through it;
//! * [`worker`] — the framed stdio protocol of the multi-process trial
//!   farm, and [`worker::serve`], the worker-process main loop;
//! * [`supervisor`] — the farm's crash-tolerance core as a pure,
//!   property-tested state machine (heartbeats, stall deadlines, seeded
//!   respawn backoff, single-resolution tickets);
//! * [`farm`] — the parent side: [`farm::WorkerFarm`] spawns sanitized
//!   worker processes, re-dispatches asks off lost workers, and keeps
//!   every artifact byte-identical to an in-process run.

pub mod analysis;
pub mod clock;
pub mod evolution;
pub mod farm;
pub mod fault;
pub mod journal;
pub mod logger;
pub mod scheduler;
pub mod searcher;
pub mod supervisor;
pub mod trial;
pub mod tuner;
pub mod worker;

pub use analysis::Analysis;
pub use evolution::EvolutionSearch;
pub use farm::{FarmOutcome, FarmSpec, WorkerFarm};
pub use fault::{FaultAction, FaultPlan, FaultSpec, RetryPolicy};
pub use journal::{load_events, replay, ResumeState, RunEvent, RunJournal, CRASH_EXIT_CODE};
pub use logger::TrialLogger;
pub use scheduler::{AsyncHyperBand, Decision, Fifo, MedianStopping, Scheduler, TracingScheduler};
pub use searcher::{ConcurrencyLimiter, GridSearch, RandomSearch, Searcher, SkOptSearch};
pub use supervisor::{SlotState, StaleResult, Supervisor};
pub use trial::{Attempt, Trial, TrialError, TrialStatus};
pub use tuner::{TrialContext, Tuner};
pub use worker::{serve, WireMsg, WorkerAsk, WorkerReply};
