//! Trial logging (Ray Tune "manages model checkpoints and logging").
//!
//! A [`TrialLogger`] appends one JSON-lines record per finished trial to
//! `trials.jsonl` in the experiment directory, and the intermediate
//! reports of each trial to `trial_<id>/progress.csv`. Everything is
//! plain-text and deterministic — the logging half of the Phase III
//! reproducibility story. Crash-safe runs use [`TrialLogger::write_all`],
//! which atomically rewrites the whole log from the settled trial set so
//! a resumed run converges on the same bytes as an uninterrupted one.

use crate::trial::{Trial, TrialStatus};
use std::fmt::Write as _;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Append-only on-disk trial log.
pub struct TrialLogger {
    root: PathBuf,
}

impl TrialLogger {
    /// Log under `root` (created if missing).
    pub fn new(root: &Path) -> io::Result<Self> {
        std::fs::create_dir_all(root)?;
        Ok(TrialLogger {
            root: root.to_path_buf(),
        })
    }

    /// The log directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Record a finished trial: one JSONL line plus its progress file.
    pub fn log(&self, trial: &Trial) -> io::Result<()> {
        let mut jsonl = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.root.join("trials.jsonl"))?;
        writeln!(jsonl, "{}", Self::to_json(trial))?;

        if !trial.reports.is_empty() {
            // Same atomic write-rename path as `write_all`: progress.csv
            // is small, and a torn half-file would poison a resume diff.
            let dir = self.root.join(format!("trial_{}", trial.id));
            let mut csv = String::from("iteration,value\n");
            for (iter, value) in &trial.reports {
                let _ = writeln!(csv, "{iter},{value}");
            }
            e2c_journal::write_atomic(&dir.join("progress.csv"), csv.as_bytes())?;
        }
        Ok(())
    }

    /// Atomically (re)write the whole log from a finished trial set:
    /// `trials.jsonl` and every per-trial progress file are replaced via
    /// tmp+rename, so a crash mid-write leaves the previous snapshot
    /// intact and a resumed run overwrites stale pre-crash lines instead
    /// of appending duplicates.
    pub fn write_all(&self, trials: &[Trial]) -> io::Result<()> {
        let mut jsonl = String::new();
        for trial in trials {
            jsonl.push_str(&Self::to_json(trial));
            jsonl.push('\n');
        }
        e2c_journal::write_atomic(&self.root.join("trials.jsonl"), jsonl.as_bytes())?;
        for trial in trials {
            if trial.reports.is_empty() {
                continue;
            }
            let mut csv = String::from("iteration,value\n");
            for (iter, value) in &trial.reports {
                let _ = writeln!(csv, "{iter},{value}");
            }
            let dir = self.root.join(format!("trial_{}", trial.id));
            e2c_journal::write_atomic(&dir.join("progress.csv"), csv.as_bytes())?;
        }
        Ok(())
    }

    /// Serialize a trial as one JSON object (hand-rolled: flat structure,
    /// no external JSON dependency). The retry layer's bookkeeping rides
    /// along: `attempts` is the execution count and `failures` holds the
    /// error of every unsuccessful attempt, in order.
    fn to_json(trial: &Trial) -> String {
        let (status, value) = match &trial.status {
            TrialStatus::Terminated(v) => ("terminated", Some(*v)),
            TrialStatus::StoppedEarly(v) => ("stopped_early", Some(*v)),
            TrialStatus::Failed(_) => ("failed", None),
            TrialStatus::Pending => ("pending", None),
            TrialStatus::Running => ("running", None),
        };
        let config = trial
            .config
            .iter()
            .map(|x| x.to_string())
            .collect::<Vec<_>>()
            .join(",");
        let value_json = value
            .map(|v| v.to_string())
            .unwrap_or_else(|| "null".to_string());
        let failures = trial
            .attempts
            .iter()
            .filter_map(|a| a.error.as_ref())
            .map(|e| json_escape(&e.to_string()))
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"id\":{},\"status\":\"{}\",\"config\":[{}],\"value\":{},\"iterations\":{},\"attempts\":{},\"failures\":[{}]}}",
            trial.id,
            status,
            config,
            value_json,
            trial.iterations(),
            trial.attempt_count(),
            failures
        )
    }

    /// Read back the `(id, status, value)` triples from `trials.jsonl`
    /// with a minimal field scanner (enough to verify logs in tests and
    /// to resume bookkeeping).
    pub fn load_index(&self) -> io::Result<Vec<(u64, String, Option<f64>)>> {
        let text = std::fs::read_to_string(self.root.join("trials.jsonl"))?;
        let mut out = Vec::new();
        for line in text.lines() {
            let grab = |key: &str| -> Option<String> {
                let tag = format!("\"{key}\":");
                let start = line.find(&tag)? + tag.len();
                let rest = line.get(start..)?;
                let end = rest.find([',', '}']).unwrap_or(rest.len());
                Some(rest.get(..end)?.trim_matches('"').to_string())
            };
            let id: u64 = grab("id")
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad id"))?;
            let status = grab("status").unwrap_or_default();
            let value = grab("value").and_then(|s| s.parse::<f64>().ok());
            out.push((id, status, value));
        }
        Ok(out)
    }
}

/// Quote and escape an arbitrary string as a JSON string literal
/// (failure reasons may carry panic payloads with quotes or newlines).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trial::Attempt;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("e2c-tune-log-{}-{name}", std::process::id()))
    }

    #[test]
    fn logs_and_reloads_trials() {
        let dir = tmp("roundtrip");
        let _ = std::fs::remove_dir_all(&dir);
        let logger = TrialLogger::new(&dir).unwrap();
        let mut t0 = Trial::new(0, vec![40.0, 7.0]);
        t0.status = TrialStatus::Terminated(2.5);
        t0.reports = vec![(1, 3.0), (2, 2.5)];
        let mut t1 = Trial::new(1, vec![20.0, 3.0]);
        t1.status = TrialStatus::Failed("boom".into());
        logger.log(&t0).unwrap();
        logger.log(&t1).unwrap();

        let index = logger.load_index().unwrap();
        assert_eq!(index.len(), 2);
        assert_eq!(index[0], (0, "terminated".to_string(), Some(2.5)));
        assert_eq!(index[1], (1, "failed".to_string(), None));

        let progress = std::fs::read_to_string(dir.join("trial_0").join("progress.csv")).unwrap();
        assert_eq!(progress, "iteration,value\n1,3\n2,2.5\n");
        assert!(
            !dir.join("trial_1").exists(),
            "no reports, no progress file"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn json_line_layout_is_stable() {
        // Config values and statuses are numeric/fixed tokens; failure
        // reasons are escaped. Spot-check a full line.
        let mut t = Trial::new(7, vec![1.5, -2.0]);
        t.status = TrialStatus::StoppedEarly(0.25);
        let line = TrialLogger::to_json(&t);
        assert_eq!(
            line,
            "{\"id\":7,\"status\":\"stopped_early\",\"config\":[1.5,-2],\"value\":0.25,\"iterations\":0,\"attempts\":1,\"failures\":[]}"
        );
    }

    #[test]
    fn retried_trial_records_attempts_and_escaped_failures() {
        use crate::trial::TrialError;
        let mut t = Trial::new(2, vec![3.0]);
        t.status = TrialStatus::Terminated(1.0);
        t.attempts = vec![
            Attempt {
                index: 0,
                error: Some(TrialError::Panicked("boom \"quoted\"\nline".into())),
                secs: 0.1,
                raw: None,
            },
            Attempt {
                index: 1,
                error: None,
                secs: 0.2,
                raw: Some(1.0),
            },
        ];
        let line = TrialLogger::to_json(&t);
        assert_eq!(
            line,
            "{\"id\":2,\"status\":\"terminated\",\"config\":[3],\"value\":1,\"iterations\":0,\"attempts\":2,\"failures\":[\"boom \\\"quoted\\\"\\nline\"]}"
        );
    }

    #[test]
    fn write_all_replaces_stale_lines_and_matches_append_logging() {
        let append_dir = tmp("writeall-append");
        let rewrite_dir = tmp("writeall-rewrite");
        let _ = std::fs::remove_dir_all(&append_dir);
        let _ = std::fs::remove_dir_all(&rewrite_dir);
        let mut t0 = Trial::new(0, vec![1.0]);
        t0.status = TrialStatus::Terminated(1.0);
        t0.reports = vec![(1, 1.0)];
        let mut t1 = Trial::new(1, vec![2.0]);
        t1.status = TrialStatus::Failed("broke".into());

        let appender = TrialLogger::new(&append_dir).unwrap();
        appender.log(&t0).unwrap();
        appender.log(&t1).unwrap();

        // A stale pre-crash line must be overwritten, not appended to.
        let rewriter = TrialLogger::new(&rewrite_dir).unwrap();
        rewriter.log(&t0).unwrap();
        rewriter.write_all(&[t0, t1]).unwrap();

        let a = std::fs::read_to_string(append_dir.join("trials.jsonl")).unwrap();
        let b = std::fs::read_to_string(rewrite_dir.join("trials.jsonl")).unwrap();
        assert_eq!(a, b);
        let a = std::fs::read_to_string(append_dir.join("trial_0/progress.csv")).unwrap();
        let b = std::fs::read_to_string(rewrite_dir.join("trial_0/progress.csv")).unwrap();
        assert_eq!(a, b);
        std::fs::remove_dir_all(&append_dir).unwrap();
        std::fs::remove_dir_all(&rewrite_dir).unwrap();
    }

    #[test]
    fn escape_handles_control_and_quote_chars() {
        assert_eq!(json_escape("plain"), "\"plain\"");
        assert_eq!(json_escape("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_escape("x\u{1}y"), "\"x\\u0001y\"");
    }
}
