//! Property-based coverage of the farm supervisor's state machine.
//!
//! The supervisor is the crash-tolerance core of the multi-process trial
//! farm: every scheduling and loss decision the farm makes goes through
//! it. These properties drive it with arbitrary interleavings of
//! assignment, completion, loss, heartbeats, stall scans and respawns —
//! including deliberately stale and out-of-range events — against a
//! shadow model, and check the invariants the farm leans on:
//!
//! * **a ticket resolves at most once** — either its `complete` is
//!   accepted or its loss orphans it, never both, never twice (no
//!   double-commit of an ask);
//! * **permits are conserved** — `busy_count` always equals the number
//!   of outstanding tickets and never exceeds the worker count (no
//!   leaked or fabricated admission permits);
//! * **tickets are never reused**, even across respawn generations;
//! * **respawns stay within budget**, and a terminally dead farm is
//!   recognized as such.

use e2c_tune::fault::RetryPolicy;
use e2c_tune::supervisor::{SlotState, StaleResult, Supervisor};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use std::collections::BTreeMap;
use std::collections::BTreeSet;

/// One scripted event in an interleaving. Worker indices are drawn a bit
/// past the farm size so out-of-range events are exercised too.
#[derive(Debug, Clone)]
enum Op {
    /// Claim a slot for the next ask.
    Assign,
    /// Deliver the outstanding result for `worker` (if any).
    CompleteCurrent { worker: usize },
    /// Replay an already-resolved ticket at `worker` — must be refused.
    CompleteStale { worker: usize },
    /// The worker died or was declared stalled.
    Lost { worker: usize },
    /// A sign of life.
    Heartbeat { worker: usize },
    /// Let time pass.
    Advance { ms: u64 },
    /// Kill everything the stall scan reports.
    ReapStalled,
    /// Respawn every dead slot whose backoff has elapsed.
    RespawnDue,
}

fn arb_op(workers: usize) -> impl Strategy<Value = Op> {
    let w = 0..workers + 2; // +2: out-of-range indices must be harmless
                            // Assign/complete arms are repeated: interleavings should spend most
                            // of their steps actually cycling permits (the vendored proptest has
                            // no weighted `prop_oneof`).
    prop_oneof![
        Just(Op::Assign),
        Just(Op::Assign),
        Just(Op::Assign),
        w.clone().prop_map(|worker| Op::CompleteCurrent { worker }),
        w.clone().prop_map(|worker| Op::CompleteCurrent { worker }),
        w.clone().prop_map(|worker| Op::CompleteCurrent { worker }),
        w.clone().prop_map(|worker| Op::CompleteStale { worker }),
        w.clone().prop_map(|worker| Op::Lost { worker }),
        w.clone().prop_map(|worker| Op::Lost { worker }),
        w.clone().prop_map(|worker| Op::Heartbeat { worker }),
        w.clone().prop_map(|worker| Op::Heartbeat { worker }),
        (1u64..2_000).prop_map(|ms| Op::Advance { ms }),
        (1u64..2_000).prop_map(|ms| Op::Advance { ms }),
        Just(Op::ReapStalled),
        Just(Op::RespawnDue),
    ]
}

/// Shadow model: which ticket is outstanding where, and everything that
/// has ever resolved (completed or orphaned).
#[derive(Default)]
struct Model {
    outstanding: BTreeMap<u64, usize>,
    resolved: BTreeSet<u64>,
    issued: BTreeSet<u64>,
}

impl Model {
    fn ticket_at(&self, worker: usize) -> Option<u64> {
        self.outstanding
            .iter()
            .find(|(_, &w)| w == worker)
            .map(|(&t, _)| t)
    }

    fn resolve(&mut self, ticket: u64) -> Result<(), TestCaseError> {
        prop_assert!(
            self.outstanding.remove(&ticket).is_some(),
            "resolved ticket {ticket} was not outstanding"
        );
        prop_assert!(
            self.resolved.insert(ticket),
            "ticket {ticket} resolved twice"
        );
        Ok(())
    }
}

/// Cross-check the supervisor against the model after every step.
fn check_invariants(
    sup: &Supervisor,
    model: &Model,
    workers: usize,
    max_respawns: u32,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(
        sup.busy_count(),
        model.outstanding.len(),
        "permit count drifted from the outstanding-ticket count"
    );
    prop_assert!(sup.busy_count() <= workers, "more permits than workers");
    for (&ticket, &worker) in &model.outstanding {
        prop_assert_eq!(
            sup.state(worker),
            Some(SlotState::Busy { ticket }),
            "model says worker {} runs ticket {}",
            worker,
            ticket
        );
    }
    for worker in 0..workers {
        let gen = sup.generation(worker).unwrap();
        prop_assert!(
            gen <= max_respawns as u64,
            "generation {gen} exceeds the respawn budget"
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary interleavings of every event the farm can feed the
    /// supervisor never double-resolve a ticket, never leak or fabricate
    /// a permit, and never reuse a ticket.
    #[test]
    fn interleavings_preserve_ticket_and_permit_invariants(
        workers in 1usize..5,
        ops in prop::collection::vec(arb_op(4), 1..80),
    ) {
        let max_respawns = 2u32;
        let mut sup = Supervisor::new(workers, 500, max_respawns, 7, RetryPolicy::default());
        let mut model = Model::default();
        let mut now = 0u64;

        for op in ops {
            match op {
                Op::Assign => {
                    let had_idle = (0..workers)
                        .any(|w| sup.state(w) == Some(SlotState::Idle));
                    match sup.try_assign(now) {
                        Some((worker, ticket)) => {
                            prop_assert!(had_idle, "assigned with no idle slot");
                            prop_assert!(worker < workers);
                            prop_assert!(
                                model.issued.insert(ticket),
                                "ticket {} issued twice", ticket
                            );
                            model.outstanding.insert(ticket, worker);
                        }
                        None => prop_assert!(!had_idle, "idle slot refused an ask"),
                    }
                }
                Op::CompleteCurrent { worker } => {
                    match model.ticket_at(worker) {
                        Some(ticket) => {
                            prop_assert_eq!(sup.complete(worker, ticket, now), Ok(()));
                            model.resolve(ticket)?;
                        }
                        None => {
                            // Nothing outstanding there: any ticket number
                            // must be refused, whatever the reason.
                            prop_assert!(sup.complete(worker, 0, now).is_err());
                        }
                    }
                }
                Op::CompleteStale { worker } => {
                    // Replaying any resolved ticket must be refused — this
                    // is the no-double-commit guarantee under result races.
                    if let Some(&ticket) = model.resolved.iter().next_back() {
                        let refused = sup.complete(worker, ticket, now);
                        prop_assert!(
                            matches!(
                                refused,
                                Err(StaleResult::NotBusy)
                                    | Err(StaleResult::WrongTicket { .. })
                                    | Err(StaleResult::NoSuchWorker)
                            ),
                            "stale ticket {} re-accepted: {:?}", ticket, refused
                        );
                    }
                }
                Op::Lost { worker } => {
                    let expected = model.ticket_at(worker);
                    let orphaned = sup.lost(worker, now);
                    if worker < workers {
                        prop_assert_eq!(orphaned, expected, "wrong orphan on loss");
                    } else {
                        prop_assert_eq!(orphaned, None);
                    }
                    if let Some(ticket) = orphaned {
                        model.resolve(ticket)?;
                    }
                }
                Op::Heartbeat { worker } => sup.heartbeat(worker, now),
                Op::Advance { ms } => now += ms,
                Op::ReapStalled => {
                    for worker in sup.stalled(now) {
                        prop_assert!(
                            !matches!(sup.state(worker), Some(SlotState::Dead { .. })),
                            "stall scan reported a dead slot"
                        );
                        if let Some(ticket) = sup.lost(worker, now) {
                            model.resolve(ticket)?;
                        }
                    }
                }
                Op::RespawnDue => {
                    for worker in sup.due_respawns(now) {
                        let before = sup.generation(worker).unwrap();
                        sup.respawned(worker, now);
                        prop_assert_eq!(sup.state(worker), Some(SlotState::Idle));
                        prop_assert_eq!(sup.generation(worker), Some(before + 1));
                    }
                }
            }
            check_invariants(&sup, &model, workers, max_respawns)?;
        }

        // Terminal check: `all_lost` answers exactly "every slot is dead
        // with no respawn pending".
        let every_slot_terminal = (0..workers).all(|w| {
            matches!(sup.state(w), Some(SlotState::Dead { respawn_at_ms: None }))
        });
        prop_assert_eq!(sup.all_lost(), every_slot_terminal);
    }

    /// Loss is idempotent and a dead slot never yields permits: hammering
    /// one slot with losses orphans its ticket exactly once.
    #[test]
    fn repeated_losses_orphan_exactly_once(losses in 2usize..8) {
        let mut sup = Supervisor::new(1, 500, 1, 3, RetryPolicy::default());
        let (worker, ticket) = sup.try_assign(0).unwrap();
        let mut orphans = 0usize;
        for i in 0..losses {
            if let Some(t) = sup.lost(worker, i as u64) {
                prop_assert_eq!(t, ticket);
                orphans += 1;
            }
        }
        prop_assert_eq!(orphans, 1, "ticket orphaned more than once");
        prop_assert_eq!(sup.busy_count(), 0);
        prop_assert_eq!(sup.complete(worker, ticket, 99), Err(StaleResult::NotBusy));
    }
}
