//! Property-based coverage of the run journal's escaped-TSV wire format.
//!
//! The journal is the crash-safety story's single source of truth, so its
//! encoding must round-trip *exactly* — including payloads carrying tabs,
//! newlines, backslashes and multi-byte unicode — and its decoder must
//! reject truncated records rather than misread them.  Two deliberate
//! compatibility holes are pinned as such: a version-2 `meta` with its
//! version field dropped *is* a valid version-1 meta, and a `tell` with
//! its ask-count dropped *is* a valid version-1 tell (that is how old
//! journals stay readable); both decode to the legacy variant, never to
//! the record that was truncated.

use e2c_tune::journal::{RunEvent, WIRE_VERSION};
use e2c_tune::TrialError;
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

/// Printable ASCII plus the characters the escaper exists for (tab,
/// newline, carriage return, backslash) plus multi-byte unicode.
const PAYLOAD: &str = "[ -~\t\n\réà→ß🦀]{0,24}";

fn arb_config() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e4f64..1e4, 0..5)
}

fn arb_error() -> impl Strategy<Value = Option<TrialError>> {
    (0u32..5, PAYLOAD).prop_map(|(kind, payload)| match kind {
        0 => None,
        1 => Some(TrialError::Panicked(payload)),
        2 => Some(TrialError::NonFinite(payload)),
        3 => Some(TrialError::DeadlineExceeded),
        _ => Some(TrialError::Injected(payload)),
    })
}

fn arb_event() -> impl Strategy<Value = RunEvent> {
    let meta = PAYLOAD.prop_map(RunEvent::meta).boxed();
    let legacy_meta = PAYLOAD
        .prop_map(|fingerprint| RunEvent::Meta {
            version: 1,
            fingerprint,
        })
        .boxed();
    let ask = (0u64..1000, arb_config())
        .prop_map(|(trial, config)| RunEvent::Ask { trial, config })
        .boxed();
    let restart = (0u64..1000)
        .prop_map(|trial| RunEvent::Restart { trial })
        .boxed();
    let report = (0u64..1000, 0u64..100, -1e6f64..1e6, any::<bool>())
        .prop_map(|(trial, iteration, normalized, stop)| RunEvent::Report {
            trial,
            iteration,
            normalized,
            stop,
        })
        .boxed();
    let attempt = (0u64..1000, 0u64..10, 0.0f64..100.0, arb_raw(), arb_error())
        .prop_map(|(trial, index, secs, raw, error)| RunEvent::Attempt {
            trial,
            index: index as u32,
            secs,
            raw,
            error,
        })
        .boxed();
    let tell = (
        (0u64..1000, -1e6f64..1e6, "[a-z_]{1,12}"),
        (arb_raw(), arb_mark(), arb_asks()),
    )
        .prop_map(
            |((trial, feedback, status), (value, trace_mark, asks))| RunEvent::Tell {
                trial,
                feedback,
                status,
                value,
                trace_mark,
                asks,
            },
        )
        .boxed();
    let complete = Just(RunEvent::Complete).boxed();
    Union::new(vec![
        meta,
        legacy_meta,
        ask,
        restart,
        report,
        attempt,
        tell,
        complete,
    ])
}

fn arb_raw() -> impl Strategy<Value = Option<f64>> {
    (any::<bool>(), -1e6f64..1e6).prop_map(|(some, v)| some.then_some(v))
}

fn arb_mark() -> impl Strategy<Value = Option<(u64, u64)>> {
    (any::<bool>(), 0u64..10_000, 0u64..10_000).prop_map(|(some, e, v)| some.then_some((e, v)))
}

fn arb_asks() -> impl Strategy<Value = Option<u64>> {
    (any::<bool>(), 0u64..10_000).prop_map(|(some, a)| some.then_some(a))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// encode → decode is the identity for every event shape, whatever
    /// the payload characters — and the wire line itself is stable
    /// (decode → re-encode reproduces the same bytes).
    #[test]
    fn wire_round_trips_exactly(event in arb_event()) {
        let line = event.to_line();
        prop_assert!(!line.contains('\n'), "wire line must be newline-free: {line:?}");
        let back = RunEvent::parse(&line)
            .map_err(|e| TestCaseError::fail(format!("{e} (line {line:?})")))?;
        prop_assert_eq!(&back, &event, "decode(encode(e)) != e for {}", line);
        prop_assert_eq!(back.to_line(), line);
    }

    /// Dropping the last field of a fixed-arity record is a decode error,
    /// never a silent misread.  `meta`/`tell` are the two variable-arity
    /// kinds: their truncated forms decode as the *legacy* (version-1)
    /// variant by design, and never compare equal to the original.
    #[test]
    fn truncated_records_never_decode_to_the_original(event in arb_event()) {
        let line = event.to_line();
        let Some((truncated, _)) = line.rsplit_once('\t') else {
            // `complete` (and nothing else) is a single field; dropping it
            // leaves an empty line, which must not parse.
            prop_assert!(matches!(event, RunEvent::Complete));
            prop_assert!(RunEvent::parse("").is_err());
            return Ok(());
        };
        match &event {
            RunEvent::Meta { version: 1, .. } => {
                // A 1-field `meta` is malformed outright.
                prop_assert!(RunEvent::parse(truncated).is_err(), "{truncated:?}");
            }
            RunEvent::Meta { .. } => {
                // Versioned meta minus its tail is a valid *version-1*
                // meta (the compat path) — but never the original record.
                let got = RunEvent::parse(truncated)
                    .map_err(|e| TestCaseError::fail(e.to_string()))?;
                prop_assert!(
                    matches!(got, RunEvent::Meta { version: 1, .. }),
                    "{got:?}"
                );
                prop_assert_ne!(got, event.clone());
            }
            RunEvent::Tell { asks: Some(_), .. } => {
                // Versioned tell minus its ask count is the version-1
                // tell: same payload, `asks: None`.
                let got = RunEvent::parse(truncated)
                    .map_err(|e| TestCaseError::fail(e.to_string()))?;
                prop_assert!(
                    matches!(&got, RunEvent::Tell { asks: None, .. }),
                    "{got:?}"
                );
                prop_assert_ne!(got, event.clone());
            }
            _ => {
                prop_assert!(
                    RunEvent::parse(truncated).is_err(),
                    "truncated {} still parsed: {truncated:?}",
                    line
                );
            }
        }
    }

    /// Appending a junk field to any record is a decode error (the two
    /// variable-arity kinds cap at their versioned width).
    #[test]
    fn overlong_records_are_rejected(event in arb_event()) {
        let mut line = event.to_line();
        if matches!(
            &event,
            RunEvent::Meta { version: 1, .. } | RunEvent::Tell { asks: None, .. }
        ) {
            // Legacy forms are one field short of the versioned width, so
            // pad twice to overshoot it.
            line.push_str("\t0");
        }
        line.push_str("\t0");
        prop_assert!(RunEvent::parse(&line).is_err(), "{line:?}");
    }

    /// The current-version constructor always stamps `WIRE_VERSION`, and
    /// escaping is transparent: the decoded fingerprint is the input.
    #[test]
    fn meta_constructor_preserves_fingerprint(fp in PAYLOAD) {
        let ev = RunEvent::meta(fp.clone());
        match RunEvent::parse(&ev.to_line()) {
            Ok(RunEvent::Meta { version, fingerprint }) => {
                prop_assert_eq!(version, WIRE_VERSION);
                prop_assert_eq!(fingerprint, fp);
            }
            other => prop_assert!(false, "{other:?}"),
        }
    }
}
