/root/repo/target/debug/libe2c_net.rlib: /root/repo/crates/net/src/lib.rs /root/repo/crates/net/src/link.rs /root/repo/crates/net/src/shaping.rs /root/repo/crates/net/src/topology.rs
