/root/repo/target/debug/deps/ext_second_gpu-fcaede683688adb5.d: crates/bench/src/bin/ext_second_gpu.rs

/root/repo/target/debug/deps/ext_second_gpu-fcaede683688adb5: crates/bench/src/bin/ext_second_gpu.rs

crates/bench/src/bin/ext_second_gpu.rs:
