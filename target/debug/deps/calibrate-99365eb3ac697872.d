/root/repo/target/debug/deps/calibrate-99365eb3ac697872.d: crates/bench/src/bin/calibrate.rs Cargo.toml

/root/repo/target/debug/deps/libcalibrate-99365eb3ac697872.rmeta: crates/bench/src/bin/calibrate.rs Cargo.toml

crates/bench/src/bin/calibrate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
