/root/repo/target/debug/deps/fig9_extract_oat-ca83211df45fe8e3.d: crates/bench/src/bin/fig9_extract_oat.rs Cargo.toml

/root/repo/target/debug/deps/libfig9_extract_oat-ca83211df45fe8e3.rmeta: crates/bench/src/bin/fig9_extract_oat.rs Cargo.toml

crates/bench/src/bin/fig9_extract_oat.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
