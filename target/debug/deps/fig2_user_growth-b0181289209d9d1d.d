/root/repo/target/debug/deps/fig2_user_growth-b0181289209d9d1d.d: crates/bench/src/bin/fig2_user_growth.rs

/root/repo/target/debug/deps/fig2_user_growth-b0181289209d9d1d: crates/bench/src/bin/fig2_user_growth.rs

crates/bench/src/bin/fig2_user_growth.rs:
