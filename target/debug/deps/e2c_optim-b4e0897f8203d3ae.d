/root/repo/target/debug/deps/e2c_optim-b4e0897f8203d3ae.d: crates/optim/src/lib.rs crates/optim/src/acquisition.rs crates/optim/src/bayes.rs crates/optim/src/linalg.rs crates/optim/src/metaheuristics/mod.rs crates/optim/src/metaheuristics/de.rs crates/optim/src/metaheuristics/ga.rs crates/optim/src/metaheuristics/pso.rs crates/optim/src/metaheuristics/sa.rs crates/optim/src/pareto.rs crates/optim/src/problem.rs crates/optim/src/sampling.rs crates/optim/src/sensitivity.rs crates/optim/src/space.rs crates/optim/src/surrogate/mod.rs crates/optim/src/surrogate/forest.rs crates/optim/src/surrogate/gbrt.rs crates/optim/src/surrogate/gp.rs crates/optim/src/surrogate/kernel_ridge.rs crates/optim/src/surrogate/poly.rs crates/optim/src/surrogate/tree.rs

/root/repo/target/debug/deps/libe2c_optim-b4e0897f8203d3ae.rlib: crates/optim/src/lib.rs crates/optim/src/acquisition.rs crates/optim/src/bayes.rs crates/optim/src/linalg.rs crates/optim/src/metaheuristics/mod.rs crates/optim/src/metaheuristics/de.rs crates/optim/src/metaheuristics/ga.rs crates/optim/src/metaheuristics/pso.rs crates/optim/src/metaheuristics/sa.rs crates/optim/src/pareto.rs crates/optim/src/problem.rs crates/optim/src/sampling.rs crates/optim/src/sensitivity.rs crates/optim/src/space.rs crates/optim/src/surrogate/mod.rs crates/optim/src/surrogate/forest.rs crates/optim/src/surrogate/gbrt.rs crates/optim/src/surrogate/gp.rs crates/optim/src/surrogate/kernel_ridge.rs crates/optim/src/surrogate/poly.rs crates/optim/src/surrogate/tree.rs

/root/repo/target/debug/deps/libe2c_optim-b4e0897f8203d3ae.rmeta: crates/optim/src/lib.rs crates/optim/src/acquisition.rs crates/optim/src/bayes.rs crates/optim/src/linalg.rs crates/optim/src/metaheuristics/mod.rs crates/optim/src/metaheuristics/de.rs crates/optim/src/metaheuristics/ga.rs crates/optim/src/metaheuristics/pso.rs crates/optim/src/metaheuristics/sa.rs crates/optim/src/pareto.rs crates/optim/src/problem.rs crates/optim/src/sampling.rs crates/optim/src/sensitivity.rs crates/optim/src/space.rs crates/optim/src/surrogate/mod.rs crates/optim/src/surrogate/forest.rs crates/optim/src/surrogate/gbrt.rs crates/optim/src/surrogate/gp.rs crates/optim/src/surrogate/kernel_ridge.rs crates/optim/src/surrogate/poly.rs crates/optim/src/surrogate/tree.rs

crates/optim/src/lib.rs:
crates/optim/src/acquisition.rs:
crates/optim/src/bayes.rs:
crates/optim/src/linalg.rs:
crates/optim/src/metaheuristics/mod.rs:
crates/optim/src/metaheuristics/de.rs:
crates/optim/src/metaheuristics/ga.rs:
crates/optim/src/metaheuristics/pso.rs:
crates/optim/src/metaheuristics/sa.rs:
crates/optim/src/pareto.rs:
crates/optim/src/problem.rs:
crates/optim/src/sampling.rs:
crates/optim/src/sensitivity.rs:
crates/optim/src/space.rs:
crates/optim/src/surrogate/mod.rs:
crates/optim/src/surrogate/forest.rs:
crates/optim/src/surrogate/gbrt.rs:
crates/optim/src/surrogate/gp.rs:
crates/optim/src/surrogate/kernel_ridge.rs:
crates/optim/src/surrogate/poly.rs:
crates/optim/src/surrogate/tree.rs:
