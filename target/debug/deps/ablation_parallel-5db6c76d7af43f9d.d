/root/repo/target/debug/deps/ablation_parallel-5db6c76d7af43f9d.d: crates/bench/src/bin/ablation_parallel.rs Cargo.toml

/root/repo/target/debug/deps/libablation_parallel-5db6c76d7af43f9d.rmeta: crates/bench/src/bin/ablation_parallel.rs Cargo.toml

crates/bench/src/bin/ablation_parallel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
