/root/repo/target/debug/deps/ablation_parallel-780cb3c24b1aab23.d: crates/bench/src/bin/ablation_parallel.rs Cargo.toml

/root/repo/target/debug/deps/libablation_parallel-780cb3c24b1aab23.rmeta: crates/bench/src/bin/ablation_parallel.rs Cargo.toml

crates/bench/src/bin/ablation_parallel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
