/root/repo/target/debug/deps/ablation_parallel-275946ea5a8a22c4.d: crates/bench/src/bin/ablation_parallel.rs Cargo.toml

/root/repo/target/debug/deps/libablation_parallel-275946ea5a8a22c4.rmeta: crates/bench/src/bin/ablation_parallel.rs Cargo.toml

crates/bench/src/bin/ablation_parallel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
