/root/repo/target/debug/deps/table4_fig11_final-fd73edd2e6c8367f.d: crates/bench/src/bin/table4_fig11_final.rs Cargo.toml

/root/repo/target/debug/deps/libtable4_fig11_final-fd73edd2e6c8367f.rmeta: crates/bench/src/bin/table4_fig11_final.rs Cargo.toml

crates/bench/src/bin/table4_fig11_final.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
