/root/repo/target/debug/deps/table4_fig11_final-21e55a661bdb4946.d: crates/bench/src/bin/table4_fig11_final.rs Cargo.toml

/root/repo/target/debug/deps/libtable4_fig11_final-21e55a661bdb4946.rmeta: crates/bench/src/bin/table4_fig11_final.rs Cargo.toml

crates/bench/src/bin/table4_fig11_final.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
