/root/repo/target/debug/deps/table3_bayesopt-52377e7d1d04fdad.d: crates/bench/src/bin/table3_bayesopt.rs Cargo.toml

/root/repo/target/debug/deps/libtable3_bayesopt-52377e7d1d04fdad.rmeta: crates/bench/src/bin/table3_bayesopt.rs Cargo.toml

crates/bench/src/bin/table3_bayesopt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
