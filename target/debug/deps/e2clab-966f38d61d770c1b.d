/root/repo/target/debug/deps/e2clab-966f38d61d770c1b.d: src/lib.rs

/root/repo/target/debug/deps/e2clab-966f38d61d770c1b: src/lib.rs

src/lib.rs:
