/root/repo/target/debug/deps/fig3_response_curve-51d2049da5214b7f.d: crates/bench/src/bin/fig3_response_curve.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_response_curve-51d2049da5214b7f.rmeta: crates/bench/src/bin/fig3_response_curve.rs Cargo.toml

crates/bench/src/bin/fig3_response_curve.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
