/root/repo/target/debug/deps/e2c_metrics-8d58f6d92587ed46.d: crates/metrics/src/lib.rs crates/metrics/src/histogram.rs crates/metrics/src/online.rs crates/metrics/src/registry.rs crates/metrics/src/series.rs crates/metrics/src/summary.rs crates/metrics/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libe2c_metrics-8d58f6d92587ed46.rmeta: crates/metrics/src/lib.rs crates/metrics/src/histogram.rs crates/metrics/src/online.rs crates/metrics/src/registry.rs crates/metrics/src/series.rs crates/metrics/src/summary.rs crates/metrics/src/table.rs Cargo.toml

crates/metrics/src/lib.rs:
crates/metrics/src/histogram.rs:
crates/metrics/src/online.rs:
crates/metrics/src/registry.rs:
crates/metrics/src/series.rs:
crates/metrics/src/summary.rs:
crates/metrics/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
