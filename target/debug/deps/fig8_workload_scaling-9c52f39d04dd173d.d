/root/repo/target/debug/deps/fig8_workload_scaling-9c52f39d04dd173d.d: crates/bench/src/bin/fig8_workload_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libfig8_workload_scaling-9c52f39d04dd173d.rmeta: crates/bench/src/bin/fig8_workload_scaling.rs Cargo.toml

crates/bench/src/bin/fig8_workload_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
