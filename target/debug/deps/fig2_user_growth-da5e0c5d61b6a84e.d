/root/repo/target/debug/deps/fig2_user_growth-da5e0c5d61b6a84e.d: crates/bench/src/bin/fig2_user_growth.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_user_growth-da5e0c5d61b6a84e.rmeta: crates/bench/src/bin/fig2_user_growth.rs Cargo.toml

crates/bench/src/bin/fig2_user_growth.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
