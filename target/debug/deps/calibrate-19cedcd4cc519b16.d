/root/repo/target/debug/deps/calibrate-19cedcd4cc519b16.d: crates/bench/src/bin/calibrate.rs

/root/repo/target/debug/deps/calibrate-19cedcd4cc519b16: crates/bench/src/bin/calibrate.rs

crates/bench/src/bin/calibrate.rs:
