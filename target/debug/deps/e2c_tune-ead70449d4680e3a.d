/root/repo/target/debug/deps/e2c_tune-ead70449d4680e3a.d: crates/tune/src/lib.rs crates/tune/src/analysis.rs crates/tune/src/clock.rs crates/tune/src/evolution.rs crates/tune/src/fault.rs crates/tune/src/logger.rs crates/tune/src/scheduler.rs crates/tune/src/searcher.rs crates/tune/src/trial.rs crates/tune/src/tuner.rs

/root/repo/target/debug/deps/e2c_tune-ead70449d4680e3a: crates/tune/src/lib.rs crates/tune/src/analysis.rs crates/tune/src/clock.rs crates/tune/src/evolution.rs crates/tune/src/fault.rs crates/tune/src/logger.rs crates/tune/src/scheduler.rs crates/tune/src/searcher.rs crates/tune/src/trial.rs crates/tune/src/tuner.rs

crates/tune/src/lib.rs:
crates/tune/src/analysis.rs:
crates/tune/src/clock.rs:
crates/tune/src/evolution.rs:
crates/tune/src/fault.rs:
crates/tune/src/logger.rs:
crates/tune/src/scheduler.rs:
crates/tune/src/searcher.rs:
crates/tune/src/trial.rs:
crates/tune/src/tuner.rs:
