/root/repo/target/debug/deps/e2c_des-100506e07a138ebb.d: crates/des/src/lib.rs crates/des/src/dist.rs crates/des/src/queue.rs crates/des/src/resources.rs crates/des/src/sim.rs crates/des/src/time.rs

/root/repo/target/debug/deps/libe2c_des-100506e07a138ebb.rlib: crates/des/src/lib.rs crates/des/src/dist.rs crates/des/src/queue.rs crates/des/src/resources.rs crates/des/src/sim.rs crates/des/src/time.rs

/root/repo/target/debug/deps/libe2c_des-100506e07a138ebb.rmeta: crates/des/src/lib.rs crates/des/src/dist.rs crates/des/src/queue.rs crates/des/src/resources.rs crates/des/src/sim.rs crates/des/src/time.rs

crates/des/src/lib.rs:
crates/des/src/dist.rs:
crates/des/src/queue.rs:
crates/des/src/resources.rs:
crates/des/src/sim.rs:
crates/des/src/time.rs:
