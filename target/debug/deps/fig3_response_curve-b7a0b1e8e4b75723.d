/root/repo/target/debug/deps/fig3_response_curve-b7a0b1e8e4b75723.d: crates/bench/src/bin/fig3_response_curve.rs

/root/repo/target/debug/deps/fig3_response_curve-b7a0b1e8e4b75723: crates/bench/src/bin/fig3_response_curve.rs

crates/bench/src/bin/fig3_response_curve.rs:
