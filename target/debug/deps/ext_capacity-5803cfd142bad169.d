/root/repo/target/debug/deps/ext_capacity-5803cfd142bad169.d: crates/bench/src/bin/ext_capacity.rs

/root/repo/target/debug/deps/ext_capacity-5803cfd142bad169: crates/bench/src/bin/ext_capacity.rs

crates/bench/src/bin/ext_capacity.rs:
