/root/repo/target/debug/deps/e2clab-e68e3c3165308aad.d: crates/core/src/bin/e2clab.rs Cargo.toml

/root/repo/target/debug/deps/libe2clab-e68e3c3165308aad.rmeta: crates/core/src/bin/e2clab.rs Cargo.toml

crates/core/src/bin/e2clab.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/core
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
