/root/repo/target/debug/deps/framework_lifecycle-be47c5d597b6e4e8.d: tests/framework_lifecycle.rs Cargo.toml

/root/repo/target/debug/deps/libframework_lifecycle-be47c5d597b6e4e8.rmeta: tests/framework_lifecycle.rs Cargo.toml

tests/framework_lifecycle.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
