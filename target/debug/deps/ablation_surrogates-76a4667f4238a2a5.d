/root/repo/target/debug/deps/ablation_surrogates-76a4667f4238a2a5.d: crates/bench/src/bin/ablation_surrogates.rs Cargo.toml

/root/repo/target/debug/deps/libablation_surrogates-76a4667f4238a2a5.rmeta: crates/bench/src/bin/ablation_surrogates.rs Cargo.toml

crates/bench/src/bin/ablation_surrogates.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
