/root/repo/target/debug/deps/table4_fig11_final-6f099f51b04afc2c.d: crates/bench/src/bin/table4_fig11_final.rs

/root/repo/target/debug/deps/table4_fig11_final-6f099f51b04afc2c: crates/bench/src/bin/table4_fig11_final.rs

crates/bench/src/bin/table4_fig11_final.rs:
