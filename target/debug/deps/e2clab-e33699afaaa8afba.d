/root/repo/target/debug/deps/e2clab-e33699afaaa8afba.d: crates/core/src/bin/e2clab.rs Cargo.toml

/root/repo/target/debug/deps/libe2clab-e33699afaaa8afba.rmeta: crates/core/src/bin/e2clab.rs Cargo.toml

crates/core/src/bin/e2clab.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
