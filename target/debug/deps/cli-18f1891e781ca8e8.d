/root/repo/target/debug/deps/cli-18f1891e781ca8e8.d: crates/core/tests/cli.rs Cargo.toml

/root/repo/target/debug/deps/libcli-18f1891e781ca8e8.rmeta: crates/core/tests/cli.rs Cargo.toml

crates/core/tests/cli.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_e2clab=placeholder:e2clab
# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
