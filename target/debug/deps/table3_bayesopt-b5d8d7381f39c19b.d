/root/repo/target/debug/deps/table3_bayesopt-b5d8d7381f39c19b.d: crates/bench/src/bin/table3_bayesopt.rs

/root/repo/target/debug/deps/table3_bayesopt-b5d8d7381f39c19b: crates/bench/src/bin/table3_bayesopt.rs

crates/bench/src/bin/table3_bayesopt.rs:
