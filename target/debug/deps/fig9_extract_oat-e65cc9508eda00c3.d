/root/repo/target/debug/deps/fig9_extract_oat-e65cc9508eda00c3.d: crates/bench/src/bin/fig9_extract_oat.rs

/root/repo/target/debug/deps/fig9_extract_oat-e65cc9508eda00c3: crates/bench/src/bin/fig9_extract_oat.rs

crates/bench/src/bin/fig9_extract_oat.rs:
