/root/repo/target/debug/deps/e2c_tune-1e8cbe5c4c580a05.d: crates/tune/src/lib.rs crates/tune/src/analysis.rs crates/tune/src/clock.rs crates/tune/src/evolution.rs crates/tune/src/fault.rs crates/tune/src/logger.rs crates/tune/src/scheduler.rs crates/tune/src/searcher.rs crates/tune/src/trial.rs crates/tune/src/tuner.rs Cargo.toml

/root/repo/target/debug/deps/libe2c_tune-1e8cbe5c4c580a05.rmeta: crates/tune/src/lib.rs crates/tune/src/analysis.rs crates/tune/src/clock.rs crates/tune/src/evolution.rs crates/tune/src/fault.rs crates/tune/src/logger.rs crates/tune/src/scheduler.rs crates/tune/src/searcher.rs crates/tune/src/trial.rs crates/tune/src/tuner.rs Cargo.toml

crates/tune/src/lib.rs:
crates/tune/src/analysis.rs:
crates/tune/src/clock.rs:
crates/tune/src/evolution.rs:
crates/tune/src/fault.rs:
crates/tune/src/logger.rs:
crates/tune/src/scheduler.rs:
crates/tune/src/searcher.rs:
crates/tune/src/trial.rs:
crates/tune/src/tuner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
