/root/repo/target/debug/deps/e2c_core-3e1aa15698d4fa01.d: crates/core/src/lib.rs crates/core/src/archive.rs crates/core/src/experiment.rs crates/core/src/managers.rs crates/core/src/optimization.rs crates/core/src/service.rs crates/core/src/user_api.rs

/root/repo/target/debug/deps/libe2c_core-3e1aa15698d4fa01.rlib: crates/core/src/lib.rs crates/core/src/archive.rs crates/core/src/experiment.rs crates/core/src/managers.rs crates/core/src/optimization.rs crates/core/src/service.rs crates/core/src/user_api.rs

/root/repo/target/debug/deps/libe2c_core-3e1aa15698d4fa01.rmeta: crates/core/src/lib.rs crates/core/src/archive.rs crates/core/src/experiment.rs crates/core/src/managers.rs crates/core/src/optimization.rs crates/core/src/service.rs crates/core/src/user_api.rs

crates/core/src/lib.rs:
crates/core/src/archive.rs:
crates/core/src/experiment.rs:
crates/core/src/managers.rs:
crates/core/src/optimization.rs:
crates/core/src/service.rs:
crates/core/src/user_api.rs:
