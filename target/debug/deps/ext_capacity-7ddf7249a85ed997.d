/root/repo/target/debug/deps/ext_capacity-7ddf7249a85ed997.d: crates/bench/src/bin/ext_capacity.rs Cargo.toml

/root/repo/target/debug/deps/libext_capacity-7ddf7249a85ed997.rmeta: crates/bench/src/bin/ext_capacity.rs Cargo.toml

crates/bench/src/bin/ext_capacity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
