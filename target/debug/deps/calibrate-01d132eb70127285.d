/root/repo/target/debug/deps/calibrate-01d132eb70127285.d: crates/bench/src/bin/calibrate.rs Cargo.toml

/root/repo/target/debug/deps/libcalibrate-01d132eb70127285.rmeta: crates/bench/src/bin/calibrate.rs Cargo.toml

crates/bench/src/bin/calibrate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
