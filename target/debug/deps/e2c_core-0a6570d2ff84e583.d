/root/repo/target/debug/deps/e2c_core-0a6570d2ff84e583.d: crates/core/src/lib.rs crates/core/src/archive.rs crates/core/src/experiment.rs crates/core/src/managers.rs crates/core/src/optimization.rs crates/core/src/service.rs crates/core/src/user_api.rs Cargo.toml

/root/repo/target/debug/deps/libe2c_core-0a6570d2ff84e583.rmeta: crates/core/src/lib.rs crates/core/src/archive.rs crates/core/src/experiment.rs crates/core/src/managers.rs crates/core/src/optimization.rs crates/core/src/service.rs crates/core/src/user_api.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/archive.rs:
crates/core/src/experiment.rs:
crates/core/src/managers.rs:
crates/core/src/optimization.rs:
crates/core/src/service.rs:
crates/core/src/user_api.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
