/root/repo/target/debug/deps/ext_tail_latency-1cf5f8c7b7ac2dac.d: crates/bench/src/bin/ext_tail_latency.rs Cargo.toml

/root/repo/target/debug/deps/libext_tail_latency-1cf5f8c7b7ac2dac.rmeta: crates/bench/src/bin/ext_tail_latency.rs Cargo.toml

crates/bench/src/bin/ext_tail_latency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
