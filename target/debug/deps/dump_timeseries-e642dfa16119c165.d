/root/repo/target/debug/deps/dump_timeseries-e642dfa16119c165.d: crates/bench/src/bin/dump_timeseries.rs Cargo.toml

/root/repo/target/debug/deps/libdump_timeseries-e642dfa16119c165.rmeta: crates/bench/src/bin/dump_timeseries.rs Cargo.toml

crates/bench/src/bin/dump_timeseries.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
