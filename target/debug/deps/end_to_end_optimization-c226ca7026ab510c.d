/root/repo/target/debug/deps/end_to_end_optimization-c226ca7026ab510c.d: tests/end_to_end_optimization.rs Cargo.toml

/root/repo/target/debug/deps/libend_to_end_optimization-c226ca7026ab510c.rmeta: tests/end_to_end_optimization.rs Cargo.toml

tests/end_to_end_optimization.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
