/root/repo/target/debug/deps/e2clab-279f9b38d382d223.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libe2clab-279f9b38d382d223.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
