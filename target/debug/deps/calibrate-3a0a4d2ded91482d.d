/root/repo/target/debug/deps/calibrate-3a0a4d2ded91482d.d: crates/bench/src/bin/calibrate.rs Cargo.toml

/root/repo/target/debug/deps/libcalibrate-3a0a4d2ded91482d.rmeta: crates/bench/src/bin/calibrate.rs Cargo.toml

crates/bench/src/bin/calibrate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
