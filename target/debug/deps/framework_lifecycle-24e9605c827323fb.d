/root/repo/target/debug/deps/framework_lifecycle-24e9605c827323fb.d: tests/framework_lifecycle.rs Cargo.toml

/root/repo/target/debug/deps/libframework_lifecycle-24e9605c827323fb.rmeta: tests/framework_lifecycle.rs Cargo.toml

tests/framework_lifecycle.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
