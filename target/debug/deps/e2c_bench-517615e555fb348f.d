/root/repo/target/debug/deps/e2c_bench-517615e555fb348f.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libe2c_bench-517615e555fb348f.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libe2c_bench-517615e555fb348f.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
