/root/repo/target/debug/deps/cli-7201e9365a6b0cbe.d: crates/core/tests/cli.rs

/root/repo/target/debug/deps/cli-7201e9365a6b0cbe: crates/core/tests/cli.rs

crates/core/tests/cli.rs:

# env-dep:CARGO_BIN_EXE_e2clab=/root/repo/target/debug/e2clab
