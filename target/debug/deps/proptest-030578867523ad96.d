/root/repo/target/debug/deps/proptest-030578867523ad96.d: vendor/proptest/src/lib.rs vendor/proptest/src/arbitrary.rs vendor/proptest/src/collection.rs vendor/proptest/src/strategy.rs vendor/proptest/src/string.rs vendor/proptest/src/test_runner.rs

/root/repo/target/debug/deps/libproptest-030578867523ad96.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/arbitrary.rs vendor/proptest/src/collection.rs vendor/proptest/src/strategy.rs vendor/proptest/src/string.rs vendor/proptest/src/test_runner.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/arbitrary.rs:
vendor/proptest/src/collection.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/string.rs:
vendor/proptest/src/test_runner.rs:
