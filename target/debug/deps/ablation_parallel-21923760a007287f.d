/root/repo/target/debug/deps/ablation_parallel-21923760a007287f.d: crates/bench/src/bin/ablation_parallel.rs

/root/repo/target/debug/deps/ablation_parallel-21923760a007287f: crates/bench/src/bin/ablation_parallel.rs

crates/bench/src/bin/ablation_parallel.rs:
