/root/repo/target/debug/deps/fig2_user_growth-c4afddee6d5835b8.d: crates/bench/src/bin/fig2_user_growth.rs

/root/repo/target/debug/deps/fig2_user_growth-c4afddee6d5835b8: crates/bench/src/bin/fig2_user_growth.rs

crates/bench/src/bin/fig2_user_growth.rs:
