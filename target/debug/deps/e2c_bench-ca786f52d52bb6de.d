/root/repo/target/debug/deps/e2c_bench-ca786f52d52bb6de.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libe2c_bench-ca786f52d52bb6de.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
