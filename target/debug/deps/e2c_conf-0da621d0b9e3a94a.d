/root/repo/target/debug/deps/e2c_conf-0da621d0b9e3a94a.d: crates/conf/src/lib.rs crates/conf/src/parser.rs crates/conf/src/schema.rs crates/conf/src/value.rs

/root/repo/target/debug/deps/libe2c_conf-0da621d0b9e3a94a.rlib: crates/conf/src/lib.rs crates/conf/src/parser.rs crates/conf/src/schema.rs crates/conf/src/value.rs

/root/repo/target/debug/deps/libe2c_conf-0da621d0b9e3a94a.rmeta: crates/conf/src/lib.rs crates/conf/src/parser.rs crates/conf/src/schema.rs crates/conf/src/value.rs

crates/conf/src/lib.rs:
crates/conf/src/parser.rs:
crates/conf/src/schema.rs:
crates/conf/src/value.rs:
