/root/repo/target/debug/deps/e2clab-e219671dc7f342ae.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libe2clab-e219671dc7f342ae.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
