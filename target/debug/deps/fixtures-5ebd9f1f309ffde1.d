/root/repo/target/debug/deps/fixtures-5ebd9f1f309ffde1.d: crates/detlint/tests/fixtures.rs Cargo.toml

/root/repo/target/debug/deps/libfixtures-5ebd9f1f309ffde1.rmeta: crates/detlint/tests/fixtures.rs Cargo.toml

crates/detlint/tests/fixtures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
