/root/repo/target/debug/deps/roundtrip-969310c534c10e87.d: crates/conf/tests/roundtrip.rs

/root/repo/target/debug/deps/roundtrip-969310c534c10e87: crates/conf/tests/roundtrip.rs

crates/conf/tests/roundtrip.rs:
