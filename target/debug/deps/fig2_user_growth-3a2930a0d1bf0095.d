/root/repo/target/debug/deps/fig2_user_growth-3a2930a0d1bf0095.d: crates/bench/src/bin/fig2_user_growth.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_user_growth-3a2930a0d1bf0095.rmeta: crates/bench/src/bin/fig2_user_growth.rs Cargo.toml

crates/bench/src/bin/fig2_user_growth.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
