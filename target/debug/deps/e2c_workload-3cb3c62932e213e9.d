/root/repo/target/debug/deps/e2c_workload-3cb3c62932e213e9.d: crates/workload/src/lib.rs crates/workload/src/arrivals.rs crates/workload/src/diurnal.rs crates/workload/src/images.rs crates/workload/src/seasonal.rs

/root/repo/target/debug/deps/libe2c_workload-3cb3c62932e213e9.rlib: crates/workload/src/lib.rs crates/workload/src/arrivals.rs crates/workload/src/diurnal.rs crates/workload/src/images.rs crates/workload/src/seasonal.rs

/root/repo/target/debug/deps/libe2c_workload-3cb3c62932e213e9.rmeta: crates/workload/src/lib.rs crates/workload/src/arrivals.rs crates/workload/src/diurnal.rs crates/workload/src/images.rs crates/workload/src/seasonal.rs

crates/workload/src/lib.rs:
crates/workload/src/arrivals.rs:
crates/workload/src/diurnal.rs:
crates/workload/src/images.rs:
crates/workload/src/seasonal.rs:
