/root/repo/target/debug/deps/fig10_simsearch_oat-5dc6e3a1768d58df.d: crates/bench/src/bin/fig10_simsearch_oat.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_simsearch_oat-5dc6e3a1768d58df.rmeta: crates/bench/src/bin/fig10_simsearch_oat.rs Cargo.toml

crates/bench/src/bin/fig10_simsearch_oat.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
