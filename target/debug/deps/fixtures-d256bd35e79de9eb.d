/root/repo/target/debug/deps/fixtures-d256bd35e79de9eb.d: crates/detlint/tests/fixtures.rs

/root/repo/target/debug/deps/fixtures-d256bd35e79de9eb: crates/detlint/tests/fixtures.rs

crates/detlint/tests/fixtures.rs:
