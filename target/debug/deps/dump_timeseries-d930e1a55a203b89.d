/root/repo/target/debug/deps/dump_timeseries-d930e1a55a203b89.d: crates/bench/src/bin/dump_timeseries.rs Cargo.toml

/root/repo/target/debug/deps/libdump_timeseries-d930e1a55a203b89.rmeta: crates/bench/src/bin/dump_timeseries.rs Cargo.toml

crates/bench/src/bin/dump_timeseries.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
