/root/repo/target/debug/deps/e2clab-4c0358050b2f46c1.d: crates/core/src/bin/e2clab.rs

/root/repo/target/debug/deps/e2clab-4c0358050b2f46c1: crates/core/src/bin/e2clab.rs

crates/core/src/bin/e2clab.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/core
