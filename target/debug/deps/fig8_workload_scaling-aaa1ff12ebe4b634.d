/root/repo/target/debug/deps/fig8_workload_scaling-aaa1ff12ebe4b634.d: crates/bench/src/bin/fig8_workload_scaling.rs

/root/repo/target/debug/deps/fig8_workload_scaling-aaa1ff12ebe4b634: crates/bench/src/bin/fig8_workload_scaling.rs

crates/bench/src/bin/fig8_workload_scaling.rs:
