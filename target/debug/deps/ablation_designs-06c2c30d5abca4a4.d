/root/repo/target/debug/deps/ablation_designs-06c2c30d5abca4a4.d: crates/bench/src/bin/ablation_designs.rs

/root/repo/target/debug/deps/ablation_designs-06c2c30d5abca4a4: crates/bench/src/bin/ablation_designs.rs

crates/bench/src/bin/ablation_designs.rs:
