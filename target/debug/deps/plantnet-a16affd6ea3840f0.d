/root/repo/target/debug/deps/plantnet-a16affd6ea3840f0.d: crates/plantnet/src/lib.rs crates/plantnet/src/config.rs crates/plantnet/src/model.rs crates/plantnet/src/monitor.rs crates/plantnet/src/pipeline.rs crates/plantnet/src/rt.rs crates/plantnet/src/sim.rs

/root/repo/target/debug/deps/libplantnet-a16affd6ea3840f0.rlib: crates/plantnet/src/lib.rs crates/plantnet/src/config.rs crates/plantnet/src/model.rs crates/plantnet/src/monitor.rs crates/plantnet/src/pipeline.rs crates/plantnet/src/rt.rs crates/plantnet/src/sim.rs

/root/repo/target/debug/deps/libplantnet-a16affd6ea3840f0.rmeta: crates/plantnet/src/lib.rs crates/plantnet/src/config.rs crates/plantnet/src/model.rs crates/plantnet/src/monitor.rs crates/plantnet/src/pipeline.rs crates/plantnet/src/rt.rs crates/plantnet/src/sim.rs

crates/plantnet/src/lib.rs:
crates/plantnet/src/config.rs:
crates/plantnet/src/model.rs:
crates/plantnet/src/monitor.rs:
crates/plantnet/src/pipeline.rs:
crates/plantnet/src/rt.rs:
crates/plantnet/src/sim.rs:
