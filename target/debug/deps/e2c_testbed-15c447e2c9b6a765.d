/root/repo/target/debug/deps/e2c_testbed-15c447e2c9b6a765.d: crates/testbed/src/lib.rs crates/testbed/src/deployment.rs crates/testbed/src/grid5000.rs crates/testbed/src/hardware.rs crates/testbed/src/reservation.rs

/root/repo/target/debug/deps/e2c_testbed-15c447e2c9b6a765: crates/testbed/src/lib.rs crates/testbed/src/deployment.rs crates/testbed/src/grid5000.rs crates/testbed/src/hardware.rs crates/testbed/src/reservation.rs

crates/testbed/src/lib.rs:
crates/testbed/src/deployment.rs:
crates/testbed/src/grid5000.rs:
crates/testbed/src/hardware.rs:
crates/testbed/src/reservation.rs:
