/root/repo/target/debug/deps/e2c_des-19613f759e96b491.d: crates/des/src/lib.rs crates/des/src/dist.rs crates/des/src/queue.rs crates/des/src/resources.rs crates/des/src/sim.rs crates/des/src/time.rs Cargo.toml

/root/repo/target/debug/deps/libe2c_des-19613f759e96b491.rmeta: crates/des/src/lib.rs crates/des/src/dist.rs crates/des/src/queue.rs crates/des/src/resources.rs crates/des/src/sim.rs crates/des/src/time.rs Cargo.toml

crates/des/src/lib.rs:
crates/des/src/dist.rs:
crates/des/src/queue.rs:
crates/des/src/resources.rs:
crates/des/src/sim.rs:
crates/des/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
