/root/repo/target/debug/deps/ext_capacity-dff4f6ddc5857f24.d: crates/bench/src/bin/ext_capacity.rs

/root/repo/target/debug/deps/ext_capacity-dff4f6ddc5857f24: crates/bench/src/bin/ext_capacity.rs

crates/bench/src/bin/ext_capacity.rs:
