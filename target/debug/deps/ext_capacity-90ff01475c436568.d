/root/repo/target/debug/deps/ext_capacity-90ff01475c436568.d: crates/bench/src/bin/ext_capacity.rs Cargo.toml

/root/repo/target/debug/deps/libext_capacity-90ff01475c436568.rmeta: crates/bench/src/bin/ext_capacity.rs Cargo.toml

crates/bench/src/bin/ext_capacity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
