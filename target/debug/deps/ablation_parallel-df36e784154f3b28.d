/root/repo/target/debug/deps/ablation_parallel-df36e784154f3b28.d: crates/bench/src/bin/ablation_parallel.rs

/root/repo/target/debug/deps/ablation_parallel-df36e784154f3b28: crates/bench/src/bin/ablation_parallel.rs

crates/bench/src/bin/ablation_parallel.rs:
