/root/repo/target/debug/deps/e2c_bench-b27d90155f845022.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libe2c_bench-b27d90155f845022.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
