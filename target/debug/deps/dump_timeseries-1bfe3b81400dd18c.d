/root/repo/target/debug/deps/dump_timeseries-1bfe3b81400dd18c.d: crates/bench/src/bin/dump_timeseries.rs Cargo.toml

/root/repo/target/debug/deps/libdump_timeseries-1bfe3b81400dd18c.rmeta: crates/bench/src/bin/dump_timeseries.rs Cargo.toml

crates/bench/src/bin/dump_timeseries.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
