/root/repo/target/debug/deps/properties-5ed6573368587580.d: crates/des/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-5ed6573368587580.rmeta: crates/des/tests/properties.rs Cargo.toml

crates/des/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
