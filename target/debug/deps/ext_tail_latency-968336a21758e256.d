/root/repo/target/debug/deps/ext_tail_latency-968336a21758e256.d: crates/bench/src/bin/ext_tail_latency.rs

/root/repo/target/debug/deps/ext_tail_latency-968336a21758e256: crates/bench/src/bin/ext_tail_latency.rs

crates/bench/src/bin/ext_tail_latency.rs:
