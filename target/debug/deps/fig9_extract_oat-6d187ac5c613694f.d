/root/repo/target/debug/deps/fig9_extract_oat-6d187ac5c613694f.d: crates/bench/src/bin/fig9_extract_oat.rs

/root/repo/target/debug/deps/fig9_extract_oat-6d187ac5c613694f: crates/bench/src/bin/fig9_extract_oat.rs

crates/bench/src/bin/fig9_extract_oat.rs:
