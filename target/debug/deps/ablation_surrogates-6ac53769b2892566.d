/root/repo/target/debug/deps/ablation_surrogates-6ac53769b2892566.d: crates/bench/src/bin/ablation_surrogates.rs

/root/repo/target/debug/deps/ablation_surrogates-6ac53769b2892566: crates/bench/src/bin/ablation_surrogates.rs

crates/bench/src/bin/ablation_surrogates.rs:
