/root/repo/target/debug/deps/e2c_testbed-e6fa36b4b85f8ed8.d: crates/testbed/src/lib.rs crates/testbed/src/deployment.rs crates/testbed/src/grid5000.rs crates/testbed/src/hardware.rs crates/testbed/src/reservation.rs

/root/repo/target/debug/deps/libe2c_testbed-e6fa36b4b85f8ed8.rlib: crates/testbed/src/lib.rs crates/testbed/src/deployment.rs crates/testbed/src/grid5000.rs crates/testbed/src/hardware.rs crates/testbed/src/reservation.rs

/root/repo/target/debug/deps/libe2c_testbed-e6fa36b4b85f8ed8.rmeta: crates/testbed/src/lib.rs crates/testbed/src/deployment.rs crates/testbed/src/grid5000.rs crates/testbed/src/hardware.rs crates/testbed/src/reservation.rs

crates/testbed/src/lib.rs:
crates/testbed/src/deployment.rs:
crates/testbed/src/grid5000.rs:
crates/testbed/src/hardware.rs:
crates/testbed/src/reservation.rs:
