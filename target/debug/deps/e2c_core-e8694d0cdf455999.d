/root/repo/target/debug/deps/e2c_core-e8694d0cdf455999.d: crates/core/src/lib.rs crates/core/src/archive.rs crates/core/src/experiment.rs crates/core/src/managers.rs crates/core/src/optimization.rs crates/core/src/service.rs crates/core/src/user_api.rs

/root/repo/target/debug/deps/e2c_core-e8694d0cdf455999: crates/core/src/lib.rs crates/core/src/archive.rs crates/core/src/experiment.rs crates/core/src/managers.rs crates/core/src/optimization.rs crates/core/src/service.rs crates/core/src/user_api.rs

crates/core/src/lib.rs:
crates/core/src/archive.rs:
crates/core/src/experiment.rs:
crates/core/src/managers.rs:
crates/core/src/optimization.rs:
crates/core/src/service.rs:
crates/core/src/user_api.rs:
