/root/repo/target/debug/deps/properties-aaa7ca935f474415.d: crates/optim/tests/properties.rs

/root/repo/target/debug/deps/properties-aaa7ca935f474415: crates/optim/tests/properties.rs

crates/optim/tests/properties.rs:
