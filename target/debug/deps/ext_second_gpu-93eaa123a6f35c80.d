/root/repo/target/debug/deps/ext_second_gpu-93eaa123a6f35c80.d: crates/bench/src/bin/ext_second_gpu.rs

/root/repo/target/debug/deps/ext_second_gpu-93eaa123a6f35c80: crates/bench/src/bin/ext_second_gpu.rs

crates/bench/src/bin/ext_second_gpu.rs:
