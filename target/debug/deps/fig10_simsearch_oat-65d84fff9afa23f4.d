/root/repo/target/debug/deps/fig10_simsearch_oat-65d84fff9afa23f4.d: crates/bench/src/bin/fig10_simsearch_oat.rs

/root/repo/target/debug/deps/fig10_simsearch_oat-65d84fff9afa23f4: crates/bench/src/bin/fig10_simsearch_oat.rs

crates/bench/src/bin/fig10_simsearch_oat.rs:
