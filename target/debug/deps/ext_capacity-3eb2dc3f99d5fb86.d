/root/repo/target/debug/deps/ext_capacity-3eb2dc3f99d5fb86.d: crates/bench/src/bin/ext_capacity.rs Cargo.toml

/root/repo/target/debug/deps/libext_capacity-3eb2dc3f99d5fb86.rmeta: crates/bench/src/bin/ext_capacity.rs Cargo.toml

crates/bench/src/bin/ext_capacity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
