/root/repo/target/debug/deps/e2clab-ea9b3404f2269499.d: crates/core/src/bin/e2clab.rs Cargo.toml

/root/repo/target/debug/deps/libe2clab-ea9b3404f2269499.rmeta: crates/core/src/bin/e2clab.rs Cargo.toml

crates/core/src/bin/e2clab.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/core
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
