/root/repo/target/debug/deps/e2c_conf-63aad1c8bab2b804.d: crates/conf/src/lib.rs crates/conf/src/parser.rs crates/conf/src/schema.rs crates/conf/src/value.rs Cargo.toml

/root/repo/target/debug/deps/libe2c_conf-63aad1c8bab2b804.rmeta: crates/conf/src/lib.rs crates/conf/src/parser.rs crates/conf/src/schema.rs crates/conf/src/value.rs Cargo.toml

crates/conf/src/lib.rs:
crates/conf/src/parser.rs:
crates/conf/src/schema.rs:
crates/conf/src/value.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
