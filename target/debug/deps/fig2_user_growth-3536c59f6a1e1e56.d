/root/repo/target/debug/deps/fig2_user_growth-3536c59f6a1e1e56.d: crates/bench/src/bin/fig2_user_growth.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_user_growth-3536c59f6a1e1e56.rmeta: crates/bench/src/bin/fig2_user_growth.rs Cargo.toml

crates/bench/src/bin/fig2_user_growth.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
