/root/repo/target/debug/deps/paper_shapes-01ad951a0340a72a.d: tests/paper_shapes.rs

/root/repo/target/debug/deps/paper_shapes-01ad951a0340a72a: tests/paper_shapes.rs

tests/paper_shapes.rs:
