/root/repo/target/debug/deps/fig10_simsearch_oat-6dc880bd107aee78.d: crates/bench/src/bin/fig10_simsearch_oat.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_simsearch_oat-6dc880bd107aee78.rmeta: crates/bench/src/bin/fig10_simsearch_oat.rs Cargo.toml

crates/bench/src/bin/fig10_simsearch_oat.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
