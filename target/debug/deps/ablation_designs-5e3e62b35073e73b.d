/root/repo/target/debug/deps/ablation_designs-5e3e62b35073e73b.d: crates/bench/src/bin/ablation_designs.rs Cargo.toml

/root/repo/target/debug/deps/libablation_designs-5e3e62b35073e73b.rmeta: crates/bench/src/bin/ablation_designs.rs Cargo.toml

crates/bench/src/bin/ablation_designs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
