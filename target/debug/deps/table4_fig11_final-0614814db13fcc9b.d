/root/repo/target/debug/deps/table4_fig11_final-0614814db13fcc9b.d: crates/bench/src/bin/table4_fig11_final.rs

/root/repo/target/debug/deps/table4_fig11_final-0614814db13fcc9b: crates/bench/src/bin/table4_fig11_final.rs

crates/bench/src/bin/table4_fig11_final.rs:
