/root/repo/target/debug/deps/paper_shapes-f076d1f98d54519e.d: tests/paper_shapes.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_shapes-f076d1f98d54519e.rmeta: tests/paper_shapes.rs Cargo.toml

tests/paper_shapes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
