/root/repo/target/debug/deps/end_to_end_optimization-706123d9be30cce2.d: tests/end_to_end_optimization.rs

/root/repo/target/debug/deps/end_to_end_optimization-706123d9be30cce2: tests/end_to_end_optimization.rs

tests/end_to_end_optimization.rs:
