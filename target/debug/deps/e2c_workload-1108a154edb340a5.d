/root/repo/target/debug/deps/e2c_workload-1108a154edb340a5.d: crates/workload/src/lib.rs crates/workload/src/arrivals.rs crates/workload/src/diurnal.rs crates/workload/src/images.rs crates/workload/src/seasonal.rs Cargo.toml

/root/repo/target/debug/deps/libe2c_workload-1108a154edb340a5.rmeta: crates/workload/src/lib.rs crates/workload/src/arrivals.rs crates/workload/src/diurnal.rs crates/workload/src/images.rs crates/workload/src/seasonal.rs Cargo.toml

crates/workload/src/lib.rs:
crates/workload/src/arrivals.rs:
crates/workload/src/diurnal.rs:
crates/workload/src/images.rs:
crates/workload/src/seasonal.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
