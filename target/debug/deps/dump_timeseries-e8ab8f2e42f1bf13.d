/root/repo/target/debug/deps/dump_timeseries-e8ab8f2e42f1bf13.d: crates/bench/src/bin/dump_timeseries.rs Cargo.toml

/root/repo/target/debug/deps/libdump_timeseries-e8ab8f2e42f1bf13.rmeta: crates/bench/src/bin/dump_timeseries.rs Cargo.toml

crates/bench/src/bin/dump_timeseries.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
