/root/repo/target/debug/deps/mm1_validation-cc13cd13b1d31091.d: crates/des/tests/mm1_validation.rs Cargo.toml

/root/repo/target/debug/deps/libmm1_validation-cc13cd13b1d31091.rmeta: crates/des/tests/mm1_validation.rs Cargo.toml

crates/des/tests/mm1_validation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
