/root/repo/target/debug/deps/ext_tail_latency-7d86cd885f86863b.d: crates/bench/src/bin/ext_tail_latency.rs

/root/repo/target/debug/deps/ext_tail_latency-7d86cd885f86863b: crates/bench/src/bin/ext_tail_latency.rs

crates/bench/src/bin/ext_tail_latency.rs:
