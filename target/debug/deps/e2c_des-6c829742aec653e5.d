/root/repo/target/debug/deps/e2c_des-6c829742aec653e5.d: crates/des/src/lib.rs crates/des/src/dist.rs crates/des/src/queue.rs crates/des/src/resources.rs crates/des/src/sim.rs crates/des/src/time.rs

/root/repo/target/debug/deps/e2c_des-6c829742aec653e5: crates/des/src/lib.rs crates/des/src/dist.rs crates/des/src/queue.rs crates/des/src/resources.rs crates/des/src/sim.rs crates/des/src/time.rs

crates/des/src/lib.rs:
crates/des/src/dist.rs:
crates/des/src/queue.rs:
crates/des/src/resources.rs:
crates/des/src/sim.rs:
crates/des/src/time.rs:
