/root/repo/target/debug/deps/cross_backend-0f913947834c0b74.d: tests/cross_backend.rs

/root/repo/target/debug/deps/cross_backend-0f913947834c0b74: tests/cross_backend.rs

tests/cross_backend.rs:
