/root/repo/target/debug/deps/ablation_acquisitions-bb349b284fc3fa60.d: crates/bench/src/bin/ablation_acquisitions.rs Cargo.toml

/root/repo/target/debug/deps/libablation_acquisitions-bb349b284fc3fa60.rmeta: crates/bench/src/bin/ablation_acquisitions.rs Cargo.toml

crates/bench/src/bin/ablation_acquisitions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
