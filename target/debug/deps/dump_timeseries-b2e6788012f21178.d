/root/repo/target/debug/deps/dump_timeseries-b2e6788012f21178.d: crates/bench/src/bin/dump_timeseries.rs

/root/repo/target/debug/deps/dump_timeseries-b2e6788012f21178: crates/bench/src/bin/dump_timeseries.rs

crates/bench/src/bin/dump_timeseries.rs:
