/root/repo/target/debug/deps/cross_backend-d76bb93592266d84.d: tests/cross_backend.rs Cargo.toml

/root/repo/target/debug/deps/libcross_backend-d76bb93592266d84.rmeta: tests/cross_backend.rs Cargo.toml

tests/cross_backend.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
