/root/repo/target/debug/deps/fig8_workload_scaling-bc44c22d24a24b0b.d: crates/bench/src/bin/fig8_workload_scaling.rs

/root/repo/target/debug/deps/fig8_workload_scaling-bc44c22d24a24b0b: crates/bench/src/bin/fig8_workload_scaling.rs

crates/bench/src/bin/fig8_workload_scaling.rs:
