/root/repo/target/debug/deps/cross_backend-1d44ddd79c953456.d: tests/cross_backend.rs Cargo.toml

/root/repo/target/debug/deps/libcross_backend-1d44ddd79c953456.rmeta: tests/cross_backend.rs Cargo.toml

tests/cross_backend.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
