/root/repo/target/debug/deps/fig3_response_curve-313d3625b0efad7e.d: crates/bench/src/bin/fig3_response_curve.rs

/root/repo/target/debug/deps/fig3_response_curve-313d3625b0efad7e: crates/bench/src/bin/fig3_response_curve.rs

crates/bench/src/bin/fig3_response_curve.rs:
