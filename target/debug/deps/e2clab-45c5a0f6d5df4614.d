/root/repo/target/debug/deps/e2clab-45c5a0f6d5df4614.d: src/lib.rs

/root/repo/target/debug/deps/libe2clab-45c5a0f6d5df4614.rlib: src/lib.rs

/root/repo/target/debug/deps/libe2clab-45c5a0f6d5df4614.rmeta: src/lib.rs

src/lib.rs:
