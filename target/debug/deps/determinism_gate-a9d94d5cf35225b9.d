/root/repo/target/debug/deps/determinism_gate-a9d94d5cf35225b9.d: crates/core/tests/determinism_gate.rs

/root/repo/target/debug/deps/determinism_gate-a9d94d5cf35225b9: crates/core/tests/determinism_gate.rs

crates/core/tests/determinism_gate.rs:

# env-dep:CARGO_BIN_EXE_e2clab=/root/repo/target/debug/e2clab
# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/core
