/root/repo/target/debug/deps/e2c_testbed-8363f30226302b36.d: crates/testbed/src/lib.rs crates/testbed/src/deployment.rs crates/testbed/src/grid5000.rs crates/testbed/src/hardware.rs crates/testbed/src/reservation.rs Cargo.toml

/root/repo/target/debug/deps/libe2c_testbed-8363f30226302b36.rmeta: crates/testbed/src/lib.rs crates/testbed/src/deployment.rs crates/testbed/src/grid5000.rs crates/testbed/src/hardware.rs crates/testbed/src/reservation.rs Cargo.toml

crates/testbed/src/lib.rs:
crates/testbed/src/deployment.rs:
crates/testbed/src/grid5000.rs:
crates/testbed/src/hardware.rs:
crates/testbed/src/reservation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
