/root/repo/target/debug/deps/roundtrip-6278d60821eeeeed.d: crates/conf/tests/roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libroundtrip-6278d60821eeeeed.rmeta: crates/conf/tests/roundtrip.rs Cargo.toml

crates/conf/tests/roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
