/root/repo/target/debug/deps/ext_second_gpu-528523ded1899e66.d: crates/bench/src/bin/ext_second_gpu.rs Cargo.toml

/root/repo/target/debug/deps/libext_second_gpu-528523ded1899e66.rmeta: crates/bench/src/bin/ext_second_gpu.rs Cargo.toml

crates/bench/src/bin/ext_second_gpu.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
