/root/repo/target/debug/deps/plantnet-6fe5a928df60e6fa.d: crates/plantnet/src/lib.rs crates/plantnet/src/config.rs crates/plantnet/src/model.rs crates/plantnet/src/monitor.rs crates/plantnet/src/pipeline.rs crates/plantnet/src/rt.rs crates/plantnet/src/sim.rs Cargo.toml

/root/repo/target/debug/deps/libplantnet-6fe5a928df60e6fa.rmeta: crates/plantnet/src/lib.rs crates/plantnet/src/config.rs crates/plantnet/src/model.rs crates/plantnet/src/monitor.rs crates/plantnet/src/pipeline.rs crates/plantnet/src/rt.rs crates/plantnet/src/sim.rs Cargo.toml

crates/plantnet/src/lib.rs:
crates/plantnet/src/config.rs:
crates/plantnet/src/model.rs:
crates/plantnet/src/monitor.rs:
crates/plantnet/src/pipeline.rs:
crates/plantnet/src/rt.rs:
crates/plantnet/src/sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
