/root/repo/target/debug/deps/ablation_designs-e999a441baf640cf.d: crates/bench/src/bin/ablation_designs.rs

/root/repo/target/debug/deps/ablation_designs-e999a441baf640cf: crates/bench/src/bin/ablation_designs.rs

crates/bench/src/bin/ablation_designs.rs:
