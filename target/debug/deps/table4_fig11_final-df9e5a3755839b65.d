/root/repo/target/debug/deps/table4_fig11_final-df9e5a3755839b65.d: crates/bench/src/bin/table4_fig11_final.rs Cargo.toml

/root/repo/target/debug/deps/libtable4_fig11_final-df9e5a3755839b65.rmeta: crates/bench/src/bin/table4_fig11_final.rs Cargo.toml

crates/bench/src/bin/table4_fig11_final.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
