/root/repo/target/debug/deps/e2c_des-c3f21a1a7f3b7770.d: crates/des/src/lib.rs crates/des/src/dist.rs crates/des/src/queue.rs crates/des/src/resources.rs crates/des/src/sim.rs crates/des/src/time.rs Cargo.toml

/root/repo/target/debug/deps/libe2c_des-c3f21a1a7f3b7770.rmeta: crates/des/src/lib.rs crates/des/src/dist.rs crates/des/src/queue.rs crates/des/src/resources.rs crates/des/src/sim.rs crates/des/src/time.rs Cargo.toml

crates/des/src/lib.rs:
crates/des/src/dist.rs:
crates/des/src/queue.rs:
crates/des/src/resources.rs:
crates/des/src/sim.rs:
crates/des/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
