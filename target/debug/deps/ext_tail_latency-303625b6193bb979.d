/root/repo/target/debug/deps/ext_tail_latency-303625b6193bb979.d: crates/bench/src/bin/ext_tail_latency.rs Cargo.toml

/root/repo/target/debug/deps/libext_tail_latency-303625b6193bb979.rmeta: crates/bench/src/bin/ext_tail_latency.rs Cargo.toml

crates/bench/src/bin/ext_tail_latency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
