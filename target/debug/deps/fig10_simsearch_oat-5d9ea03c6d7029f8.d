/root/repo/target/debug/deps/fig10_simsearch_oat-5d9ea03c6d7029f8.d: crates/bench/src/bin/fig10_simsearch_oat.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_simsearch_oat-5d9ea03c6d7029f8.rmeta: crates/bench/src/bin/fig10_simsearch_oat.rs Cargo.toml

crates/bench/src/bin/fig10_simsearch_oat.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
