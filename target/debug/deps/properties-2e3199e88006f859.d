/root/repo/target/debug/deps/properties-2e3199e88006f859.d: crates/des/tests/properties.rs

/root/repo/target/debug/deps/properties-2e3199e88006f859: crates/des/tests/properties.rs

crates/des/tests/properties.rs:
