/root/repo/target/debug/deps/ablation_acquisitions-2e691f5181a6f45c.d: crates/bench/src/bin/ablation_acquisitions.rs

/root/repo/target/debug/deps/ablation_acquisitions-2e691f5181a6f45c: crates/bench/src/bin/ablation_acquisitions.rs

crates/bench/src/bin/ablation_acquisitions.rs:
