/root/repo/target/debug/deps/fig9_extract_oat-664c79e33e19504d.d: crates/bench/src/bin/fig9_extract_oat.rs Cargo.toml

/root/repo/target/debug/deps/libfig9_extract_oat-664c79e33e19504d.rmeta: crates/bench/src/bin/fig9_extract_oat.rs Cargo.toml

crates/bench/src/bin/fig9_extract_oat.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
