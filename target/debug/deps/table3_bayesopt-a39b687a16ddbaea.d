/root/repo/target/debug/deps/table3_bayesopt-a39b687a16ddbaea.d: crates/bench/src/bin/table3_bayesopt.rs

/root/repo/target/debug/deps/table3_bayesopt-a39b687a16ddbaea: crates/bench/src/bin/table3_bayesopt.rs

crates/bench/src/bin/table3_bayesopt.rs:
