/root/repo/target/debug/deps/proptest-cff23b700ec558aa.d: vendor/proptest/src/lib.rs vendor/proptest/src/arbitrary.rs vendor/proptest/src/collection.rs vendor/proptest/src/strategy.rs vendor/proptest/src/string.rs vendor/proptest/src/test_runner.rs

/root/repo/target/debug/deps/libproptest-cff23b700ec558aa.rlib: vendor/proptest/src/lib.rs vendor/proptest/src/arbitrary.rs vendor/proptest/src/collection.rs vendor/proptest/src/strategy.rs vendor/proptest/src/string.rs vendor/proptest/src/test_runner.rs

/root/repo/target/debug/deps/libproptest-cff23b700ec558aa.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/arbitrary.rs vendor/proptest/src/collection.rs vendor/proptest/src/strategy.rs vendor/proptest/src/string.rs vendor/proptest/src/test_runner.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/arbitrary.rs:
vendor/proptest/src/collection.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/string.rs:
vendor/proptest/src/test_runner.rs:
