/root/repo/target/debug/deps/ablation_surrogates-929eab7f710d59d8.d: crates/bench/src/bin/ablation_surrogates.rs

/root/repo/target/debug/deps/ablation_surrogates-929eab7f710d59d8: crates/bench/src/bin/ablation_surrogates.rs

crates/bench/src/bin/ablation_surrogates.rs:
