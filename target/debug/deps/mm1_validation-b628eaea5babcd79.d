/root/repo/target/debug/deps/mm1_validation-b628eaea5babcd79.d: crates/des/tests/mm1_validation.rs

/root/repo/target/debug/deps/mm1_validation-b628eaea5babcd79: crates/des/tests/mm1_validation.rs

crates/des/tests/mm1_validation.rs:
