/root/repo/target/debug/deps/detlint-301010ebcf8701cc.d: crates/detlint/src/lib.rs crates/detlint/src/config.rs crates/detlint/src/rules.rs crates/detlint/src/scanner.rs crates/detlint/src/walk.rs

/root/repo/target/debug/deps/libdetlint-301010ebcf8701cc.rlib: crates/detlint/src/lib.rs crates/detlint/src/config.rs crates/detlint/src/rules.rs crates/detlint/src/scanner.rs crates/detlint/src/walk.rs

/root/repo/target/debug/deps/libdetlint-301010ebcf8701cc.rmeta: crates/detlint/src/lib.rs crates/detlint/src/config.rs crates/detlint/src/rules.rs crates/detlint/src/scanner.rs crates/detlint/src/walk.rs

crates/detlint/src/lib.rs:
crates/detlint/src/config.rs:
crates/detlint/src/rules.rs:
crates/detlint/src/scanner.rs:
crates/detlint/src/walk.rs:
