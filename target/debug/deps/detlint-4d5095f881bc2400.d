/root/repo/target/debug/deps/detlint-4d5095f881bc2400.d: crates/detlint/src/lib.rs crates/detlint/src/config.rs crates/detlint/src/rules.rs crates/detlint/src/scanner.rs crates/detlint/src/walk.rs Cargo.toml

/root/repo/target/debug/deps/libdetlint-4d5095f881bc2400.rmeta: crates/detlint/src/lib.rs crates/detlint/src/config.rs crates/detlint/src/rules.rs crates/detlint/src/scanner.rs crates/detlint/src/walk.rs Cargo.toml

crates/detlint/src/lib.rs:
crates/detlint/src/config.rs:
crates/detlint/src/rules.rs:
crates/detlint/src/scanner.rs:
crates/detlint/src/walk.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
