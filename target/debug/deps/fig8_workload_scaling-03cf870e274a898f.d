/root/repo/target/debug/deps/fig8_workload_scaling-03cf870e274a898f.d: crates/bench/src/bin/fig8_workload_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libfig8_workload_scaling-03cf870e274a898f.rmeta: crates/bench/src/bin/fig8_workload_scaling.rs Cargo.toml

crates/bench/src/bin/fig8_workload_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
