/root/repo/target/debug/deps/fig10_simsearch_oat-3d82872bca4a0b77.d: crates/bench/src/bin/fig10_simsearch_oat.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_simsearch_oat-3d82872bca4a0b77.rmeta: crates/bench/src/bin/fig10_simsearch_oat.rs Cargo.toml

crates/bench/src/bin/fig10_simsearch_oat.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
