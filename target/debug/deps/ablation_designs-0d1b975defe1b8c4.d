/root/repo/target/debug/deps/ablation_designs-0d1b975defe1b8c4.d: crates/bench/src/bin/ablation_designs.rs Cargo.toml

/root/repo/target/debug/deps/libablation_designs-0d1b975defe1b8c4.rmeta: crates/bench/src/bin/ablation_designs.rs Cargo.toml

crates/bench/src/bin/ablation_designs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
