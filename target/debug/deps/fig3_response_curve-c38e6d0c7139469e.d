/root/repo/target/debug/deps/fig3_response_curve-c38e6d0c7139469e.d: crates/bench/src/bin/fig3_response_curve.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_response_curve-c38e6d0c7139469e.rmeta: crates/bench/src/bin/fig3_response_curve.rs Cargo.toml

crates/bench/src/bin/fig3_response_curve.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
