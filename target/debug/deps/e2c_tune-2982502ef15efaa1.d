/root/repo/target/debug/deps/e2c_tune-2982502ef15efaa1.d: crates/tune/src/lib.rs crates/tune/src/analysis.rs crates/tune/src/clock.rs crates/tune/src/evolution.rs crates/tune/src/fault.rs crates/tune/src/logger.rs crates/tune/src/scheduler.rs crates/tune/src/searcher.rs crates/tune/src/trial.rs crates/tune/src/tuner.rs

/root/repo/target/debug/deps/libe2c_tune-2982502ef15efaa1.rlib: crates/tune/src/lib.rs crates/tune/src/analysis.rs crates/tune/src/clock.rs crates/tune/src/evolution.rs crates/tune/src/fault.rs crates/tune/src/logger.rs crates/tune/src/scheduler.rs crates/tune/src/searcher.rs crates/tune/src/trial.rs crates/tune/src/tuner.rs

/root/repo/target/debug/deps/libe2c_tune-2982502ef15efaa1.rmeta: crates/tune/src/lib.rs crates/tune/src/analysis.rs crates/tune/src/clock.rs crates/tune/src/evolution.rs crates/tune/src/fault.rs crates/tune/src/logger.rs crates/tune/src/scheduler.rs crates/tune/src/searcher.rs crates/tune/src/trial.rs crates/tune/src/tuner.rs

crates/tune/src/lib.rs:
crates/tune/src/analysis.rs:
crates/tune/src/clock.rs:
crates/tune/src/evolution.rs:
crates/tune/src/fault.rs:
crates/tune/src/logger.rs:
crates/tune/src/scheduler.rs:
crates/tune/src/searcher.rs:
crates/tune/src/trial.rs:
crates/tune/src/tuner.rs:
