/root/repo/target/debug/deps/table4_fig11_final-e46ae4a335413a43.d: crates/bench/src/bin/table4_fig11_final.rs Cargo.toml

/root/repo/target/debug/deps/libtable4_fig11_final-e46ae4a335413a43.rmeta: crates/bench/src/bin/table4_fig11_final.rs Cargo.toml

crates/bench/src/bin/table4_fig11_final.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
