/root/repo/target/debug/deps/fig3_response_curve-afe4c6b1ae2dccb1.d: crates/bench/src/bin/fig3_response_curve.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_response_curve-afe4c6b1ae2dccb1.rmeta: crates/bench/src/bin/fig3_response_curve.rs Cargo.toml

crates/bench/src/bin/fig3_response_curve.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
