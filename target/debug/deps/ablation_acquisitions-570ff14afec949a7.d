/root/repo/target/debug/deps/ablation_acquisitions-570ff14afec949a7.d: crates/bench/src/bin/ablation_acquisitions.rs

/root/repo/target/debug/deps/ablation_acquisitions-570ff14afec949a7: crates/bench/src/bin/ablation_acquisitions.rs

crates/bench/src/bin/ablation_acquisitions.rs:
