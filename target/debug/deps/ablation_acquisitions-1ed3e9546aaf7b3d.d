/root/repo/target/debug/deps/ablation_acquisitions-1ed3e9546aaf7b3d.d: crates/bench/src/bin/ablation_acquisitions.rs Cargo.toml

/root/repo/target/debug/deps/libablation_acquisitions-1ed3e9546aaf7b3d.rmeta: crates/bench/src/bin/ablation_acquisitions.rs Cargo.toml

crates/bench/src/bin/ablation_acquisitions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
