/root/repo/target/debug/deps/cli-ce29334e070cca6c.d: crates/core/tests/cli.rs Cargo.toml

/root/repo/target/debug/deps/libcli-ce29334e070cca6c.rmeta: crates/core/tests/cli.rs Cargo.toml

crates/core/tests/cli.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_e2clab=placeholder:e2clab
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
