/root/repo/target/debug/deps/plantnet-d3c69c7c9cbeaa4c.d: crates/plantnet/src/lib.rs crates/plantnet/src/config.rs crates/plantnet/src/model.rs crates/plantnet/src/monitor.rs crates/plantnet/src/pipeline.rs crates/plantnet/src/rt.rs crates/plantnet/src/sim.rs

/root/repo/target/debug/deps/plantnet-d3c69c7c9cbeaa4c: crates/plantnet/src/lib.rs crates/plantnet/src/config.rs crates/plantnet/src/model.rs crates/plantnet/src/monitor.rs crates/plantnet/src/pipeline.rs crates/plantnet/src/rt.rs crates/plantnet/src/sim.rs

crates/plantnet/src/lib.rs:
crates/plantnet/src/config.rs:
crates/plantnet/src/model.rs:
crates/plantnet/src/monitor.rs:
crates/plantnet/src/pipeline.rs:
crates/plantnet/src/rt.rs:
crates/plantnet/src/sim.rs:
