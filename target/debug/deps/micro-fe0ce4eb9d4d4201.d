/root/repo/target/debug/deps/micro-fe0ce4eb9d4d4201.d: crates/bench/benches/micro.rs Cargo.toml

/root/repo/target/debug/deps/libmicro-fe0ce4eb9d4d4201.rmeta: crates/bench/benches/micro.rs Cargo.toml

crates/bench/benches/micro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
