/root/repo/target/debug/deps/e2c_bench-9112f100d2360d5c.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libe2c_bench-9112f100d2360d5c.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
