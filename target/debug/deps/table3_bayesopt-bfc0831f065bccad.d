/root/repo/target/debug/deps/table3_bayesopt-bfc0831f065bccad.d: crates/bench/src/bin/table3_bayesopt.rs Cargo.toml

/root/repo/target/debug/deps/libtable3_bayesopt-bfc0831f065bccad.rmeta: crates/bench/src/bin/table3_bayesopt.rs Cargo.toml

crates/bench/src/bin/table3_bayesopt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
