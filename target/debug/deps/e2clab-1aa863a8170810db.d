/root/repo/target/debug/deps/e2clab-1aa863a8170810db.d: crates/core/src/bin/e2clab.rs

/root/repo/target/debug/deps/e2clab-1aa863a8170810db: crates/core/src/bin/e2clab.rs

crates/core/src/bin/e2clab.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/core
