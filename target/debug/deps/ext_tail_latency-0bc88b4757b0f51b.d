/root/repo/target/debug/deps/ext_tail_latency-0bc88b4757b0f51b.d: crates/bench/src/bin/ext_tail_latency.rs Cargo.toml

/root/repo/target/debug/deps/libext_tail_latency-0bc88b4757b0f51b.rmeta: crates/bench/src/bin/ext_tail_latency.rs Cargo.toml

crates/bench/src/bin/ext_tail_latency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
