/root/repo/target/debug/deps/end_to_end_optimization-26f5a734f3e7d579.d: tests/end_to_end_optimization.rs Cargo.toml

/root/repo/target/debug/deps/libend_to_end_optimization-26f5a734f3e7d579.rmeta: tests/end_to_end_optimization.rs Cargo.toml

tests/end_to_end_optimization.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
