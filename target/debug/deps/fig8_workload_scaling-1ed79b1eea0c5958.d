/root/repo/target/debug/deps/fig8_workload_scaling-1ed79b1eea0c5958.d: crates/bench/src/bin/fig8_workload_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libfig8_workload_scaling-1ed79b1eea0c5958.rmeta: crates/bench/src/bin/fig8_workload_scaling.rs Cargo.toml

crates/bench/src/bin/fig8_workload_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
