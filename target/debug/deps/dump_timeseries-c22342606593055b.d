/root/repo/target/debug/deps/dump_timeseries-c22342606593055b.d: crates/bench/src/bin/dump_timeseries.rs

/root/repo/target/debug/deps/dump_timeseries-c22342606593055b: crates/bench/src/bin/dump_timeseries.rs

crates/bench/src/bin/dump_timeseries.rs:
