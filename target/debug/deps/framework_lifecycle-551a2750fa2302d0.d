/root/repo/target/debug/deps/framework_lifecycle-551a2750fa2302d0.d: tests/framework_lifecycle.rs

/root/repo/target/debug/deps/framework_lifecycle-551a2750fa2302d0: tests/framework_lifecycle.rs

tests/framework_lifecycle.rs:
