/root/repo/target/debug/deps/e2c_bench-16f0544a2e84800c.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/e2c_bench-16f0544a2e84800c: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
