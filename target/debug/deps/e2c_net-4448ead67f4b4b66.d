/root/repo/target/debug/deps/e2c_net-4448ead67f4b4b66.d: crates/net/src/lib.rs crates/net/src/link.rs crates/net/src/shaping.rs crates/net/src/topology.rs

/root/repo/target/debug/deps/e2c_net-4448ead67f4b4b66: crates/net/src/lib.rs crates/net/src/link.rs crates/net/src/shaping.rs crates/net/src/topology.rs

crates/net/src/lib.rs:
crates/net/src/link.rs:
crates/net/src/shaping.rs:
crates/net/src/topology.rs:
