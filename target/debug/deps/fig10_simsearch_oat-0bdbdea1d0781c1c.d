/root/repo/target/debug/deps/fig10_simsearch_oat-0bdbdea1d0781c1c.d: crates/bench/src/bin/fig10_simsearch_oat.rs

/root/repo/target/debug/deps/fig10_simsearch_oat-0bdbdea1d0781c1c: crates/bench/src/bin/fig10_simsearch_oat.rs

crates/bench/src/bin/fig10_simsearch_oat.rs:
