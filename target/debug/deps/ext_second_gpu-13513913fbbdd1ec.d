/root/repo/target/debug/deps/ext_second_gpu-13513913fbbdd1ec.d: crates/bench/src/bin/ext_second_gpu.rs Cargo.toml

/root/repo/target/debug/deps/libext_second_gpu-13513913fbbdd1ec.rmeta: crates/bench/src/bin/ext_second_gpu.rs Cargo.toml

crates/bench/src/bin/ext_second_gpu.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
