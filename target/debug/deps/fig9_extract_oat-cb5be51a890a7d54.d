/root/repo/target/debug/deps/fig9_extract_oat-cb5be51a890a7d54.d: crates/bench/src/bin/fig9_extract_oat.rs Cargo.toml

/root/repo/target/debug/deps/libfig9_extract_oat-cb5be51a890a7d54.rmeta: crates/bench/src/bin/fig9_extract_oat.rs Cargo.toml

crates/bench/src/bin/fig9_extract_oat.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
