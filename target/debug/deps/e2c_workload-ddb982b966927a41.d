/root/repo/target/debug/deps/e2c_workload-ddb982b966927a41.d: crates/workload/src/lib.rs crates/workload/src/arrivals.rs crates/workload/src/diurnal.rs crates/workload/src/images.rs crates/workload/src/seasonal.rs

/root/repo/target/debug/deps/e2c_workload-ddb982b966927a41: crates/workload/src/lib.rs crates/workload/src/arrivals.rs crates/workload/src/diurnal.rs crates/workload/src/images.rs crates/workload/src/seasonal.rs

crates/workload/src/lib.rs:
crates/workload/src/arrivals.rs:
crates/workload/src/diurnal.rs:
crates/workload/src/images.rs:
crates/workload/src/seasonal.rs:
