/root/repo/target/debug/deps/ablation_designs-9436afd82c6619ec.d: crates/bench/src/bin/ablation_designs.rs Cargo.toml

/root/repo/target/debug/deps/libablation_designs-9436afd82c6619ec.rmeta: crates/bench/src/bin/ablation_designs.rs Cargo.toml

crates/bench/src/bin/ablation_designs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
