/root/repo/target/debug/deps/calibrate-dedf0f1c36cc49b6.d: crates/bench/src/bin/calibrate.rs

/root/repo/target/debug/deps/calibrate-dedf0f1c36cc49b6: crates/bench/src/bin/calibrate.rs

crates/bench/src/bin/calibrate.rs:
