/root/repo/target/debug/deps/e2c_net-0ec294e69f4dec49.d: crates/net/src/lib.rs crates/net/src/link.rs crates/net/src/shaping.rs crates/net/src/topology.rs

/root/repo/target/debug/deps/libe2c_net-0ec294e69f4dec49.rlib: crates/net/src/lib.rs crates/net/src/link.rs crates/net/src/shaping.rs crates/net/src/topology.rs

/root/repo/target/debug/deps/libe2c_net-0ec294e69f4dec49.rmeta: crates/net/src/lib.rs crates/net/src/link.rs crates/net/src/shaping.rs crates/net/src/topology.rs

crates/net/src/lib.rs:
crates/net/src/link.rs:
crates/net/src/shaping.rs:
crates/net/src/topology.rs:
