/root/repo/target/debug/deps/ext_capacity-c947e7ab6afc185b.d: crates/bench/src/bin/ext_capacity.rs Cargo.toml

/root/repo/target/debug/deps/libext_capacity-c947e7ab6afc185b.rmeta: crates/bench/src/bin/ext_capacity.rs Cargo.toml

crates/bench/src/bin/ext_capacity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
