/root/repo/target/debug/deps/determinism_gate-21fd16937b55c63f.d: crates/core/tests/determinism_gate.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism_gate-21fd16937b55c63f.rmeta: crates/core/tests/determinism_gate.rs Cargo.toml

crates/core/tests/determinism_gate.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_e2clab=placeholder:e2clab
# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/core
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
