/root/repo/target/debug/deps/ablation_acquisitions-3c88029bbbfc608a.d: crates/bench/src/bin/ablation_acquisitions.rs Cargo.toml

/root/repo/target/debug/deps/libablation_acquisitions-3c88029bbbfc608a.rmeta: crates/bench/src/bin/ablation_acquisitions.rs Cargo.toml

crates/bench/src/bin/ablation_acquisitions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
