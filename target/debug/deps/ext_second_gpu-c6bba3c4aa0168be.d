/root/repo/target/debug/deps/ext_second_gpu-c6bba3c4aa0168be.d: crates/bench/src/bin/ext_second_gpu.rs Cargo.toml

/root/repo/target/debug/deps/libext_second_gpu-c6bba3c4aa0168be.rmeta: crates/bench/src/bin/ext_second_gpu.rs Cargo.toml

crates/bench/src/bin/ext_second_gpu.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
