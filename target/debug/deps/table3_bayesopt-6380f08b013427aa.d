/root/repo/target/debug/deps/table3_bayesopt-6380f08b013427aa.d: crates/bench/src/bin/table3_bayesopt.rs Cargo.toml

/root/repo/target/debug/deps/libtable3_bayesopt-6380f08b013427aa.rmeta: crates/bench/src/bin/table3_bayesopt.rs Cargo.toml

crates/bench/src/bin/table3_bayesopt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
