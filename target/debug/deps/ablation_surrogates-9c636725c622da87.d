/root/repo/target/debug/deps/ablation_surrogates-9c636725c622da87.d: crates/bench/src/bin/ablation_surrogates.rs Cargo.toml

/root/repo/target/debug/deps/libablation_surrogates-9c636725c622da87.rmeta: crates/bench/src/bin/ablation_surrogates.rs Cargo.toml

crates/bench/src/bin/ablation_surrogates.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
