/root/repo/target/debug/deps/e2c_conf-0fc218cba2e0e236.d: crates/conf/src/lib.rs crates/conf/src/parser.rs crates/conf/src/schema.rs crates/conf/src/value.rs

/root/repo/target/debug/deps/e2c_conf-0fc218cba2e0e236: crates/conf/src/lib.rs crates/conf/src/parser.rs crates/conf/src/schema.rs crates/conf/src/value.rs

crates/conf/src/lib.rs:
crates/conf/src/parser.rs:
crates/conf/src/schema.rs:
crates/conf/src/value.rs:
