/root/repo/target/debug/deps/ext_second_gpu-2b6d8de7ca8e0434.d: crates/bench/src/bin/ext_second_gpu.rs Cargo.toml

/root/repo/target/debug/deps/libext_second_gpu-2b6d8de7ca8e0434.rmeta: crates/bench/src/bin/ext_second_gpu.rs Cargo.toml

crates/bench/src/bin/ext_second_gpu.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
