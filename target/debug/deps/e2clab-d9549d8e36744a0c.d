/root/repo/target/debug/deps/e2clab-d9549d8e36744a0c.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libe2clab-d9549d8e36744a0c.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
