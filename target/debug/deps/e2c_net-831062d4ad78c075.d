/root/repo/target/debug/deps/e2c_net-831062d4ad78c075.d: crates/net/src/lib.rs crates/net/src/link.rs crates/net/src/shaping.rs crates/net/src/topology.rs Cargo.toml

/root/repo/target/debug/deps/libe2c_net-831062d4ad78c075.rmeta: crates/net/src/lib.rs crates/net/src/link.rs crates/net/src/shaping.rs crates/net/src/topology.rs Cargo.toml

crates/net/src/lib.rs:
crates/net/src/link.rs:
crates/net/src/shaping.rs:
crates/net/src/topology.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
