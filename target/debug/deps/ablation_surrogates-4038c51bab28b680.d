/root/repo/target/debug/deps/ablation_surrogates-4038c51bab28b680.d: crates/bench/src/bin/ablation_surrogates.rs Cargo.toml

/root/repo/target/debug/deps/libablation_surrogates-4038c51bab28b680.rmeta: crates/bench/src/bin/ablation_surrogates.rs Cargo.toml

crates/bench/src/bin/ablation_surrogates.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
