/root/repo/target/debug/deps/e2clab-d6d4efa4508f074c.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libe2clab-d6d4efa4508f074c.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
