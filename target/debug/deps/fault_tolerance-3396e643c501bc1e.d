/root/repo/target/debug/deps/fault_tolerance-3396e643c501bc1e.d: tests/fault_tolerance.rs Cargo.toml

/root/repo/target/debug/deps/libfault_tolerance-3396e643c501bc1e.rmeta: tests/fault_tolerance.rs Cargo.toml

tests/fault_tolerance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
