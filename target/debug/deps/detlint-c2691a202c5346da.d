/root/repo/target/debug/deps/detlint-c2691a202c5346da.d: crates/detlint/src/lib.rs crates/detlint/src/config.rs crates/detlint/src/rules.rs crates/detlint/src/scanner.rs crates/detlint/src/walk.rs

/root/repo/target/debug/deps/detlint-c2691a202c5346da: crates/detlint/src/lib.rs crates/detlint/src/config.rs crates/detlint/src/rules.rs crates/detlint/src/scanner.rs crates/detlint/src/walk.rs

crates/detlint/src/lib.rs:
crates/detlint/src/config.rs:
crates/detlint/src/rules.rs:
crates/detlint/src/scanner.rs:
crates/detlint/src/walk.rs:
