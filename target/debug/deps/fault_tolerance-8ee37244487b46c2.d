/root/repo/target/debug/deps/fault_tolerance-8ee37244487b46c2.d: tests/fault_tolerance.rs

/root/repo/target/debug/deps/fault_tolerance-8ee37244487b46c2: tests/fault_tolerance.rs

tests/fault_tolerance.rs:
