/root/repo/target/debug/deps/e2clab-7951ff6a4d1f76de.d: crates/core/src/bin/e2clab.rs Cargo.toml

/root/repo/target/debug/deps/libe2clab-7951ff6a4d1f76de.rmeta: crates/core/src/bin/e2clab.rs Cargo.toml

crates/core/src/bin/e2clab.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
