/root/repo/target/debug/deps/ablation_surrogates-685dabe22ede2351.d: crates/bench/src/bin/ablation_surrogates.rs Cargo.toml

/root/repo/target/debug/deps/libablation_surrogates-685dabe22ede2351.rmeta: crates/bench/src/bin/ablation_surrogates.rs Cargo.toml

crates/bench/src/bin/ablation_surrogates.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
