/root/repo/target/debug/deps/properties-0f9fc4c1f11c5920.d: crates/optim/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-0f9fc4c1f11c5920.rmeta: crates/optim/tests/properties.rs Cargo.toml

crates/optim/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
