/root/repo/target/debug/libe2c_conf.rlib: /root/repo/crates/conf/src/lib.rs /root/repo/crates/conf/src/parser.rs /root/repo/crates/conf/src/schema.rs /root/repo/crates/conf/src/value.rs
