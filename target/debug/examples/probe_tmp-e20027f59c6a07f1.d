/root/repo/target/debug/examples/probe_tmp-e20027f59c6a07f1.d: crates/optim/examples/probe_tmp.rs

/root/repo/target/debug/examples/probe_tmp-e20027f59c6a07f1: crates/optim/examples/probe_tmp.rs

crates/optim/examples/probe_tmp.rs:
