/root/repo/target/debug/examples/plantnet_tuning-55986c78d862d3f4.d: examples/plantnet_tuning.rs

/root/repo/target/debug/examples/plantnet_tuning-55986c78d862d3f4: examples/plantnet_tuning.rs

examples/plantnet_tuning.rs:
