/root/repo/target/debug/examples/pareto_placement-39f802cc6ba022a6.d: examples/pareto_placement.rs

/root/repo/target/debug/examples/pareto_placement-39f802cc6ba022a6: examples/pareto_placement.rs

examples/pareto_placement.rs:
