/root/repo/target/debug/examples/plantnet_tuning-076f360235ab4030.d: examples/plantnet_tuning.rs Cargo.toml

/root/repo/target/debug/examples/libplantnet_tuning-076f360235ab4030.rmeta: examples/plantnet_tuning.rs Cargo.toml

examples/plantnet_tuning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
