/root/repo/target/debug/examples/sensitivity_oat-b6718f6082876c60.d: examples/sensitivity_oat.rs Cargo.toml

/root/repo/target/debug/examples/libsensitivity_oat-b6718f6082876c60.rmeta: examples/sensitivity_oat.rs Cargo.toml

examples/sensitivity_oat.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
