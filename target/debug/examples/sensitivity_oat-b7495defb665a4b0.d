/root/repo/target/debug/examples/sensitivity_oat-b7495defb665a4b0.d: examples/sensitivity_oat.rs Cargo.toml

/root/repo/target/debug/examples/libsensitivity_oat-b7495defb665a4b0.rmeta: examples/sensitivity_oat.rs Cargo.toml

examples/sensitivity_oat.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
