/root/repo/target/debug/examples/pareto_placement-be507ef77b4e4a8d.d: examples/pareto_placement.rs Cargo.toml

/root/repo/target/debug/examples/libpareto_placement-be507ef77b4e4a8d.rmeta: examples/pareto_placement.rs Cargo.toml

examples/pareto_placement.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
