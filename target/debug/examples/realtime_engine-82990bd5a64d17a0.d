/root/repo/target/debug/examples/realtime_engine-82990bd5a64d17a0.d: examples/realtime_engine.rs Cargo.toml

/root/repo/target/debug/examples/librealtime_engine-82990bd5a64d17a0.rmeta: examples/realtime_engine.rs Cargo.toml

examples/realtime_engine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
