/root/repo/target/debug/examples/realtime_engine-455eec08910a948a.d: examples/realtime_engine.rs

/root/repo/target/debug/examples/realtime_engine-455eec08910a948a: examples/realtime_engine.rs

examples/realtime_engine.rs:
