/root/repo/target/debug/examples/realtime_engine-73225794e213ff97.d: examples/realtime_engine.rs Cargo.toml

/root/repo/target/debug/examples/librealtime_engine-73225794e213ff97.rmeta: examples/realtime_engine.rs Cargo.toml

examples/realtime_engine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
