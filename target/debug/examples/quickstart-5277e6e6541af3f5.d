/root/repo/target/debug/examples/quickstart-5277e6e6541af3f5.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-5277e6e6541af3f5.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
