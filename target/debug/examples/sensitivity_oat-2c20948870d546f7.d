/root/repo/target/debug/examples/sensitivity_oat-2c20948870d546f7.d: examples/sensitivity_oat.rs

/root/repo/target/debug/examples/sensitivity_oat-2c20948870d546f7: examples/sensitivity_oat.rs

examples/sensitivity_oat.rs:
