/root/repo/target/debug/examples/pareto_placement-ba557f6f4597f84d.d: examples/pareto_placement.rs Cargo.toml

/root/repo/target/debug/examples/libpareto_placement-ba557f6f4597f84d.rmeta: examples/pareto_placement.rs Cargo.toml

examples/pareto_placement.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
