/root/repo/target/debug/examples/plantnet_tuning-87840c1b9b971715.d: examples/plantnet_tuning.rs Cargo.toml

/root/repo/target/debug/examples/libplantnet_tuning-87840c1b9b971715.rmeta: examples/plantnet_tuning.rs Cargo.toml

examples/plantnet_tuning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
