/root/repo/target/debug/examples/continuum_placement-f58551ca08fdf484.d: examples/continuum_placement.rs Cargo.toml

/root/repo/target/debug/examples/libcontinuum_placement-f58551ca08fdf484.rmeta: examples/continuum_placement.rs Cargo.toml

examples/continuum_placement.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
