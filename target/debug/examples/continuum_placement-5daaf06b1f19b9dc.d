/root/repo/target/debug/examples/continuum_placement-5daaf06b1f19b9dc.d: examples/continuum_placement.rs Cargo.toml

/root/repo/target/debug/examples/libcontinuum_placement-5daaf06b1f19b9dc.rmeta: examples/continuum_placement.rs Cargo.toml

examples/continuum_placement.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
