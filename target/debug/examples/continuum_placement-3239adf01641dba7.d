/root/repo/target/debug/examples/continuum_placement-3239adf01641dba7.d: examples/continuum_placement.rs

/root/repo/target/debug/examples/continuum_placement-3239adf01641dba7: examples/continuum_placement.rs

examples/continuum_placement.rs:
