/root/repo/target/debug/examples/quickstart-bac4627f032bd8c8.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-bac4627f032bd8c8: examples/quickstart.rs

examples/quickstart.rs:
