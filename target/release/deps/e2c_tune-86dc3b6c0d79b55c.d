/root/repo/target/release/deps/e2c_tune-86dc3b6c0d79b55c.d: crates/tune/src/lib.rs crates/tune/src/analysis.rs crates/tune/src/evolution.rs crates/tune/src/fault.rs crates/tune/src/logger.rs crates/tune/src/scheduler.rs crates/tune/src/searcher.rs crates/tune/src/trial.rs crates/tune/src/tuner.rs

/root/repo/target/release/deps/e2c_tune-86dc3b6c0d79b55c: crates/tune/src/lib.rs crates/tune/src/analysis.rs crates/tune/src/evolution.rs crates/tune/src/fault.rs crates/tune/src/logger.rs crates/tune/src/scheduler.rs crates/tune/src/searcher.rs crates/tune/src/trial.rs crates/tune/src/tuner.rs

crates/tune/src/lib.rs:
crates/tune/src/analysis.rs:
crates/tune/src/evolution.rs:
crates/tune/src/fault.rs:
crates/tune/src/logger.rs:
crates/tune/src/scheduler.rs:
crates/tune/src/searcher.rs:
crates/tune/src/trial.rs:
crates/tune/src/tuner.rs:
