/root/repo/target/release/deps/fig8_workload_scaling-9a35707da264ca63.d: crates/bench/src/bin/fig8_workload_scaling.rs

/root/repo/target/release/deps/fig8_workload_scaling-9a35707da264ca63: crates/bench/src/bin/fig8_workload_scaling.rs

crates/bench/src/bin/fig8_workload_scaling.rs:
