/root/repo/target/release/deps/e2c_testbed-b35c4d2f4f1fd8d2.d: crates/testbed/src/lib.rs crates/testbed/src/deployment.rs crates/testbed/src/grid5000.rs crates/testbed/src/hardware.rs crates/testbed/src/reservation.rs

/root/repo/target/release/deps/e2c_testbed-b35c4d2f4f1fd8d2: crates/testbed/src/lib.rs crates/testbed/src/deployment.rs crates/testbed/src/grid5000.rs crates/testbed/src/hardware.rs crates/testbed/src/reservation.rs

crates/testbed/src/lib.rs:
crates/testbed/src/deployment.rs:
crates/testbed/src/grid5000.rs:
crates/testbed/src/hardware.rs:
crates/testbed/src/reservation.rs:
