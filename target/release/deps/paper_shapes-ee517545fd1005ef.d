/root/repo/target/release/deps/paper_shapes-ee517545fd1005ef.d: tests/paper_shapes.rs

/root/repo/target/release/deps/paper_shapes-ee517545fd1005ef: tests/paper_shapes.rs

tests/paper_shapes.rs:
