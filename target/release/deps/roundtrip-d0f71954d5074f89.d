/root/repo/target/release/deps/roundtrip-d0f71954d5074f89.d: crates/conf/tests/roundtrip.rs

/root/repo/target/release/deps/roundtrip-d0f71954d5074f89: crates/conf/tests/roundtrip.rs

crates/conf/tests/roundtrip.rs:
