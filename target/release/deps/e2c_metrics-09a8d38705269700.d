/root/repo/target/release/deps/e2c_metrics-09a8d38705269700.d: crates/metrics/src/lib.rs crates/metrics/src/histogram.rs crates/metrics/src/online.rs crates/metrics/src/registry.rs crates/metrics/src/series.rs crates/metrics/src/summary.rs crates/metrics/src/table.rs

/root/repo/target/release/deps/e2c_metrics-09a8d38705269700: crates/metrics/src/lib.rs crates/metrics/src/histogram.rs crates/metrics/src/online.rs crates/metrics/src/registry.rs crates/metrics/src/series.rs crates/metrics/src/summary.rs crates/metrics/src/table.rs

crates/metrics/src/lib.rs:
crates/metrics/src/histogram.rs:
crates/metrics/src/online.rs:
crates/metrics/src/registry.rs:
crates/metrics/src/series.rs:
crates/metrics/src/summary.rs:
crates/metrics/src/table.rs:
