/root/repo/target/release/deps/calibrate-f8d9d6c4eaf8cd24.d: crates/bench/src/bin/calibrate.rs

/root/repo/target/release/deps/calibrate-f8d9d6c4eaf8cd24: crates/bench/src/bin/calibrate.rs

crates/bench/src/bin/calibrate.rs:
