/root/repo/target/release/deps/fig9_extract_oat-f75774b4b39984e6.d: crates/bench/src/bin/fig9_extract_oat.rs

/root/repo/target/release/deps/fig9_extract_oat-f75774b4b39984e6: crates/bench/src/bin/fig9_extract_oat.rs

crates/bench/src/bin/fig9_extract_oat.rs:
