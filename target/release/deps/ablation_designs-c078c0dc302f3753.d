/root/repo/target/release/deps/ablation_designs-c078c0dc302f3753.d: crates/bench/src/bin/ablation_designs.rs

/root/repo/target/release/deps/ablation_designs-c078c0dc302f3753: crates/bench/src/bin/ablation_designs.rs

crates/bench/src/bin/ablation_designs.rs:
