/root/repo/target/release/deps/e2c_core-ac9dbaf687e083b6.d: crates/core/src/lib.rs crates/core/src/archive.rs crates/core/src/experiment.rs crates/core/src/managers.rs crates/core/src/optimization.rs crates/core/src/service.rs crates/core/src/user_api.rs

/root/repo/target/release/deps/libe2c_core-ac9dbaf687e083b6.rlib: crates/core/src/lib.rs crates/core/src/archive.rs crates/core/src/experiment.rs crates/core/src/managers.rs crates/core/src/optimization.rs crates/core/src/service.rs crates/core/src/user_api.rs

/root/repo/target/release/deps/libe2c_core-ac9dbaf687e083b6.rmeta: crates/core/src/lib.rs crates/core/src/archive.rs crates/core/src/experiment.rs crates/core/src/managers.rs crates/core/src/optimization.rs crates/core/src/service.rs crates/core/src/user_api.rs

crates/core/src/lib.rs:
crates/core/src/archive.rs:
crates/core/src/experiment.rs:
crates/core/src/managers.rs:
crates/core/src/optimization.rs:
crates/core/src/service.rs:
crates/core/src/user_api.rs:
