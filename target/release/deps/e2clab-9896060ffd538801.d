/root/repo/target/release/deps/e2clab-9896060ffd538801.d: src/lib.rs

/root/repo/target/release/deps/e2clab-9896060ffd538801: src/lib.rs

src/lib.rs:
