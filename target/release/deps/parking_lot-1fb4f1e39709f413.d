/root/repo/target/release/deps/parking_lot-1fb4f1e39709f413.d: vendor/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-1fb4f1e39709f413.rlib: vendor/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-1fb4f1e39709f413.rmeta: vendor/parking_lot/src/lib.rs

vendor/parking_lot/src/lib.rs:
