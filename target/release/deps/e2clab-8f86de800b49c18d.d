/root/repo/target/release/deps/e2clab-8f86de800b49c18d.d: crates/core/src/bin/e2clab.rs

/root/repo/target/release/deps/e2clab-8f86de800b49c18d: crates/core/src/bin/e2clab.rs

crates/core/src/bin/e2clab.rs:
