/root/repo/target/release/deps/e2c_workload-4180b9575c3aa1fc.d: crates/workload/src/lib.rs crates/workload/src/arrivals.rs crates/workload/src/diurnal.rs crates/workload/src/images.rs crates/workload/src/seasonal.rs

/root/repo/target/release/deps/e2c_workload-4180b9575c3aa1fc: crates/workload/src/lib.rs crates/workload/src/arrivals.rs crates/workload/src/diurnal.rs crates/workload/src/images.rs crates/workload/src/seasonal.rs

crates/workload/src/lib.rs:
crates/workload/src/arrivals.rs:
crates/workload/src/diurnal.rs:
crates/workload/src/images.rs:
crates/workload/src/seasonal.rs:
