/root/repo/target/release/deps/detlint-778ff29ff6067a97.d: crates/detlint/src/lib.rs crates/detlint/src/config.rs crates/detlint/src/rules.rs crates/detlint/src/scanner.rs crates/detlint/src/walk.rs

/root/repo/target/release/deps/libdetlint-778ff29ff6067a97.rlib: crates/detlint/src/lib.rs crates/detlint/src/config.rs crates/detlint/src/rules.rs crates/detlint/src/scanner.rs crates/detlint/src/walk.rs

/root/repo/target/release/deps/libdetlint-778ff29ff6067a97.rmeta: crates/detlint/src/lib.rs crates/detlint/src/config.rs crates/detlint/src/rules.rs crates/detlint/src/scanner.rs crates/detlint/src/walk.rs

crates/detlint/src/lib.rs:
crates/detlint/src/config.rs:
crates/detlint/src/rules.rs:
crates/detlint/src/scanner.rs:
crates/detlint/src/walk.rs:
