/root/repo/target/release/deps/plantnet-07f168611101a95e.d: crates/plantnet/src/lib.rs crates/plantnet/src/config.rs crates/plantnet/src/model.rs crates/plantnet/src/monitor.rs crates/plantnet/src/pipeline.rs crates/plantnet/src/rt.rs crates/plantnet/src/sim.rs

/root/repo/target/release/deps/plantnet-07f168611101a95e: crates/plantnet/src/lib.rs crates/plantnet/src/config.rs crates/plantnet/src/model.rs crates/plantnet/src/monitor.rs crates/plantnet/src/pipeline.rs crates/plantnet/src/rt.rs crates/plantnet/src/sim.rs

crates/plantnet/src/lib.rs:
crates/plantnet/src/config.rs:
crates/plantnet/src/model.rs:
crates/plantnet/src/monitor.rs:
crates/plantnet/src/pipeline.rs:
crates/plantnet/src/rt.rs:
crates/plantnet/src/sim.rs:
