/root/repo/target/release/deps/e2c_workload-d223fd5b94409d63.d: crates/workload/src/lib.rs crates/workload/src/arrivals.rs crates/workload/src/diurnal.rs crates/workload/src/images.rs crates/workload/src/seasonal.rs

/root/repo/target/release/deps/libe2c_workload-d223fd5b94409d63.rlib: crates/workload/src/lib.rs crates/workload/src/arrivals.rs crates/workload/src/diurnal.rs crates/workload/src/images.rs crates/workload/src/seasonal.rs

/root/repo/target/release/deps/libe2c_workload-d223fd5b94409d63.rmeta: crates/workload/src/lib.rs crates/workload/src/arrivals.rs crates/workload/src/diurnal.rs crates/workload/src/images.rs crates/workload/src/seasonal.rs

crates/workload/src/lib.rs:
crates/workload/src/arrivals.rs:
crates/workload/src/diurnal.rs:
crates/workload/src/images.rs:
crates/workload/src/seasonal.rs:
