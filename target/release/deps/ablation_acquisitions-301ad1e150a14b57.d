/root/repo/target/release/deps/ablation_acquisitions-301ad1e150a14b57.d: crates/bench/src/bin/ablation_acquisitions.rs

/root/repo/target/release/deps/ablation_acquisitions-301ad1e150a14b57: crates/bench/src/bin/ablation_acquisitions.rs

crates/bench/src/bin/ablation_acquisitions.rs:
