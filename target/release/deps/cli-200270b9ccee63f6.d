/root/repo/target/release/deps/cli-200270b9ccee63f6.d: crates/core/tests/cli.rs

/root/repo/target/release/deps/cli-200270b9ccee63f6: crates/core/tests/cli.rs

crates/core/tests/cli.rs:

# env-dep:CARGO_BIN_EXE_e2clab=/root/repo/target/release/e2clab
