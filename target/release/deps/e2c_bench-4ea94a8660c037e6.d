/root/repo/target/release/deps/e2c_bench-4ea94a8660c037e6.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libe2c_bench-4ea94a8660c037e6.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libe2c_bench-4ea94a8660c037e6.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
