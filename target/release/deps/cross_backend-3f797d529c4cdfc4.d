/root/repo/target/release/deps/cross_backend-3f797d529c4cdfc4.d: tests/cross_backend.rs

/root/repo/target/release/deps/cross_backend-3f797d529c4cdfc4: tests/cross_backend.rs

tests/cross_backend.rs:
