/root/repo/target/release/deps/end_to_end_optimization-b272498bfd38576e.d: tests/end_to_end_optimization.rs

/root/repo/target/release/deps/end_to_end_optimization-b272498bfd38576e: tests/end_to_end_optimization.rs

tests/end_to_end_optimization.rs:
