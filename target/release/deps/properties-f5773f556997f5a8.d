/root/repo/target/release/deps/properties-f5773f556997f5a8.d: crates/des/tests/properties.rs

/root/repo/target/release/deps/properties-f5773f556997f5a8: crates/des/tests/properties.rs

crates/des/tests/properties.rs:
