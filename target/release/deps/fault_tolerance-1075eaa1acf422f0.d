/root/repo/target/release/deps/fault_tolerance-1075eaa1acf422f0.d: tests/fault_tolerance.rs

/root/repo/target/release/deps/fault_tolerance-1075eaa1acf422f0: tests/fault_tolerance.rs

tests/fault_tolerance.rs:
