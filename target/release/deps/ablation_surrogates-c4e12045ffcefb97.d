/root/repo/target/release/deps/ablation_surrogates-c4e12045ffcefb97.d: crates/bench/src/bin/ablation_surrogates.rs

/root/repo/target/release/deps/ablation_surrogates-c4e12045ffcefb97: crates/bench/src/bin/ablation_surrogates.rs

crates/bench/src/bin/ablation_surrogates.rs:
