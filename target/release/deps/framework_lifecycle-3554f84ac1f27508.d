/root/repo/target/release/deps/framework_lifecycle-3554f84ac1f27508.d: tests/framework_lifecycle.rs

/root/repo/target/release/deps/framework_lifecycle-3554f84ac1f27508: tests/framework_lifecycle.rs

tests/framework_lifecycle.rs:
