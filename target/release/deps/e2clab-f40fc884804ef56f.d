/root/repo/target/release/deps/e2clab-f40fc884804ef56f.d: crates/core/src/bin/e2clab.rs

/root/repo/target/release/deps/e2clab-f40fc884804ef56f: crates/core/src/bin/e2clab.rs

crates/core/src/bin/e2clab.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/core
