/root/repo/target/release/deps/table4_fig11_final-a32ea18a9f8ef29b.d: crates/bench/src/bin/table4_fig11_final.rs

/root/repo/target/release/deps/table4_fig11_final-a32ea18a9f8ef29b: crates/bench/src/bin/table4_fig11_final.rs

crates/bench/src/bin/table4_fig11_final.rs:
