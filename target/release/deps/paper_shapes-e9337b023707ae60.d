/root/repo/target/release/deps/paper_shapes-e9337b023707ae60.d: tests/paper_shapes.rs

/root/repo/target/release/deps/paper_shapes-e9337b023707ae60: tests/paper_shapes.rs

tests/paper_shapes.rs:
