/root/repo/target/release/deps/e2clab-2dac7fcc1735db9b.d: crates/core/src/bin/e2clab.rs

/root/repo/target/release/deps/e2clab-2dac7fcc1735db9b: crates/core/src/bin/e2clab.rs

crates/core/src/bin/e2clab.rs:
