/root/repo/target/release/deps/ablation_parallel-21fa074cf46f3ab7.d: crates/bench/src/bin/ablation_parallel.rs

/root/repo/target/release/deps/ablation_parallel-21fa074cf46f3ab7: crates/bench/src/bin/ablation_parallel.rs

crates/bench/src/bin/ablation_parallel.rs:
