/root/repo/target/release/deps/fault_tolerance-da758deada856a38.d: tests/fault_tolerance.rs

/root/repo/target/release/deps/fault_tolerance-da758deada856a38: tests/fault_tolerance.rs

tests/fault_tolerance.rs:
