/root/repo/target/release/deps/e2c_core-fb78cb50c81e6305.d: crates/core/src/lib.rs crates/core/src/archive.rs crates/core/src/experiment.rs crates/core/src/managers.rs crates/core/src/optimization.rs crates/core/src/service.rs crates/core/src/user_api.rs

/root/repo/target/release/deps/libe2c_core-fb78cb50c81e6305.rlib: crates/core/src/lib.rs crates/core/src/archive.rs crates/core/src/experiment.rs crates/core/src/managers.rs crates/core/src/optimization.rs crates/core/src/service.rs crates/core/src/user_api.rs

/root/repo/target/release/deps/libe2c_core-fb78cb50c81e6305.rmeta: crates/core/src/lib.rs crates/core/src/archive.rs crates/core/src/experiment.rs crates/core/src/managers.rs crates/core/src/optimization.rs crates/core/src/service.rs crates/core/src/user_api.rs

crates/core/src/lib.rs:
crates/core/src/archive.rs:
crates/core/src/experiment.rs:
crates/core/src/managers.rs:
crates/core/src/optimization.rs:
crates/core/src/service.rs:
crates/core/src/user_api.rs:
