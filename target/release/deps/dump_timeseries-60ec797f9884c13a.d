/root/repo/target/release/deps/dump_timeseries-60ec797f9884c13a.d: crates/bench/src/bin/dump_timeseries.rs

/root/repo/target/release/deps/dump_timeseries-60ec797f9884c13a: crates/bench/src/bin/dump_timeseries.rs

crates/bench/src/bin/dump_timeseries.rs:
