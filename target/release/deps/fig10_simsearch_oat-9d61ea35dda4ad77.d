/root/repo/target/release/deps/fig10_simsearch_oat-9d61ea35dda4ad77.d: crates/bench/src/bin/fig10_simsearch_oat.rs

/root/repo/target/release/deps/fig10_simsearch_oat-9d61ea35dda4ad77: crates/bench/src/bin/fig10_simsearch_oat.rs

crates/bench/src/bin/fig10_simsearch_oat.rs:
