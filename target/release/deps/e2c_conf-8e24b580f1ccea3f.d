/root/repo/target/release/deps/e2c_conf-8e24b580f1ccea3f.d: crates/conf/src/lib.rs crates/conf/src/parser.rs crates/conf/src/schema.rs crates/conf/src/value.rs

/root/repo/target/release/deps/e2c_conf-8e24b580f1ccea3f: crates/conf/src/lib.rs crates/conf/src/parser.rs crates/conf/src/schema.rs crates/conf/src/value.rs

crates/conf/src/lib.rs:
crates/conf/src/parser.rs:
crates/conf/src/schema.rs:
crates/conf/src/value.rs:
