/root/repo/target/release/deps/fig3_response_curve-41e7d55a93e22154.d: crates/bench/src/bin/fig3_response_curve.rs

/root/repo/target/release/deps/fig3_response_curve-41e7d55a93e22154: crates/bench/src/bin/fig3_response_curve.rs

crates/bench/src/bin/fig3_response_curve.rs:
