/root/repo/target/release/deps/e2clab-3aa40c766d064dd0.d: src/lib.rs

/root/repo/target/release/deps/libe2clab-3aa40c766d064dd0.rlib: src/lib.rs

/root/repo/target/release/deps/libe2clab-3aa40c766d064dd0.rmeta: src/lib.rs

src/lib.rs:
