/root/repo/target/release/deps/e2c_core-a5dd8c9db4b93cda.d: crates/core/src/lib.rs crates/core/src/archive.rs crates/core/src/experiment.rs crates/core/src/managers.rs crates/core/src/optimization.rs crates/core/src/service.rs crates/core/src/user_api.rs

/root/repo/target/release/deps/e2c_core-a5dd8c9db4b93cda: crates/core/src/lib.rs crates/core/src/archive.rs crates/core/src/experiment.rs crates/core/src/managers.rs crates/core/src/optimization.rs crates/core/src/service.rs crates/core/src/user_api.rs

crates/core/src/lib.rs:
crates/core/src/archive.rs:
crates/core/src/experiment.rs:
crates/core/src/managers.rs:
crates/core/src/optimization.rs:
crates/core/src/service.rs:
crates/core/src/user_api.rs:
