/root/repo/target/release/deps/properties-1fe6876bd194eab3.d: crates/optim/tests/properties.rs

/root/repo/target/release/deps/properties-1fe6876bd194eab3: crates/optim/tests/properties.rs

crates/optim/tests/properties.rs:
