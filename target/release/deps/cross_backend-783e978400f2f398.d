/root/repo/target/release/deps/cross_backend-783e978400f2f398.d: tests/cross_backend.rs

/root/repo/target/release/deps/cross_backend-783e978400f2f398: tests/cross_backend.rs

tests/cross_backend.rs:
