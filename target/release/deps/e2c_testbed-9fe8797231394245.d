/root/repo/target/release/deps/e2c_testbed-9fe8797231394245.d: crates/testbed/src/lib.rs crates/testbed/src/deployment.rs crates/testbed/src/grid5000.rs crates/testbed/src/hardware.rs crates/testbed/src/reservation.rs

/root/repo/target/release/deps/libe2c_testbed-9fe8797231394245.rlib: crates/testbed/src/lib.rs crates/testbed/src/deployment.rs crates/testbed/src/grid5000.rs crates/testbed/src/hardware.rs crates/testbed/src/reservation.rs

/root/repo/target/release/deps/libe2c_testbed-9fe8797231394245.rmeta: crates/testbed/src/lib.rs crates/testbed/src/deployment.rs crates/testbed/src/grid5000.rs crates/testbed/src/hardware.rs crates/testbed/src/reservation.rs

crates/testbed/src/lib.rs:
crates/testbed/src/deployment.rs:
crates/testbed/src/grid5000.rs:
crates/testbed/src/hardware.rs:
crates/testbed/src/reservation.rs:
