/root/repo/target/release/deps/ext_capacity-239fe6eb90a8d5a2.d: crates/bench/src/bin/ext_capacity.rs

/root/repo/target/release/deps/ext_capacity-239fe6eb90a8d5a2: crates/bench/src/bin/ext_capacity.rs

crates/bench/src/bin/ext_capacity.rs:
