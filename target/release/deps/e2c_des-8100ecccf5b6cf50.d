/root/repo/target/release/deps/e2c_des-8100ecccf5b6cf50.d: crates/des/src/lib.rs crates/des/src/dist.rs crates/des/src/queue.rs crates/des/src/resources.rs crates/des/src/sim.rs crates/des/src/time.rs

/root/repo/target/release/deps/libe2c_des-8100ecccf5b6cf50.rlib: crates/des/src/lib.rs crates/des/src/dist.rs crates/des/src/queue.rs crates/des/src/resources.rs crates/des/src/sim.rs crates/des/src/time.rs

/root/repo/target/release/deps/libe2c_des-8100ecccf5b6cf50.rmeta: crates/des/src/lib.rs crates/des/src/dist.rs crates/des/src/queue.rs crates/des/src/resources.rs crates/des/src/sim.rs crates/des/src/time.rs

crates/des/src/lib.rs:
crates/des/src/dist.rs:
crates/des/src/queue.rs:
crates/des/src/resources.rs:
crates/des/src/sim.rs:
crates/des/src/time.rs:
