/root/repo/target/release/deps/e2c_conf-fd3af1a4c8f37c23.d: crates/conf/src/lib.rs crates/conf/src/parser.rs crates/conf/src/schema.rs crates/conf/src/value.rs

/root/repo/target/release/deps/libe2c_conf-fd3af1a4c8f37c23.rlib: crates/conf/src/lib.rs crates/conf/src/parser.rs crates/conf/src/schema.rs crates/conf/src/value.rs

/root/repo/target/release/deps/libe2c_conf-fd3af1a4c8f37c23.rmeta: crates/conf/src/lib.rs crates/conf/src/parser.rs crates/conf/src/schema.rs crates/conf/src/value.rs

crates/conf/src/lib.rs:
crates/conf/src/parser.rs:
crates/conf/src/schema.rs:
crates/conf/src/value.rs:
