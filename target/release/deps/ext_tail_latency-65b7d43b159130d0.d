/root/repo/target/release/deps/ext_tail_latency-65b7d43b159130d0.d: crates/bench/src/bin/ext_tail_latency.rs

/root/repo/target/release/deps/ext_tail_latency-65b7d43b159130d0: crates/bench/src/bin/ext_tail_latency.rs

crates/bench/src/bin/ext_tail_latency.rs:
