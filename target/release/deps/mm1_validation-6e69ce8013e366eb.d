/root/repo/target/release/deps/mm1_validation-6e69ce8013e366eb.d: crates/des/tests/mm1_validation.rs

/root/repo/target/release/deps/mm1_validation-6e69ce8013e366eb: crates/des/tests/mm1_validation.rs

crates/des/tests/mm1_validation.rs:
