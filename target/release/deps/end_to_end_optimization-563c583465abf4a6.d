/root/repo/target/release/deps/end_to_end_optimization-563c583465abf4a6.d: tests/end_to_end_optimization.rs

/root/repo/target/release/deps/end_to_end_optimization-563c583465abf4a6: tests/end_to_end_optimization.rs

tests/end_to_end_optimization.rs:
