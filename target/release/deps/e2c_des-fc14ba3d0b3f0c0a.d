/root/repo/target/release/deps/e2c_des-fc14ba3d0b3f0c0a.d: crates/des/src/lib.rs crates/des/src/dist.rs crates/des/src/queue.rs crates/des/src/resources.rs crates/des/src/sim.rs crates/des/src/time.rs

/root/repo/target/release/deps/e2c_des-fc14ba3d0b3f0c0a: crates/des/src/lib.rs crates/des/src/dist.rs crates/des/src/queue.rs crates/des/src/resources.rs crates/des/src/sim.rs crates/des/src/time.rs

crates/des/src/lib.rs:
crates/des/src/dist.rs:
crates/des/src/queue.rs:
crates/des/src/resources.rs:
crates/des/src/sim.rs:
crates/des/src/time.rs:
