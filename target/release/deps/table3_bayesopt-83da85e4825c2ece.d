/root/repo/target/release/deps/table3_bayesopt-83da85e4825c2ece.d: crates/bench/src/bin/table3_bayesopt.rs

/root/repo/target/release/deps/table3_bayesopt-83da85e4825c2ece: crates/bench/src/bin/table3_bayesopt.rs

crates/bench/src/bin/table3_bayesopt.rs:
