/root/repo/target/release/deps/framework_lifecycle-f5a4fa968b93a48e.d: tests/framework_lifecycle.rs

/root/repo/target/release/deps/framework_lifecycle-f5a4fa968b93a48e: tests/framework_lifecycle.rs

tests/framework_lifecycle.rs:
