/root/repo/target/release/deps/proptest-f41e61c8354bfcb6.d: vendor/proptest/src/lib.rs vendor/proptest/src/arbitrary.rs vendor/proptest/src/collection.rs vendor/proptest/src/strategy.rs vendor/proptest/src/string.rs vendor/proptest/src/test_runner.rs

/root/repo/target/release/deps/libproptest-f41e61c8354bfcb6.rlib: vendor/proptest/src/lib.rs vendor/proptest/src/arbitrary.rs vendor/proptest/src/collection.rs vendor/proptest/src/strategy.rs vendor/proptest/src/string.rs vendor/proptest/src/test_runner.rs

/root/repo/target/release/deps/libproptest-f41e61c8354bfcb6.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/arbitrary.rs vendor/proptest/src/collection.rs vendor/proptest/src/strategy.rs vendor/proptest/src/string.rs vendor/proptest/src/test_runner.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/arbitrary.rs:
vendor/proptest/src/collection.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/string.rs:
vendor/proptest/src/test_runner.rs:
