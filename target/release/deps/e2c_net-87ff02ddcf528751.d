/root/repo/target/release/deps/e2c_net-87ff02ddcf528751.d: crates/net/src/lib.rs crates/net/src/link.rs crates/net/src/shaping.rs crates/net/src/topology.rs

/root/repo/target/release/deps/e2c_net-87ff02ddcf528751: crates/net/src/lib.rs crates/net/src/link.rs crates/net/src/shaping.rs crates/net/src/topology.rs

crates/net/src/lib.rs:
crates/net/src/link.rs:
crates/net/src/shaping.rs:
crates/net/src/topology.rs:
