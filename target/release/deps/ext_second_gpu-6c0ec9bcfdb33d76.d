/root/repo/target/release/deps/ext_second_gpu-6c0ec9bcfdb33d76.d: crates/bench/src/bin/ext_second_gpu.rs

/root/repo/target/release/deps/ext_second_gpu-6c0ec9bcfdb33d76: crates/bench/src/bin/ext_second_gpu.rs

crates/bench/src/bin/ext_second_gpu.rs:
