/root/repo/target/release/deps/e2clab-54558f8dd066243a.d: src/lib.rs

/root/repo/target/release/deps/e2clab-54558f8dd066243a: src/lib.rs

src/lib.rs:
