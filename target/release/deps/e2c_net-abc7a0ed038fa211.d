/root/repo/target/release/deps/e2c_net-abc7a0ed038fa211.d: crates/net/src/lib.rs crates/net/src/link.rs crates/net/src/shaping.rs crates/net/src/topology.rs

/root/repo/target/release/deps/libe2c_net-abc7a0ed038fa211.rlib: crates/net/src/lib.rs crates/net/src/link.rs crates/net/src/shaping.rs crates/net/src/topology.rs

/root/repo/target/release/deps/libe2c_net-abc7a0ed038fa211.rmeta: crates/net/src/lib.rs crates/net/src/link.rs crates/net/src/shaping.rs crates/net/src/topology.rs

crates/net/src/lib.rs:
crates/net/src/link.rs:
crates/net/src/shaping.rs:
crates/net/src/topology.rs:
