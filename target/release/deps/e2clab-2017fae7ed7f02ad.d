/root/repo/target/release/deps/e2clab-2017fae7ed7f02ad.d: src/lib.rs

/root/repo/target/release/deps/libe2clab-2017fae7ed7f02ad.rlib: src/lib.rs

/root/repo/target/release/deps/libe2clab-2017fae7ed7f02ad.rmeta: src/lib.rs

src/lib.rs:
