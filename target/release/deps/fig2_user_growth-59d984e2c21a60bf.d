/root/repo/target/release/deps/fig2_user_growth-59d984e2c21a60bf.d: crates/bench/src/bin/fig2_user_growth.rs

/root/repo/target/release/deps/fig2_user_growth-59d984e2c21a60bf: crates/bench/src/bin/fig2_user_growth.rs

crates/bench/src/bin/fig2_user_growth.rs:
