/root/repo/target/release/deps/plantnet-393b82552fad7933.d: crates/plantnet/src/lib.rs crates/plantnet/src/config.rs crates/plantnet/src/model.rs crates/plantnet/src/monitor.rs crates/plantnet/src/pipeline.rs crates/plantnet/src/rt.rs crates/plantnet/src/sim.rs

/root/repo/target/release/deps/libplantnet-393b82552fad7933.rlib: crates/plantnet/src/lib.rs crates/plantnet/src/config.rs crates/plantnet/src/model.rs crates/plantnet/src/monitor.rs crates/plantnet/src/pipeline.rs crates/plantnet/src/rt.rs crates/plantnet/src/sim.rs

/root/repo/target/release/deps/libplantnet-393b82552fad7933.rmeta: crates/plantnet/src/lib.rs crates/plantnet/src/config.rs crates/plantnet/src/model.rs crates/plantnet/src/monitor.rs crates/plantnet/src/pipeline.rs crates/plantnet/src/rt.rs crates/plantnet/src/sim.rs

crates/plantnet/src/lib.rs:
crates/plantnet/src/config.rs:
crates/plantnet/src/model.rs:
crates/plantnet/src/monitor.rs:
crates/plantnet/src/pipeline.rs:
crates/plantnet/src/rt.rs:
crates/plantnet/src/sim.rs:
