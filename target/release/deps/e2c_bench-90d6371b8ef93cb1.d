/root/repo/target/release/deps/e2c_bench-90d6371b8ef93cb1.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/e2c_bench-90d6371b8ef93cb1: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
