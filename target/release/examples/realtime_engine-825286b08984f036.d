/root/repo/target/release/examples/realtime_engine-825286b08984f036.d: examples/realtime_engine.rs

/root/repo/target/release/examples/realtime_engine-825286b08984f036: examples/realtime_engine.rs

examples/realtime_engine.rs:
