/root/repo/target/release/examples/plantnet_tuning-4ba904545bf916d1.d: examples/plantnet_tuning.rs

/root/repo/target/release/examples/plantnet_tuning-4ba904545bf916d1: examples/plantnet_tuning.rs

examples/plantnet_tuning.rs:
