/root/repo/target/release/examples/realtime_engine-6b93c047d0485b55.d: examples/realtime_engine.rs

/root/repo/target/release/examples/realtime_engine-6b93c047d0485b55: examples/realtime_engine.rs

examples/realtime_engine.rs:
