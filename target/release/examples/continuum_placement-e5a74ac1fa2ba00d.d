/root/repo/target/release/examples/continuum_placement-e5a74ac1fa2ba00d.d: examples/continuum_placement.rs

/root/repo/target/release/examples/continuum_placement-e5a74ac1fa2ba00d: examples/continuum_placement.rs

examples/continuum_placement.rs:
