/root/repo/target/release/examples/continuum_placement-4bbc451a6fe0fbd0.d: examples/continuum_placement.rs

/root/repo/target/release/examples/continuum_placement-4bbc451a6fe0fbd0: examples/continuum_placement.rs

examples/continuum_placement.rs:
