/root/repo/target/release/examples/pareto_placement-062529bbc8bf264d.d: examples/pareto_placement.rs

/root/repo/target/release/examples/pareto_placement-062529bbc8bf264d: examples/pareto_placement.rs

examples/pareto_placement.rs:
