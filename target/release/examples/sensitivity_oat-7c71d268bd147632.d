/root/repo/target/release/examples/sensitivity_oat-7c71d268bd147632.d: examples/sensitivity_oat.rs

/root/repo/target/release/examples/sensitivity_oat-7c71d268bd147632: examples/sensitivity_oat.rs

examples/sensitivity_oat.rs:
