/root/repo/target/release/examples/quickstart-15dc4d03d37a40e4.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-15dc4d03d37a40e4: examples/quickstart.rs

examples/quickstart.rs:
