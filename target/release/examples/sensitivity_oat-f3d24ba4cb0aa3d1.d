/root/repo/target/release/examples/sensitivity_oat-f3d24ba4cb0aa3d1.d: examples/sensitivity_oat.rs

/root/repo/target/release/examples/sensitivity_oat-f3d24ba4cb0aa3d1: examples/sensitivity_oat.rs

examples/sensitivity_oat.rs:
