/root/repo/target/release/examples/pareto_placement-8f72b6bfbecc14ae.d: examples/pareto_placement.rs

/root/repo/target/release/examples/pareto_placement-8f72b6bfbecc14ae: examples/pareto_placement.rs

examples/pareto_placement.rs:
