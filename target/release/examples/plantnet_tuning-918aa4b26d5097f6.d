/root/repo/target/release/examples/plantnet_tuning-918aa4b26d5097f6.d: examples/plantnet_tuning.rs

/root/repo/target/release/examples/plantnet_tuning-918aa4b26d5097f6: examples/plantnet_tuning.rs

examples/plantnet_tuning.rs:
