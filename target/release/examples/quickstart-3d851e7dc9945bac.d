/root/repo/target/release/examples/quickstart-3d851e7dc9945bac.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-3d851e7dc9945bac: examples/quickstart.rs

examples/quickstart.rs:
