//! Cross-backend validation: the discrete-event simulator and the
//! real-thread engine implement the same pipeline; they must agree on the
//! *direction* of configuration effects (absolute numbers differ — the
//! real backend pays OS scheduling overheads).

use e2clab::des::SimTime;
use e2clab::plantnet::rt::RtEngine;
use e2clab::plantnet::sim::{Experiment, ExperimentSpec};
use e2clab::plantnet::PoolConfig;

fn des_response(cfg: PoolConfig, clients: usize) -> f64 {
    let mut spec = ExperimentSpec::quick(cfg, clients);
    spec.duration = SimTime::from_secs(60);
    spec.warmup = SimTime::from_secs(10);
    Experiment::run(spec, 3).response.mean
}

fn rt_response(cfg: PoolConfig, clients: usize) -> f64 {
    // 500x time compression: a 0.8 s simsearch becomes 1.6 ms of sleep.
    RtEngine::new(cfg, 0.002).run(clients, 3, 3).response.mean
}

#[test]
fn both_backends_punish_tiny_admission_pools() {
    let small = PoolConfig {
        http: 4,
        ..PoolConfig::baseline()
    };
    let base = PoolConfig::baseline();
    let clients = 16;
    let des_ratio = des_response(small, clients) / des_response(base, clients);
    let rt_ratio = rt_response(small, clients) / rt_response(base, clients);
    assert!(des_ratio > 1.5, "DES must punish http=4: ratio {des_ratio}");
    assert!(rt_ratio > 1.5, "RT must punish http=4: ratio {rt_ratio}");
}

#[test]
fn both_backends_punish_starved_extract_pools() {
    let starved = PoolConfig {
        extract: 1,
        ..PoolConfig::baseline()
    };
    let base = PoolConfig::baseline();
    let clients = 16;
    assert!(des_response(starved, clients) > des_response(base, clients));
    assert!(rt_response(starved, clients) > rt_response(base, clients));
}

#[test]
fn rt_engine_response_has_sane_absolute_scale() {
    // A single uncontended client should take roughly the sum of service
    // means (~1.3 model seconds) in both backends.
    let des = des_response(PoolConfig::baseline(), 1);
    let rt = rt_response(PoolConfig::baseline(), 1);
    assert!(
        (0.8..2.5).contains(&des),
        "DES single-client response {des}"
    );
    assert!((0.8..3.5).contains(&rt), "RT single-client response {rt}");
}
