//! Integration tests for the `e2clab` CLI binary.

use std::path::PathBuf;
use std::process::Command;

const CONF: &str = r#"
name: cli-test
layers:
  - name: cloud
    services:
      - name: engine
        cluster: chifflot
        quantity: 1
  - name: edge
    services:
      - name: clients
        cluster: gros
        quantity: 2
network:
  - src: edge
    dst: cloud
    delay_ms: 5.0
    rate_mbps: 10000
optimization:
  metric: user_resp_time
  mode: min
  name: cli-test
  num_samples: 4
  max_concurrent: 2
  search:
    algo: random
  config:
    - name: http
      bounds: [20, 60]
    - name: download
      bounds: [20, 60]
    - name: simsearch
      bounds: [20, 60]
    - name: extract
      bounds: [3, 9]
"#;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_e2clab"))
}

fn write_conf(name: &str, text: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("e2clab-cli-{}-{name}", std::process::id()));
    std::fs::write(&path, text).expect("write temp conf");
    path
}

#[test]
fn validate_accepts_good_and_rejects_bad() {
    let good = write_conf("good.yaml", CONF);
    let out = bin().arg("validate").arg(&good).output().expect("spawn");
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("ok: experiment `cli-test`"), "{stdout}");

    let bad = write_conf("bad.yaml", "layers: []\n"); // missing name
    let out = bin().arg("validate").arg(&bad).output().expect("spawn");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("invalid"), "{stderr}");
    let _ = std::fs::remove_file(good);
    let _ = std::fs::remove_file(bad);
}

#[test]
fn deploy_prints_the_scenario() {
    let conf = write_conf("deploy.yaml", CONF);
    let out = bin().arg("deploy").arg(&conf).output().expect("spawn");
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("chifflot-1.lille"), "{stdout}");
    assert!(stdout.contains("net edge <-> cloud"), "{stdout}");
    let _ = std::fs::remove_file(conf);
}

#[test]
fn optimize_runs_and_reports() {
    let conf = write_conf("optimize.yaml", CONF);
    let archive = std::env::temp_dir().join(format!("e2clab-cli-arch-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&archive);
    let out = bin()
        .args([
            "optimize",
            "--repeat",
            "1",
            "--duration",
            "40",
            "--seed",
            "5",
            "--archive",
        ])
        .arg(&archive)
        .arg(&conf)
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("best user_resp_time"), "{stdout}");
    assert!(archive.join("evaluations.csv").is_file());

    // `report` re-prints the stored summary.
    let out = bin().arg("report").arg(&archive).output().expect("spawn");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("best configuration"));

    let _ = std::fs::remove_file(conf);
    let _ = std::fs::remove_dir_all(archive);
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = bin().arg("frobnicate").output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn unknown_search_algo_is_rejected_at_validation() {
    let bad = write_conf(
        "bad-algo.yaml",
        &CONF.replace("algo: random", "algo: sorcery"),
    );
    let out = bin().arg("validate").arg(&bad).output().expect("spawn");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("optimization.search.algo"), "{stderr}");
    assert!(stderr.contains("sorcery"), "{stderr}");
    let _ = std::fs::remove_file(bad);
}

#[test]
fn malformed_faults_spec_fails_with_usage() {
    let conf = write_conf("faults-bad.yaml", CONF);
    let out = bin()
        .args(["optimize", "--faults", "explode:everything"])
        .arg(&conf)
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--faults"), "{stderr}");
    let _ = std::fs::remove_file(conf);
}

#[test]
fn injected_fault_is_retried_and_recorded_in_the_archive() {
    // Give the config a retry budget, fail trial 1's first attempt from
    // the CLI knob, and check the archive shows the recovery.
    let text = CONF.replace(
        "  search:",
        "  fault_tolerance:\n    max_retries: 1\n    backoff_ms: 1\n  search:",
    );
    let conf = write_conf("faults.yaml", &text);
    let archive = std::env::temp_dir().join(format!("e2clab-cli-faults-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&archive);
    let out = bin()
        .args([
            "optimize",
            "--duration",
            "40",
            "--seed",
            "5",
            "--faults",
            "fail:1@0",
            "--archive",
        ])
        .arg(&archive)
        .arg(&conf)
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{out:?}");
    let csv = std::fs::read_to_string(archive.join("evaluations.csv")).unwrap();
    assert!(
        csv.starts_with("trial,status,attempts,"),
        "unexpected header: {csv}"
    );
    assert!(
        csv.contains("\n1,terminated,2,"),
        "trial 1 should succeed on its second attempt: {csv}"
    );
    let _ = std::fs::remove_file(conf);
    let _ = std::fs::remove_dir_all(archive);
}
