//! End-to-end crash/resume gate: kill `e2clab optimize --journal` at
//! every write-ahead-log append boundary (via the `--crash-at` chaos
//! knob), resume each kill with `--resume`, and byte-diff every
//! reproducibility artifact — `evaluations.csv`, `trials/trials.jsonl`,
//! `trace.jsonl`, `metrics.prom`, `cycles/*.prom` — against an
//! uninterrupted baseline run of the same seed.  This is the paper's
//! repeatability claim under process failure: a crashed optimization,
//! resumed, is indistinguishable from one that never crashed.
//!
//! The sweep runs per `max_concurrent` ∈ {1, 2, 4}: the commit sequencer
//! promises byte-identity at any concurrency, and each cell is compared
//! against its *own* uninterrupted baseline (the canonical commit order
//! depends on the worker-window size, so cells differ from each other by
//! design).  Scratch directories root at `E2C_GATE_DIR` when set so CI
//! can upload the differing artifacts on failure.

use std::path::{Path, PathBuf};
use std::process::Command;

const CONF: &str = r#"
name: crash-gate
optimization:
  metric: response_time
  mode: min
  name: crash-gate
  num_samples: 3
  max_concurrent: 1
  fault_tolerance:
    max_retries: 1
    backoff_ms: 1
    max_backoff_ms: 2
  search:
    algo: extra_trees
    n_initial_points: 2
    initial_point_generator: lhs
    acq_func: ei
  config:
    - name: http
      type: randint
      bounds: [20, 60]
    - name: download
      type: randint
      bounds: [20, 60]
    - name: simsearch
      type: randint
      bounds: [20, 60]
    - name: extract
      type: randint
      bounds: [2, 20]
"#;

/// Root for gate scratch directories: `E2C_GATE_DIR` when set (CI points
/// this at a workspace path and uploads it when the gate fails), the
/// system temp directory otherwise.
fn gate_root() -> PathBuf {
    std::env::var_os("E2C_GATE_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(std::env::temp_dir)
}

struct Fixture {
    root: PathBuf,
    conf: PathBuf,
    seed: u64,
}

impl Fixture {
    fn new(label: &str, max_concurrent: u32, seed: u64) -> Fixture {
        let root = gate_root().join(format!("e2clab-crash-gate-{label}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).unwrap();
        let conf = root.join("conf.yaml");
        std::fs::write(
            &conf,
            CONF.replace(
                "max_concurrent: 1",
                &format!("max_concurrent: {max_concurrent}"),
            ),
        )
        .unwrap();
        Fixture { root, conf, seed }
    }

    /// `e2clab optimize --duration 20 --seed <seed> --faults fail:1@0 ...`
    /// plus the given extra flags; archive/trace under `root/<name>`.
    fn optimize(&self, name: &str, extra: &[&str]) -> std::process::Output {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_e2clab"));
        cmd.arg("optimize")
            .args(["--duration", "20"])
            .args(["--seed", &self.seed.to_string()])
            .args(["--faults", "fail:1@0"])
            .args(["--archive"])
            .arg(self.root.join(name))
            .args(["--trace"])
            .arg(self.root.join(format!("{name}-trace")))
            .args(extra)
            .arg(&self.conf);
        cmd.output().expect("run e2clab optimize")
    }

    /// The artifacts whose bytes must survive any kill+resume.
    fn artifacts(&self, name: &str) -> Vec<(String, Vec<u8>)> {
        let trace = self.root.join(format!("{name}-trace"));
        let mut rels: Vec<(String, PathBuf)> = vec![
            (
                "evaluations.csv".into(),
                self.root.join(name).join("evaluations.csv"),
            ),
            (
                "trials/trials.jsonl".into(),
                self.root.join(name).join("trials").join("trials.jsonl"),
            ),
            ("trace.jsonl".into(), trace.join("trace.jsonl")),
            ("metrics.prom".into(), trace.join("metrics.prom")),
        ];
        let mut cycles: Vec<String> = std::fs::read_dir(trace.join("cycles"))
            .unwrap()
            .flatten()
            .filter_map(|e| e.file_name().into_string().ok())
            .collect();
        cycles.sort();
        rels.extend(
            cycles
                .into_iter()
                .map(|n| (format!("cycles/{n}"), trace.join("cycles").join(n))),
        );
        rels.into_iter()
            .map(|(label, path)| {
                let bytes = std::fs::read(&path)
                    .unwrap_or_else(|e| panic!("{name}: read {}: {e}", path.display()));
                (label, bytes)
            })
            .collect()
    }
}

fn assert_same_artifacts(want: &[(String, Vec<u8>)], got: &[(String, Vec<u8>)], ctx: &str) {
    let labels =
        |set: &[(String, Vec<u8>)]| -> Vec<String> { set.iter().map(|(l, _)| l.clone()).collect() };
    assert_eq!(labels(want), labels(got), "{ctx}: artifact sets differ");
    for ((label, a), (_, b)) in want.iter().zip(got) {
        assert!(
            a == b,
            "{ctx}: {label} differs ({} vs {} bytes) — resumed run is not byte-identical",
            a.len(),
            b.len()
        );
    }
}

fn wal_records(path: &Path) -> usize {
    e2c_journal::read_records(path)
        .unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
        .len()
}

/// One full matrix cell: uninterrupted baseline, full journaled run,
/// resume-after-complete, then kill at *every* append boundary and
/// resume — all artifact sets byte-compared against the cell's baseline.
fn kill_sweep_cell(workers: u32, seed: u64) {
    let fx = Fixture::new(&format!("sweep-w{workers}-s{seed}"), workers, seed);
    let ctx = format!("w{workers}/s{seed}");

    // Uninterrupted, unjournaled baseline for this cell.
    let out = fx.optimize("base", &[]);
    assert!(
        out.status.success(),
        "{ctx}: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let baseline = fx.artifacts("base");

    // Full journaled run: same bytes as the plain run, plus a journal.
    let jdir = fx.root.join("full-journal");
    let out = fx.optimize("full", &["--journal", jdir.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "{ctx}: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_same_artifacts(
        &baseline,
        &fx.artifacts("full"),
        &format!("{ctx}: journaled vs plain"),
    );
    let records = wal_records(&jdir.join("run.wal"));
    assert!(
        records > 5,
        "{ctx}: suspiciously small journal: {records} records"
    );

    // Resuming a completed journal re-executes nothing and rewrites the
    // same bytes.
    let out = fx.optimize("full", &["--resume", jdir.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "{ctx}: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_same_artifacts(
        &baseline,
        &fx.artifacts("full"),
        &format!("{ctx}: resume after complete"),
    );

    // The sweep: kill right after every journal append, resume, compare.
    for cut in 1..=records {
        let name = format!("cut{cut}");
        let jdir = fx.root.join(format!("{name}-journal"));
        let out = fx.optimize(
            &name,
            &[
                "--journal",
                jdir.to_str().unwrap(),
                "--crash-at",
                &cut.to_string(),
            ],
        );
        assert_eq!(
            out.status.code(),
            Some(e2c_tune::CRASH_EXIT_CODE),
            "{ctx}: cut {cut}: expected the crash exit code, got {:?}\n{}",
            out.status.code(),
            String::from_utf8_lossy(&out.stderr)
        );
        let out = fx.optimize(&name, &["--resume", jdir.to_str().unwrap()]);
        assert!(
            out.status.success(),
            "{ctx}: cut {cut}: resume failed\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert_same_artifacts(
            &baseline,
            &fx.artifacts(&name),
            &format!("{ctx}: cut {cut}"),
        );
    }

    std::fs::remove_dir_all(&fx.root).unwrap();
}

#[test]
fn kill_sweep_sequential() {
    kill_sweep_cell(1, 3);
}

#[test]
fn kill_sweep_two_workers() {
    kill_sweep_cell(2, 3);
}

#[test]
fn kill_sweep_four_workers() {
    kill_sweep_cell(4, 3);
}

/// The seed dimension of the matrix, kept lighter than the full sweep:
/// for each (seed, workers) cell, one mid-run kill + resume must match
/// the cell's own uninterrupted baseline.
#[test]
fn mid_run_kill_resumes_across_the_seed_concurrency_matrix() {
    for seed in [5u64, 9] {
        for workers in [2u32, 4] {
            let fx = Fixture::new(&format!("matrix-w{workers}-s{seed}"), workers, seed);
            let ctx = format!("w{workers}/s{seed}");
            let out = fx.optimize("base", &[]);
            assert!(
                out.status.success(),
                "{ctx}: {}",
                String::from_utf8_lossy(&out.stderr)
            );
            let baseline = fx.artifacts("base");
            let jdir = fx.root.join("journal");
            let j = jdir.to_str().unwrap().to_string();
            let out = fx.optimize("run", &["--journal", &j, "--crash-at", "6"]);
            assert_eq!(
                out.status.code(),
                Some(e2c_tune::CRASH_EXIT_CODE),
                "{ctx}: {:?}\n{}",
                out.status.code(),
                String::from_utf8_lossy(&out.stderr)
            );
            let out = fx.optimize("run", &["--resume", &j]);
            assert!(
                out.status.success(),
                "{ctx}: resume failed\n{}",
                String::from_utf8_lossy(&out.stderr)
            );
            assert_same_artifacts(&baseline, &fx.artifacts("run"), &ctx);
            std::fs::remove_dir_all(&fx.root).unwrap();
        }
    }
}

#[test]
fn a_crash_during_resume_is_itself_resumable() {
    // Two workers: the double-crash path goes through the deferred
    // commit sequencer, not just the sequential fast path.
    let fx = Fixture::new("double", 2, 3);
    let out = fx.optimize("base", &[]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let baseline = fx.artifacts("base");

    let jdir = fx.root.join("journal");
    let j = jdir.to_str().unwrap().to_string();
    let out = fx.optimize("run", &["--journal", &j, "--crash-at", "4"]);
    assert_eq!(out.status.code(), Some(86), "{:?}", out.status);
    let out = fx.optimize("run", &["--resume", &j, "--crash-at", "3"]);
    assert_eq!(out.status.code(), Some(86), "{:?}", out.status);
    let out = fx.optimize("run", &["--resume", &j]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_same_artifacts(&baseline, &fx.artifacts("run"), "double crash");
    std::fs::remove_dir_all(&fx.root).unwrap();
}

#[test]
fn resume_refuses_a_journal_from_a_different_run_and_flags_are_validated() {
    let fx = Fixture::new("refuse", 1, 3);
    let jdir = fx.root.join("journal");
    let j = jdir.to_str().unwrap().to_string();
    let out = fx.optimize("run", &["--journal", &j, "--crash-at", "2"]);
    assert_eq!(out.status.code(), Some(86), "{:?}", out.status);

    // Wrong seed: refused before any state is touched.
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_e2clab"));
    cmd.arg("optimize")
        .args(["--duration", "20", "--seed", "4", "--faults", "fail:1@0"])
        .args(["--archive"])
        .arg(fx.root.join("run"))
        .args(["--trace"])
        .arg(fx.root.join("run-trace"))
        .args(["--resume", &j])
        .arg(&fx.conf);
    let out = cmd.output().unwrap();
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("different configuration"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // A fresh --journal refuses to clobber an existing one.
    let out = fx.optimize("run", &["--journal", &j]);
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--resume"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Flag validation: --crash-at alone, --journal + --resume, and
    // --replay-check + --journal are usage errors.
    for extra in [
        &["--crash-at", "2"][..],
        &["--journal", "a", "--resume", "b"][..],
        &["--replay-check", "--journal", "a"][..],
    ] {
        let out = fx.optimize("run", extra);
        assert_eq!(out.status.code(), Some(2), "{extra:?}: {:?}", out.status);
    }

    // `max_concurrent` shapes the canonical commit order, so it is part
    // of the journal fingerprint: editing it between crash and resume is
    // refused, not silently diverged.
    std::fs::write(
        &fx.conf,
        CONF.replace("max_concurrent: 1", "max_concurrent: 2"),
    )
    .unwrap();
    let out = fx.optimize("run", &["--resume", &j]);
    assert!(!out.status.success(), "{:?}", out.status);
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("different configuration"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::remove_dir_all(&fx.root).unwrap();
}
