//! End-to-end integration: configuration file → Optimization Manager →
//! parallel trials over the simulated engine → Phase III archive.

use e2clab::conf::schema::ExperimentConf;
use e2clab::core::{archive, OptimizationManager};
use e2clab::des::SimTime;
use e2clab::plantnet::sim::{Experiment, ExperimentSpec};
use e2clab::plantnet::PoolConfig;

const CONF: &str = r#"
name: e2e
optimization:
  metric: user_resp_time
  mode: min
  name: e2e-tuning
  num_samples: 14
  max_concurrent: 4
  search:
    algo: extra_trees
    n_initial_points: 7
    initial_point_generator: lhs
    acq_func: gp_hedge
  config:
    - name: http
      type: randint
      bounds: [20, 60]
    - name: download
      type: randint
      bounds: [20, 60]
    - name: simsearch
      type: randint
      bounds: [20, 60]
    - name: extract
      type: randint
      bounds: [3, 9]
"#;

fn objective(point: &[f64], seed: u64) -> f64 {
    let cfg = PoolConfig::from_point(point);
    let mut spec = ExperimentSpec::quick(cfg, 80);
    spec.duration = SimTime::from_secs(60);
    spec.warmup = SimTime::from_secs(10);
    Experiment::run(spec, seed).response.mean
}

fn manager() -> OptimizationManager {
    let conf = ExperimentConf::from_value(&e2clab::conf::parse(CONF).unwrap())
        .unwrap()
        .optimization
        .unwrap();
    OptimizationManager::new(conf).with_seed(3)
}

#[test]
fn optimization_cycle_beats_a_bad_seeded_baseline() {
    let summary = manager()
        .run(|ctx| objective(&ctx.point, 100 + ctx.trial_id))
        .unwrap();
    assert_eq!(summary.analysis.trials().len(), 14);
    let best = summary.best_value.expect("successful trials");
    // A deliberately throttled configuration must lose to the optimum.
    let throttled = objective(&[25.0, 25.0, 25.0, 4.0], 999);
    assert!(
        best < throttled,
        "optimized {best} should beat throttled {throttled}"
    );
    // The report mentions the Phase I definition and the best point.
    let report = summary.render();
    assert!(report.contains("minimize user_resp_time"));
    assert!(report.contains("best user_resp_time"));
}

#[test]
fn archive_round_trips_through_the_filesystem() {
    let dir = std::env::temp_dir().join(format!("e2e-archive-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let summary = manager()
        .with_archive(dir.clone())
        .run(|ctx| objective(&ctx.point, 100 + ctx.trial_id))
        .unwrap();

    // Phase III files exist.
    for file in [
        "problem.yaml",
        "summary.txt",
        "evaluations.csv",
        "best.yaml",
    ] {
        assert!(dir.join(file).is_file(), "missing {file}");
    }
    // problem.yaml re-parses into the same schema.
    let text = std::fs::read_to_string(dir.join("problem.yaml")).unwrap();
    let doc = e2clab::conf::parse(&text).unwrap();
    assert_eq!(
        doc.get("metric").and_then(|v| v.as_str()),
        Some("user_resp_time")
    );
    // evaluations.csv loads and matches the in-memory analysis.
    let evals = archive::load_evaluations(&dir).unwrap();
    assert_eq!(evals.len(), summary.analysis.trials().len());
    let best_from_csv = evals
        .iter()
        .filter_map(|(_, _, v)| *v)
        .fold(f64::INFINITY, f64::min);
    assert!((best_from_csv - summary.best_value.unwrap()).abs() < 1e-9);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn same_seed_reproduces_the_whole_cycle() {
    // Reproducibility is the paper's core promise: identical seeds must
    // produce identical evaluation sequences and identical optima. Bit-
    // exact replay requires the sequential cycle (max_concurrent = 1);
    // under concurrency the suggestion stream depends on OS scheduling.
    let run = || {
        let conf = ExperimentConf::from_value(&e2clab::conf::parse(CONF).unwrap())
            .unwrap()
            .optimization
            .map(|mut o| {
                o.max_concurrent = 1;
                o
            })
            .unwrap();
        let summary = OptimizationManager::new(conf)
            .with_seed(3)
            .run(|ctx| objective(&ctx.point, 100 + ctx.trial_id))
            .unwrap();
        let mut evals: Vec<(Vec<f64>, Option<f64>)> = summary
            .analysis
            .trials()
            .iter()
            .map(|t| (t.config.clone(), t.value()))
            .collect();
        evals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        (evals, summary.best_point, summary.best_value)
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0, "evaluation sets differ");
    assert_eq!(a.1, b.1, "best points differ");
    assert_eq!(a.2, b.2, "best values differ");
}
