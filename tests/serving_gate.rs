//! End-to-end serving gate: the deterministic test matrix behind
//! `e2clab serve`. Each cell runs the million-user open-loop serving
//! mode (seasonal trace → per-epoch re-optimization under overload
//! semantics) and checks the reproducibility contract:
//!
//! * reruns at the same `(seed, scale)` produce byte-identical
//!   `serving.csv`, `trace.jsonl` and per-epoch archives;
//! * `--replay-check` agrees (the driver's own self-check);
//! * a run killed mid-epoch (`--crash-at`) or at an epoch boundary
//!   (`--crash-at-epoch`), then `--resume`d, converges on the same bytes
//!   as an uninterrupted journaled run;
//! * a saturating cell actually exercises the overload counters
//!   (rejections/sheds/SLO violations), and conservation
//!   `admitted + rejected + shed == offered` holds in every row.
//!
//! Scratch directories root at `E2C_GATE_DIR` when set so CI can upload
//! the differing artifacts on failure.

use std::path::PathBuf;
use std::process::Command;

/// Root for gate scratch directories: `E2C_GATE_DIR` when set (CI points
/// this at a workspace path and uploads it when the gate fails), the
/// system temp directory otherwise.
fn gate_root() -> PathBuf {
    std::env::var_os("E2C_GATE_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(std::env::temp_dir)
}

struct Fixture {
    root: PathBuf,
    seed: u64,
    scale: f64,
}

impl Fixture {
    fn new(label: &str, seed: u64, scale: f64) -> Fixture {
        let root = gate_root().join(format!(
            "e2clab-serving-gate-{label}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).unwrap();
        Fixture { root, seed, scale }
    }

    /// `e2clab serve` with the cell's seed/scale, a small 2-epoch trace
    /// (kept light — the determinism story is length-independent), and
    /// the given extra flags; artifacts under `root/<name>`.
    fn serve(&self, name: &str, extra: &[&str]) -> std::process::Output {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_e2clab"));
        cmd.arg("serve")
            .args(["--out"])
            .arg(self.root.join(name))
            .args(["--scale", &format!("{}", self.scale)])
            .args(["--epochs", "2"])
            .args(["--epoch-duration", "30"])
            .args(["--samples", "2"])
            .args(["--concurrent", "2"])
            .args(["--queue-bound", "32"])
            .args(["--seed", &self.seed.to_string()])
            .args(extra);
        cmd.output().expect("run e2clab serve")
    }

    /// The artifacts whose bytes must survive any rerun or kill+resume:
    /// the serving CSV, the serving trace and every per-epoch archive.
    fn artifacts(&self, name: &str) -> Vec<(String, Vec<u8>)> {
        let out = self.root.join(name);
        let mut rels = vec!["serving.csv".to_string(), "trace.jsonl".to_string()];
        let mut epochs: Vec<String> = std::fs::read_dir(out.join("epochs"))
            .unwrap_or_else(|e| panic!("{name}: read epochs dir: {e}"))
            .flatten()
            .filter_map(|e| e.file_name().into_string().ok())
            .collect();
        epochs.sort();
        for epoch in epochs {
            for file in ["evaluations.csv", "best.yaml", "trials/trials.jsonl"] {
                rels.push(format!("epochs/{epoch}/{file}"));
            }
        }
        rels.into_iter()
            .map(|rel| {
                let path = out.join(&rel);
                let bytes = std::fs::read(&path)
                    .unwrap_or_else(|e| panic!("{name}: read {}: {e}", path.display()));
                (rel, bytes)
            })
            .collect()
    }
}

fn assert_same_artifacts(want: &[(String, Vec<u8>)], got: &[(String, Vec<u8>)], ctx: &str) {
    let labels =
        |set: &[(String, Vec<u8>)]| -> Vec<String> { set.iter().map(|(l, _)| l.clone()).collect() };
    assert_eq!(labels(want), labels(got), "{ctx}: artifact sets differ");
    for ((label, a), (_, b)) in want.iter().zip(got) {
        assert!(
            a == b,
            "{ctx}: {label} differs ({} vs {} bytes) — serving run is not byte-identical",
            a.len(),
            b.len()
        );
    }
}

/// Parse `serving.csv` rows into `(offered, admitted, rejected, shed,
/// slo_violations)` tuples.
fn csv_counters(bytes: &[u8]) -> Vec<(u64, u64, u64, u64, u64)> {
    let text = std::str::from_utf8(bytes).expect("serving.csv is UTF-8");
    text.lines()
        .skip(1)
        .map(|line| {
            let f: Vec<&str> = line.split(',').collect();
            assert_eq!(f.len(), 16, "row arity: {line:?}");
            (
                f[8].parse().unwrap(),
                f[9].parse().unwrap(),
                f[10].parse().unwrap(),
                f[11].parse().unwrap(),
                f[12].parse().unwrap(),
            )
        })
        .collect()
}

/// The seed × scale matrix: every cell's rerun is byte-identical, and
/// conservation holds in every committed row.
#[test]
fn serving_matrix_reruns_are_byte_identical() {
    for seed in [3u64, 9] {
        for scale in [400_000.0f64, 2_500_000.0] {
            let fx = Fixture::new(&format!("matrix-s{seed}-u{scale}"), seed, scale);
            let ctx = format!("seed {seed} / scale {scale}");
            for name in ["a", "b"] {
                let out = fx.serve(name, &[]);
                assert!(
                    out.status.success(),
                    "{ctx}: {}",
                    String::from_utf8_lossy(&out.stderr)
                );
            }
            let a = fx.artifacts("a");
            assert_same_artifacts(&a, &fx.artifacts("b"), &ctx);
            let csv = &a.iter().find(|(l, _)| l == "serving.csv").unwrap().1;
            let rows = csv_counters(csv);
            assert_eq!(rows.len(), 2, "{ctx}: one row per epoch");
            for (offered, admitted, rejected, shed, _) in rows {
                assert!(offered > 0, "{ctx}: epochs offer load");
                assert_eq!(admitted + rejected + shed, offered, "{ctx}: conservation");
            }
            std::fs::remove_dir_all(&fx.root).unwrap();
        }
    }
}

/// A cell scaled far past engine capacity: the overload counters must
/// actually fire (a gate that never rejects is not testing overload).
#[test]
fn saturating_cell_exercises_overload_counters() {
    let fx = Fixture::new("saturate", 3, 12_500_000.0);
    let out = fx.serve("hot", &["--queue-bound", "16"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let csv = std::fs::read(fx.root.join("hot").join("serving.csv")).unwrap();
    let rows = csv_counters(&csv);
    let (mut rejected, mut shed, mut viol) = (0u64, 0u64, 0u64);
    for (offered, admitted, r, s, v) in rows {
        assert_eq!(admitted + r + s, offered, "conservation under overload");
        rejected += r;
        shed += s;
        viol += v;
    }
    assert!(
        rejected > 0,
        "a 12.5M-users/day trace must overflow the admission queue"
    );
    assert!(shed > 0, "deadline shedding must fire under saturation");
    assert!(viol > 0, "the 4 s SLO must be violated under saturation");
    std::fs::remove_dir_all(&fx.root).unwrap();
}

/// The driver's own self-check agrees with the gate.
#[test]
fn replay_check_passes() {
    let fx = Fixture::new("replay", 5, 2_500_000.0);
    let out = fx.serve("rc", &["--replay-check"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("replay-check: PASS"),
        "unexpected output:\n{stdout}"
    );
    std::fs::remove_dir_all(&fx.root).unwrap();
}

/// Kill mid-epoch (after the 5th journal append of epoch 0's cycle) and
/// at the epoch-0 boundary; both resumes must converge on the bytes of
/// an uninterrupted journaled run, which must itself match a plain run.
#[test]
fn kill_and_resume_converges_on_uninterrupted_bytes() {
    let fx = Fixture::new("kill", 3, 2_500_000.0);

    // Uninterrupted, unjournaled baseline.
    let out = fx.serve("base", &[]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let baseline = fx.artifacts("base");

    // Full journaled run: same bytes, plus a journal.
    let jfull = fx.root.join("full-journal");
    let out = fx.serve("full", &["--journal", jfull.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_same_artifacts(&baseline, &fx.artifacts("full"), "journaled vs plain");

    // Resuming a completed serving journal re-runs nothing and rewrites
    // the same bytes.
    let out = fx.serve("full", &["--resume", jfull.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "resume after complete: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_same_artifacts(&baseline, &fx.artifacts("full"), "resume after complete");

    // Mid-epoch kill: epoch 0's optimization cycle dies at its 5th
    // journal append (exit 86), leaving a half-written epoch journal.
    let jmid = fx.root.join("mid-journal");
    let out = fx.serve(
        "mid",
        &["--journal", jmid.to_str().unwrap(), "--crash-at", "5"],
    );
    assert_eq!(
        out.status.code(),
        Some(e2c_tune::CRASH_EXIT_CODE),
        "expected the crash exit code, got {:?}\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    let out = fx.serve("mid", &["--resume", jmid.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "mid-epoch resume: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_same_artifacts(&baseline, &fx.artifacts("mid"), "mid-epoch kill");

    // Epoch-boundary kill: the run dies right after epoch 0's row
    // commits (WAL + CSV written, trace not yet rebuilt).
    let jcut = fx.root.join("cut-journal");
    let out = fx.serve(
        "cut",
        &["--journal", jcut.to_str().unwrap(), "--crash-at-epoch", "0"],
    );
    assert_eq!(
        out.status.code(),
        Some(e2c_tune::CRASH_EXIT_CODE),
        "expected the crash exit code, got {:?}\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    // The boundary kill left a complete 1-row serving.csv behind.
    let partial = std::fs::read(fx.root.join("cut").join("serving.csv")).unwrap();
    assert_eq!(csv_counters(&partial).len(), 1, "one epoch committed");
    let out = fx.serve("cut", &["--resume", jcut.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "boundary resume: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_same_artifacts(&baseline, &fx.artifacts("cut"), "epoch-boundary kill");

    std::fs::remove_dir_all(&fx.root).unwrap();
}

/// A serving journal binds the run's parameters: resuming under a
/// different scale is refused, and the flag grammar is validated.
#[test]
fn resume_refuses_changed_parameters_and_flags_are_validated() {
    let fx = Fixture::new("refuse", 3, 2_500_000.0);
    let jdir = fx.root.join("journal");
    let j = jdir.to_str().unwrap().to_string();
    let out = fx.serve("run", &["--journal", &j, "--crash-at-epoch", "0"]);
    assert_eq!(out.status.code(), Some(86), "{:?}", out.status);

    // Changed scale: refused before any epoch re-runs.
    let other = Fixture {
        root: fx.root.clone(),
        seed: fx.seed,
        scale: 400_000.0,
    };
    let out = other.serve("run", &["--resume", &j]);
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("different serving run"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // A fresh --journal refuses to clobber an existing one.
    let out = fx.serve("run", &["--journal", &j]);
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--resume"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Flag validation: crash knobs alone, --journal + --resume, and
    // --replay-check + --journal are usage errors (exit 2).
    for extra in [
        &["--crash-at", "2"][..],
        &["--crash-at-epoch", "0"][..],
        &["--journal", "a", "--resume", "b"][..],
        &["--replay-check", "--journal", "a"][..],
    ] {
        let out = fx.serve("run", extra);
        assert_eq!(out.status.code(), Some(2), "{extra:?}: {:?}", out.status);
    }
    std::fs::remove_dir_all(&fx.root).unwrap();
}
