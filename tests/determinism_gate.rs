//! End-to-end gates for the determinism story:
//!
//! * `workspace_lint_is_clean` — the detlint pass over this repository
//!   exits clean (every remaining hazard carries a justified allow);
//! * `replay_check_*` — `e2clab optimize --replay-check` runs the same
//!   seeded cycle twice and proves `evaluations.csv` and
//!   `trials/trials.jsonl` come out byte-identical, across a
//!   seed × `max_concurrent` ∈ {1, 2, 4} matrix (the commit sequencer
//!   makes concurrent cycles replay bit-exactly too);
//! * `traced_runs_*` — two separate seeded `--trace` runs emit
//!   byte-identical `trace.jsonl` / `metrics.prom` / `cycles/*.prom`, and
//!   `e2clab trace summarize` renders them.
//!
//! Scratch directories root at `E2C_GATE_DIR` when set so CI can upload
//! the differing artifacts on failure.

use std::path::{Path, PathBuf};
use std::process::Command;

fn workspace_root() -> PathBuf {
    // These tests live in the workspace's root package.
    Path::new(env!("CARGO_MANIFEST_DIR")).to_path_buf()
}

/// Root for gate scratch directories: `E2C_GATE_DIR` when set (CI points
/// this at a workspace path and uploads it when the gate fails), the
/// system temp directory otherwise.
fn gate_root() -> PathBuf {
    std::env::var_os("E2C_GATE_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(std::env::temp_dir)
}

const TINY_CONF: &str = r#"
name: replay-gate
optimization:
  metric: response_time
  mode: min
  name: replay-gate
  num_samples: 6
  max_concurrent: 2
  search:
    algo: extra_trees
    n_initial_points: 3
    initial_point_generator: lhs
    acq_func: ei
  config:
    - name: http
      type: randint
      bounds: [20, 60]
    - name: download
      type: randint
      bounds: [20, 60]
    - name: simsearch
      type: randint
      bounds: [20, 60]
    - name: extract
      type: randint
      bounds: [2, 20]
"#;

#[test]
fn workspace_lint_is_clean() {
    let out = Command::new(env!("CARGO_BIN_EXE_e2clab"))
        .arg("lint")
        .arg(workspace_root())
        .output()
        .expect("run e2clab lint");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "lint found unsuppressed hazards:\n{stdout}{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("0 error(s)"), "{stdout}");
}

#[test]
fn lint_rejects_a_dirty_tree() {
    let dir = std::env::temp_dir().join(format!("detlint-dirty-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(
        dir.join("bad.rs"),
        "fn f() { let mut r = StdRng::from_entropy(); r.gen::<u8>(); }\n",
    )
    .unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_e2clab"))
        .arg("lint")
        .arg(&dir)
        .output()
        .expect("run e2clab lint");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("DET003"));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn replay_check_proves_byte_identical_artifacts_across_the_matrix() {
    let base = gate_root().join(format!("e2clab-replaygate-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).unwrap();

    for seed in ["11", "23"] {
        for workers in ["1", "2", "4"] {
            let cell = base.join(format!("s{seed}-w{workers}"));
            std::fs::create_dir_all(&cell).unwrap();
            let conf = cell.join("conf.yaml");
            std::fs::write(
                &conf,
                TINY_CONF.replace("max_concurrent: 2", &format!("max_concurrent: {workers}")),
            )
            .unwrap();
            let archive = cell.join("archive");

            let out = Command::new(env!("CARGO_BIN_EXE_e2clab"))
                .args([
                    "optimize",
                    "--seed",
                    seed,
                    "--duration",
                    "30",
                    "--replay-check",
                    "--archive",
                ])
                .arg(&archive)
                .arg(&conf)
                .output()
                .expect("run e2clab optimize --replay-check");
            let stdout = String::from_utf8_lossy(&out.stdout);
            assert!(
                out.status.success(),
                "replay check failed (seed {seed}, workers {workers}):\n{stdout}{}",
                String::from_utf8_lossy(&out.stderr)
            );
            assert!(stdout.contains("evaluations.csv identical"), "{stdout}");
            assert!(stdout.contains("trials/trials.jsonl identical"), "{stdout}");
            assert!(stdout.contains("replay-check: PASS"), "{stdout}");
            // The requested archive survives the check.
            assert!(archive.join("evaluations.csv").is_file());
            assert!(archive.join("trials").join("trials.jsonl").is_file());
        }
    }
    std::fs::remove_dir_all(&base).unwrap();
}

/// Two *independent* seeded processes — not the in-process double run of
/// `--replay-check` — must still produce byte-identical trace artifacts,
/// and the recorded trace must summarize.
#[test]
fn traced_runs_are_byte_identical_and_summarizable() {
    let base = gate_root().join(format!("e2clab-tracegate-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).unwrap();
    let conf = base.join("conf.yaml");
    // max_concurrent stays at the conf's 2: the commit sequencer splices
    // every worker's trace into canonical order, so even concurrent runs
    // promise byte-identical traces.
    std::fs::write(&conf, TINY_CONF).unwrap();

    for run in ["a", "b"] {
        let out = Command::new(env!("CARGO_BIN_EXE_e2clab"))
            .args(["optimize", "--seed", "11", "--duration", "30", "--trace"])
            .arg(base.join(run))
            .arg(&conf)
            .output()
            .expect("run e2clab optimize --trace");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    let rel_of = |d: &Path| {
        let mut rels = vec![PathBuf::from("trace.jsonl"), PathBuf::from("metrics.prom")];
        let mut cycles: Vec<_> = std::fs::read_dir(d.join("cycles"))
            .unwrap()
            .flatten()
            .map(|e| PathBuf::from("cycles").join(e.file_name()))
            .collect();
        cycles.sort();
        rels.extend(cycles);
        rels
    };
    let rels = rel_of(&base.join("a"));
    assert!(rels.len() > 2, "expected per-trial cycle exports: {rels:?}");
    for rel in &rels {
        let a = std::fs::read(base.join("a").join(rel)).unwrap();
        let b = std::fs::read(base.join("b").join(rel)).unwrap();
        assert_eq!(a, b, "{} differs between seeded runs", rel.display());
        assert!(!a.is_empty(), "{} is empty", rel.display());
    }

    let out = Command::new(env!("CARGO_BIN_EXE_e2clab"))
        .args(["trace", "summarize"])
        .arg(base.join("a"))
        .output()
        .expect("run e2clab trace summarize");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("per-phase breakdown"), "{stdout}");
    assert!(stdout.contains("per-trial critical path"), "{stdout}");
    assert!(stdout.contains("tuner"), "{stdout}");
    std::fs::remove_dir_all(&base).unwrap();
}

#[test]
fn replay_check_without_archive_cleans_up() {
    let base = gate_root().join(format!("e2clab-replaygate2-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).unwrap();
    let conf = base.join("conf.yaml");
    std::fs::write(&conf, TINY_CONF).unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_e2clab"))
        .args([
            "optimize",
            "--seed",
            "3",
            "--duration",
            "30",
            "--replay-check",
        ])
        .arg(&conf)
        .output()
        .expect("run e2clab optimize --replay-check");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("replay-check: PASS"));
    std::fs::remove_dir_all(&base).unwrap();
}
