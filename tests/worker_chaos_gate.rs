//! End-to-end gates for the multi-process trial farm:
//!
//! * `farmed_runs_match_in_process_artifacts` — the same seeded cycle
//!   run in-process and farmed over `--workers` ∈ {1, 2, 4} produces
//!   byte-identical `evaluations.csv`, `trials/trials.jsonl` and every
//!   trace artifact: the worker count shapes wall-clock only, never
//!   results;
//! * `killed_workers_leave_artifacts_byte_identical` — the kill matrix:
//!   a journaled, traced `--workers` run with a worker SIGKILLed at a
//!   seeded dispatch point (`--kill-worker W@N`) still matches an
//!   unharmed single-worker run byte for byte — the supervisor respawns
//!   the worker and re-dispatches the orphaned ask transparently;
//! * `injected_worker_faults_replay_identically` — `--faults
//!   worker-crash/worker-stall` plans short-circuit tuner-side, so the
//!   same plan yields identical artifacts with and without a farm.
//!
//! Scratch directories root at `E2C_GATE_DIR` when set so CI can upload
//! the differing artifacts on failure.

use std::path::{Path, PathBuf};
use std::process::Command;

/// Root for gate scratch directories: `E2C_GATE_DIR` when set (CI points
/// this at a workspace path and uploads it when the gate fails), the
/// system temp directory otherwise.
fn gate_root() -> PathBuf {
    std::env::var_os("E2C_GATE_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(std::env::temp_dir)
}

const TINY_CONF: &str = r#"
name: worker-chaos-gate
optimization:
  metric: response_time
  mode: min
  name: worker-chaos-gate
  num_samples: 6
  max_concurrent: 2
  search:
    algo: extra_trees
    n_initial_points: 3
    initial_point_generator: lhs
    acq_func: ei
  config:
    - name: http
      type: randint
      bounds: [20, 60]
    - name: download
      type: randint
      bounds: [20, 60]
    - name: simsearch
      type: randint
      bounds: [20, 60]
    - name: extract
      type: randint
      bounds: [2, 20]
"#;

struct Scratch {
    root: PathBuf,
    conf: PathBuf,
}

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let root = gate_root().join(format!("worker-chaos-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).expect("create gate scratch dir");
        let conf = root.join("conf.yaml");
        std::fs::write(&conf, TINY_CONF).expect("write conf");
        Scratch { root, conf }
    }

    /// `e2clab optimize --seed <seed> --duration 30 --archive <dir>
    /// --trace <dir>-trace <extra...> conf.yaml`, asserting success.
    /// Returns the `(archive, trace)` directory pair.
    fn optimize(&self, name: &str, seed: u64, extra: &[&str]) -> (PathBuf, PathBuf) {
        let archive = self.root.join(name);
        let trace = self.root.join(format!("{name}-trace"));
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_e2clab"));
        cmd.arg("optimize")
            .arg("--seed")
            .arg(seed.to_string())
            .arg("--duration")
            .arg("30")
            .arg("--archive")
            .arg(&archive)
            .arg("--trace")
            .arg(&trace)
            .args(extra)
            .arg(&self.conf);
        let out = cmd.output().expect("run e2clab optimize");
        assert!(
            out.status.success(),
            "optimize {name} (seed {seed}, extra {extra:?}) failed:\n{}{}",
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr),
        );
        (archive, trace)
    }

    fn cleanup(self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

/// Byte-compare every artifact the cycle writes: the archive's
/// `evaluations.csv` + `trials/trials.jsonl` and the trace directory's
/// `trace.jsonl`, `metrics.prom` and each `cycles/*.prom` snapshot.
fn assert_artifacts_identical(
    label: &str,
    (archive_a, trace_a): &(PathBuf, PathBuf),
    (archive_b, trace_b): &(PathBuf, PathBuf),
) {
    let mut pairs: Vec<(String, PathBuf, PathBuf)> = ["evaluations.csv", "trials/trials.jsonl"]
        .into_iter()
        .map(|rel| (rel.to_string(), archive_a.join(rel), archive_b.join(rel)))
        .collect();
    let mut rels = vec!["trace.jsonl".to_string(), "metrics.prom".to_string()];
    let cycles = std::fs::read_dir(trace_a.join("cycles")).expect("trace cycles dir");
    let mut names: Vec<String> = cycles
        .flatten()
        .filter_map(|e| e.file_name().into_string().ok())
        .collect();
    names.sort();
    assert!(!names.is_empty(), "{label}: no per-trial prom snapshots");
    rels.extend(names.into_iter().map(|n| format!("cycles/{n}")));
    for rel in rels {
        pairs.push((
            format!("trace/{rel}"),
            trace_a.join(&rel),
            trace_b.join(&rel),
        ));
    }
    for (rel, path_a, path_b) in pairs {
        let a = std::fs::read(&path_a)
            .unwrap_or_else(|e| panic!("{label}: read {}: {e}", path_a.display()));
        let b = std::fs::read(&path_b)
            .unwrap_or_else(|e| panic!("{label}: read {}: {e}", path_b.display()));
        assert!(
            a == b,
            "{label}: {rel} differs ({} vs {} bytes) — artifacts are \
             kept under {} for inspection",
            a.len(),
            b.len(),
            path_a.parent().unwrap().display(),
        );
    }
}

fn delete_on_success(paths: &[&Path]) {
    for p in paths {
        let _ = std::fs::remove_dir_all(p);
    }
}

#[test]
fn farmed_runs_match_in_process_artifacts() {
    let scratch = Scratch::new("farm");
    for seed in [7u64, 40] {
        let baseline = scratch.optimize(&format!("inproc-{seed}"), seed, &[]);
        for workers in ["1", "2", "4"] {
            let farmed = scratch.optimize(
                &format!("farm{workers}-{seed}"),
                seed,
                &["--workers", workers],
            );
            assert_artifacts_identical(
                &format!("seed {seed}, --workers {workers} vs in-process"),
                &baseline,
                &farmed,
            );
            delete_on_success(&[&farmed.0, &farmed.1]);
        }
    }
    scratch.cleanup();
}

#[test]
fn killed_workers_leave_artifacts_byte_identical() {
    let scratch = Scratch::new("kill");
    let seed = 11u64;
    // Unharmed single-worker journaled run is the reference.
    let reference = scratch.optimize(
        "reference",
        seed,
        &[
            "--workers",
            "1",
            "--journal",
            scratch.root.join("ref-journal").to_str().unwrap(),
        ],
    );
    // Kill matrix: worker × dispatch point, across farm sizes. Every
    // victim is SIGKILLed mid-run; the supervisor must absorb it.
    for (workers, kill) in [("2", "0@1"), ("2", "1@2"), ("4", "1@1"), ("4", "3@2")] {
        let name = format!("kill-w{workers}-{}", kill.replace('@', "-at-"));
        let journal = scratch.root.join(format!("{name}-journal"));
        let harmed = scratch.optimize(
            &name,
            seed,
            &[
                "--workers",
                workers,
                "--kill-worker",
                kill,
                "--journal",
                journal.to_str().unwrap(),
            ],
        );
        assert_artifacts_identical(
            &format!("--workers {workers} --kill-worker {kill} vs unharmed single worker"),
            &reference,
            &harmed,
        );
        delete_on_success(&[&harmed.0, &harmed.1, &journal]);
    }
    scratch.cleanup();
}

#[test]
fn injected_worker_faults_replay_identically() {
    let scratch = Scratch::new("faults");
    let seed = 3u64;
    let plan = "worker-crash:1@0;worker-stall:3@0";
    let inproc = scratch.optimize("faults-inproc", seed, &["--faults", plan]);
    let farmed = scratch.optimize("faults-farmed", seed, &["--faults", plan, "--workers", "2"]);
    assert_artifacts_identical(
        "injected worker faults, in-process vs farmed",
        &inproc,
        &farmed,
    );
    scratch.cleanup();
}
