//! Reduced-scale checks of the paper's headline shapes (the full-protocol
//! numbers live in the bench harness; these guard the mechanisms in CI).

use e2clab::des::SimTime;
use e2clab::plantnet::monitor::names;
use e2clab::plantnet::sim::{Experiment, ExperimentSpec};
use e2clab::plantnet::PoolConfig;

fn spec(cfg: PoolConfig, clients: usize) -> ExperimentSpec {
    let mut s = ExperimentSpec::paper(cfg, clients);
    s.duration = SimTime::from_secs(240);
    s.warmup = SimTime::from_secs(30);
    s
}

#[test]
fn fig3_response_grows_with_simultaneous_requests() {
    let cfg = PoolConfig::baseline();
    let resp: Vec<f64> = [60, 100, 140]
        .iter()
        .map(|&n| Experiment::run(spec(cfg, n), 5).response.mean)
        .collect();
    assert!(resp[0] < resp[1] && resp[1] < resp[2], "{resp:?}");
    // The 4-second knee falls beyond ~120 requests (Fig. 3).
    assert!(
        resp[1] < 4.0,
        "100 clients should be under 4 s: {}",
        resp[1]
    );
    assert!(resp[2] > 4.0, "140 clients should be over 4 s: {}", resp[2]);
}

#[test]
fn table3_preliminary_optimum_beats_baseline() {
    for clients in [80usize, 120] {
        let base = Experiment::run(spec(PoolConfig::baseline(), clients), 9);
        let opt = Experiment::run(spec(PoolConfig::preliminary_optimum(), clients), 9);
        assert!(
            opt.response.mean < base.response.mean,
            "clients={clients}: optimum {} !< baseline {}",
            opt.response.mean,
            base.response.mean
        );
    }
}

#[test]
fn fig9_extract_sweep_has_interior_optimum_and_cpu_saturation() {
    let mut resp = Vec::new();
    let mut cpu = Vec::new();
    for extract in [5u32, 7, 9] {
        let cfg = PoolConfig {
            extract,
            ..PoolConfig::preliminary_optimum()
        };
        let m = Experiment::run(spec(cfg, 80), 11);
        resp.push(m.response.mean);
        cpu.push(m.mean_cpu());
    }
    // Interior optimum: 7 beats both 5 and 9 (Fig. 9a's shape).
    assert!(resp[1] < resp[0], "7 must beat 5: {resp:?}");
    assert!(resp[1] < resp[2], "7 must beat 9: {resp:?}");
    // CPU usage increases with the extract pool and pins at 9 (Fig. 9c).
    assert!(cpu[0] < cpu[2], "{cpu:?}");
    assert!(cpu[2] > 0.97, "CPU must pin at extract=9: {cpu:?}");
}

#[test]
fn fig9_extract_pool_busy_falls_once_cpu_binds() {
    let busy = |extract: u32| {
        let cfg = PoolConfig {
            extract,
            ..PoolConfig::preliminary_optimum()
        };
        Experiment::run(spec(cfg, 80), 13).mean_busy(names::EXTRACT_BUSY)
    };
    let at6 = busy(6);
    let at9 = busy(9);
    assert!(at6 > 0.97, "extract=6 pool must be pinned: {at6}");
    assert!(
        at9 < at6 - 0.1,
        "extract=9 pool must starve: {at9} vs {at6}"
    );
}

#[test]
fn fig9_memory_grows_with_extract_pool() {
    let mem = |extract: u32| {
        let cfg = PoolConfig {
            extract,
            ..PoolConfig::preliminary_optimum()
        };
        let m = Experiment::run(spec(cfg, 20), 15);
        (m.gpu_mem_gb, m.sys_mem_gb)
    };
    let (gpu5, sys5) = mem(5);
    let (gpu9, sys9) = mem(9);
    assert!(gpu9 > gpu5);
    assert!(sys9 > sys5);
}

#[test]
fn table4_refined_optimum_uses_less_gpu_memory() {
    let prelim = Experiment::run(spec(PoolConfig::preliminary_optimum(), 80), 17);
    let refined = Experiment::run(spec(PoolConfig::refined_optimum(), 80), 17);
    assert!(refined.gpu_mem_gb < prelim.gpu_mem_gb);
    // And the response stays within a small band of the preliminary
    // optimum (Table IV: 2.476 vs 2.484).
    let gap = (refined.response.mean - prelim.response.mean) / prelim.response.mean;
    assert!(gap.abs() < 0.05, "refined vs preliminary gap {gap}");
}

#[test]
fn fig9b_wait_extract_falls_and_simsearch_rises_with_extract_threads() {
    let task = |extract: u32, label: &str| {
        let cfg = PoolConfig {
            extract,
            ..PoolConfig::preliminary_optimum()
        };
        Experiment::run(spec(cfg, 80), 19).task_mean(label)
    };
    assert!(
        task(5, "wait-extract") > task(9, "wait-extract"),
        "wait-extract must fall with more extract threads"
    );
    assert!(
        task(9, "simsearch") > task(5, "simsearch"),
        "simsearch time must rise as feeding steals CPU"
    );
}

#[test]
fn fig2_replayed_trace_peaks_in_may_june_at_every_scale() {
    // The serving schedule replays the Fig. 2 seasonal growth curve as
    // per-month arrival rates. At any users/day scale, each replayed
    // year must peak in the May–June spring bump, and the rates must
    // scale linearly with the requested load (the curve's *shape* is
    // scale-invariant).
    use e2clab::workload::seasonal::GrowthModel;
    use e2clab::workload::serving_schedule;

    let model = GrowthModel::default();
    let duration = SimTime::from_secs(60);
    let reference = serving_schedule(&model, 2017, 24, duration, 400_000.0).unwrap();
    for scale in [400_000.0f64, 2_500_000.0, 10_000_000.0] {
        let schedule = serving_schedule(&model, 2017, 24, duration, scale).unwrap();
        let epochs = schedule.epochs();
        assert_eq!(epochs.len(), 24);
        for year in 0..2 {
            let months = &epochs[year * 12..(year + 1) * 12];
            let (argmax, peak) = months
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.rate.total_cmp(&b.1.rate))
                .map(|(i, e)| (i + 1, e.rate))
                .unwrap();
            assert!(
                argmax == 5 || argmax == 6,
                "scale {scale}, year {year}: peak in month {argmax}, not May–June"
            );
            // The spring bump is a real peak, not a plateau artifact.
            assert!(
                peak > 1.5 * months[0].rate,
                "scale {scale}, year {year}: peak {peak} vs January {}",
                months[0].rate
            );
        }
        // Year-over-year growth: the second spring beats the first.
        assert!(epochs[16].rate > epochs[4].rate, "scale {scale}: no growth");
        // Linear scaling against the reference schedule.
        let k = scale / 400_000.0;
        for (e, r) in epochs.iter().zip(reference.epochs()) {
            assert!(
                (e.rate - k * r.rate).abs() <= 1e-9 * e.rate.max(1.0),
                "scale {scale}: month {} rate {} is not {k}× the reference {}",
                e.label,
                e.rate,
                r.rate
            );
        }
    }
}
