//! Integration across the framework layers: configuration → provisioning
//! on the Grid'5000 model → service deployment checks → network emulation
//! → repeated application runs feeding the monitoring backup.

use e2clab::conf::schema::ExperimentConf;
use e2clab::core::service::{ClientsService, PlantnetEngineService, Service, ServiceRegistry};
use e2clab::core::Experiment as FrameworkExperiment;
use e2clab::des::SimTime;
use e2clab::plantnet::sim::{Experiment, ExperimentSpec};
use e2clab::plantnet::PoolConfig;
use e2clab::testbed::grid5000;

const CONF: &str = r#"
name: lifecycle
layers:
  - name: cloud
    services:
      - name: plantnet-engine
        cluster: chifflot
        quantity: 1
  - name: edge
    services:
      - name: clients
        cluster: chiclet
        quantity: 4
network:
  - src: edge
    dst: cloud
    delay_ms: 5.0
    rate_mbps: 10000
"#;

#[test]
fn deploy_run_backup_teardown() {
    let conf = ExperimentConf::from_value(&e2clab::conf::parse(CONF).unwrap()).unwrap();
    let mut exp =
        FrameworkExperiment::new(conf, grid5000::paper_testbed()).with_duration_secs(120.0);
    exp.deploy().expect("deployment");

    // The engine service validates it landed on GPU nodes.
    let mut registry = ServiceRegistry::new();
    registry.register(Box::new(PlantnetEngineService));
    registry.register(Box::new(ClientsService {
        simultaneous_requests: 80,
    }));
    let engine_nodes = exp
        .deployment()
        .unwrap()
        .nodes_of("cloud.plantnet-engine")
        .to_vec();
    registry
        .get("plantnet-engine")
        .unwrap()
        .deploy(&engine_nodes, exp.testbed())
        .expect("engine deploys on GPU nodes");

    // Run the actual application (the DES engine) 3 times; each run's
    // registry lands in the monitoring backup.
    exp.run_repeated(3, |rep, _deployment, topology| {
        // The emulated edge->cloud constraint is visible to the app.
        assert_eq!(topology.link("edge", "cloud").latency_ms, 5.0);
        let mut spec = ExperimentSpec::quick(PoolConfig::baseline(), 40);
        spec.duration = SimTime::from_secs(120);
        spec.warmup = SimTime::from_secs(20);
        Experiment::run(spec, 400 + rep as u64).registry
    })
    .expect("runs complete");

    assert_eq!(exp.repetitions(), 3);
    let resp = exp.backup().get("user_resp_time").expect("metric recorded");
    // 3 repetitions × 10 windows (120 s − 20 s warm-up at 10 s intervals).
    assert_eq!(resp.len(), 30);
    // Concatenated timelines: repetition 2's samples sit past 240 s.
    assert!(resp.times().last().unwrap() > &240.0);

    exp.teardown();
    assert_eq!(exp.testbed().free_in("chifflot"), 2);
    assert_eq!(exp.testbed().free_in("chiclet"), 10);
}

#[test]
fn engine_service_refuses_cpu_only_clusters() {
    let conf_bad = CONF.replace("cluster: chifflot", "cluster: gros");
    let conf = ExperimentConf::from_value(&e2clab::conf::parse(&conf_bad).unwrap()).unwrap();
    let mut exp = FrameworkExperiment::new(conf, grid5000::paper_testbed());
    exp.deploy().expect("reservation itself succeeds");
    let nodes = exp
        .deployment()
        .unwrap()
        .nodes_of("cloud.plantnet-engine")
        .to_vec();
    let err = PlantnetEngineService
        .deploy(&nodes, exp.testbed())
        .unwrap_err();
    assert!(err.reason.contains("no GPU"), "{err}");
}
