//! End-to-end fault tolerance: engine-level faults surface as failed
//! evaluations, the retry layer re-runs them, and the Phase III archive
//! records every attempt.

use e2clab::conf::schema::ExperimentConf;
use e2clab::core::OptimizationManager;
use e2clab::des::SimTime;
use e2clab::plantnet::sim::{Experiment, ExperimentSpec, ServiceFault, ServiceFaultKind};
use e2clab::plantnet::PoolConfig;
use e2clab::tune::TrialStatus;
use std::path::PathBuf;

const CONF: &str = r#"
name: ft-e2e
optimization:
  metric: user_resp_time
  mode: min
  name: ft-tuning
  num_samples: 6
  max_concurrent: 2
  fault_tolerance:
    max_retries: 2
    backoff_ms: 1
    max_backoff_ms: 2
  search:
    algo: random
  config:
    - name: http
      type: randint
      bounds: [20, 60]
    - name: download
      type: randint
      bounds: [20, 60]
    - name: simsearch
      type: randint
      bounds: [20, 60]
    - name: extract
      type: randint
      bounds: [3, 9]
"#;

fn opt_conf(src: &str) -> e2clab::conf::schema::OptimizationConf {
    ExperimentConf::from_value(&e2clab::conf::parse(src).unwrap())
        .unwrap()
        .optimization
        .unwrap()
}

/// Short engine run; `fault` lets a test crash or degrade the engine.
fn engine(point: &[f64], seed: u64, fault: Option<ServiceFault>) -> f64 {
    let cfg = PoolConfig::from_point(point);
    let mut spec = ExperimentSpec::quick(cfg, 40);
    spec.duration = SimTime::from_secs(60);
    spec.warmup = SimTime::from_secs(10);
    spec.fault = fault;
    Experiment::run(spec, seed).response.mean
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("e2e-ft-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn engine_crash_is_retried_and_recovers_with_the_true_metric() {
    let dir = temp_dir("crash");
    let summary = OptimizationManager::new(opt_conf(CONF))
        .with_seed(7)
        .with_archive(dir.clone())
        .run(|ctx| {
            // Trial 2's engine crashes mid-run on the first attempt only:
            // the NaN metric must be classified as a failure and the
            // retry must observe the healthy engine.
            let fault = (ctx.trial_id == 2 && ctx.attempt == 0).then_some(ServiceFault {
                at: SimTime::from_secs(5),
                kind: ServiceFaultKind::Crash,
            });
            engine(&ctx.point, 100 + ctx.trial_id, fault)
        })
        .unwrap();

    let trials = summary.analysis.trials();
    assert_eq!(trials.len(), 6);
    let flaky = trials.iter().find(|t| t.id == 2).unwrap();
    assert!(
        matches!(flaky.status, TrialStatus::Terminated(_)),
        "{:?}",
        flaky.status
    );
    assert_eq!(flaky.attempt_count(), 2);
    let v = flaky.value().expect("retried trial has the true metric");
    assert!(v.is_finite() && v > 0.0, "metric {v}");
    assert!(
        flaky.attempts[0]
            .error
            .as_ref()
            .is_some_and(|e| e.to_string().contains("non-finite")),
        "first attempt should record the NaN failure: {:?}",
        flaky.attempts
    );

    // The archive tells the same story: evaluations.csv counts both
    // attempts, the trial log keeps the failure reason.
    let csv = std::fs::read_to_string(dir.join("evaluations.csv")).unwrap();
    assert!(csv.contains("\n2,terminated,2,"), "{csv}");
    let jsonl = std::fs::read_to_string(dir.join("trials").join("trials.jsonl")).unwrap();
    let line = jsonl.lines().find(|l| l.contains("\"id\":2")).unwrap();
    assert!(line.contains("\"attempts\":2"), "{line}");
    assert!(line.contains("non-finite"), "{line}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn slowdown_fault_degrades_the_metric_without_triggering_a_retry() {
    let summary = OptimizationManager::new(opt_conf(CONF))
        .with_seed(13)
        .run(|ctx| {
            let fault = (ctx.trial_id == 0).then_some(ServiceFault {
                at: SimTime::ZERO,
                kind: ServiceFaultKind::SlowDown { factor: 3.0 },
            });
            engine(&ctx.point, 100 + ctx.trial_id, fault)
        })
        .unwrap();
    // A slow engine is a valid (bad) measurement, not a failure.
    for t in summary.analysis.trials() {
        assert!(
            matches!(t.status, TrialStatus::Terminated(_)),
            "trial {}: {:?}",
            t.id,
            t.status
        );
        assert_eq!(t.attempt_count(), 1, "trial {}", t.id);
    }
}

#[test]
fn deadline_exceeding_trial_fails_without_stalling_the_run() {
    let src = CONF.replace(
        "    max_retries: 2\n",
        "    max_retries: 0\n    time_budget_ms: 50\n",
    );
    // detlint: allow(DET002) test asserts the deadline fires in real elapsed time
    let started = std::time::Instant::now();
    let summary = OptimizationManager::new(opt_conf(&src))
        .with_seed(5)
        .run(|ctx| {
            if ctx.trial_id == 1 {
                // Cooperative objective that overruns its 50 ms budget.
                std::thread::sleep(std::time::Duration::from_millis(120));
            }
            ctx.point.iter().sum()
        })
        .unwrap();
    assert!(
        started.elapsed() < std::time::Duration::from_secs(30),
        "run must not stall"
    );
    let trials = summary.analysis.trials();
    let slow = trials.iter().find(|t| t.id == 1).unwrap();
    assert_eq!(
        slow.status,
        TrialStatus::Failed("deadline exceeded".into()),
        "{:?}",
        slow.status
    );
    for t in trials.iter().filter(|t| t.id != 1) {
        assert!(
            matches!(t.status, TrialStatus::Terminated(_)),
            "trial {}: {:?}",
            t.id,
            t.status
        );
    }
}

#[test]
fn unknown_search_algo_is_a_hard_config_error() {
    let src = CONF.replace("algo: random", "algo: quantum_annealing");
    let err = ExperimentConf::from_value(&e2clab::conf::parse(&src).unwrap())
        .expect_err("bogus algo must not validate");
    let msg = err.to_string();
    assert!(msg.contains("optimization.search.algo"), "{msg}");
    assert!(msg.contains("quantum_annealing"), "{msg}");
}
